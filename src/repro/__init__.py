"""Pure-Python reproduction of SAGA-Bench (ISPASS 2020).

SAGA-Bench is a benchmark for StreAming Graph Analytics: batched edge
updates interleaved with analytics on the continuously evolving graph.
This package reproduces the whole system from scratch:

- :mod:`repro.graph` -- the four streaming-graph data structures
  (shared adjacency list, chunked adjacency list, Stinger, degree-aware
  hashing) behind one API, plus CSR snapshots and property arrays.
- :mod:`repro.compute` -- the two compute models: recomputation from
  scratch (FS) and incremental computation (INC, Algorithm 1 of the
  paper: processing amortization + selective triggering).
- :mod:`repro.algorithms` -- BFS, CC, MC, PR, SSSP, SSWP, each in both
  compute models.
- :mod:`repro.datasets` -- RMAT and calibrated power-law generators
  standing in for the SNAP datasets, plus a SNAP edge-list loader.
- :mod:`repro.streaming` -- the batch-by-batch driver implementing the
  paper's measurement methodology (Equation 1, P1/P2/P3 staging).
- :mod:`repro.sim` -- the simulated dual-socket multicore machine used
  in place of the paper's Xeon testbed: a deterministic discrete-event
  thread scheduler, a set-associative cache hierarchy, and PCM-like
  bandwidth/QPI counters.
- :mod:`repro.analysis` -- harnesses that regenerate every table and
  figure of the paper's evaluation.
- :mod:`repro.engine` -- the shared experiment engine behind those
  harnesses: content-addressed result caching (RunStore) and cached,
  process-parallel sweep execution.
"""

from repro.engine import RunStore, run_stream
from repro.graph import (
    AdjacencyListChunked,
    AdjacencyListShared,
    DegreeAwareHash,
    GraphDataStructure,
    Stinger,
    make_structure,
)
from repro.sim import SKYLAKE_GOLD_6142, MachineConfig
from repro.streaming import StreamConfig, StreamDriver

__version__ = "1.0.0"

__all__ = [
    "AdjacencyListChunked",
    "AdjacencyListShared",
    "DegreeAwareHash",
    "GraphDataStructure",
    "Stinger",
    "make_structure",
    "RunStore",
    "run_stream",
    "StreamDriver",
    "StreamConfig",
    "MachineConfig",
    "SKYLAKE_GOLD_6142",
    "__version__",
]

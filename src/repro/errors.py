"""Exception types shared across the package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DatasetError(ReproError):
    """A dataset could not be generated or loaded."""


class StructureError(ReproError):
    """A graph data structure was used incorrectly."""


class SimulationError(ReproError):
    """The machine simulator was driven into an invalid state."""

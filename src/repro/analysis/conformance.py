"""Conformance report: every paper claim, checked programmatically.

EXPERIMENTS.md narrates the paper-vs-measured comparison; this module
*computes* it.  Each :class:`Claim` encodes one qualitative finding
from the paper's evaluation as a predicate over the profiling sweeps;
the report lists, for every claim, the measured value and whether the
reproduction upholds it.  Used by ``python -m repro conformance`` and
the benchmark suite's summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.analysis.hardware_profile import HardwareProfile
from repro.analysis.software_profile import SoftwareProfile
from repro.datasets.catalog import HEAVY_TAILED, SHORT_TAILED


@dataclass(frozen=True)
class ClaimResult:
    """One checked claim."""

    claim_id: str
    source: str  # paper location, e.g. "Fig. 6(b)"
    statement: str
    measured: str
    passed: bool


def _datasets(profile: SoftwareProfile, group) -> List[str]:
    return [name for name in group if name in profile.results]


def _update_ratio(profile: SoftwareProfile, dataset: str, structure: str) -> float:
    base = profile._stats(dataset, "update", "AS")[2].mean
    other = profile._stats(dataset, "update", structure)[2].mean
    return other / base


def check_software_claims(profile: SoftwareProfile) -> List[ClaimResult]:
    """Section V's findings against a software profile."""
    results: List[ClaimResult] = []
    short = _datasets(profile, SHORT_TAILED)
    heavy = _datasets(profile, HEAVY_TAILED)
    algorithms = next(iter(profile.results.values())).algorithms

    # -- Table III / Fig. 6 -------------------------------------------
    if short:
        ratios = {d: _update_ratio(profile, d, "DAH") for d in short}
        results.append(
            ClaimResult(
                claim_id="short-tail-dah-worst",
                source="Fig. 6(b)",
                statement="DAH has the highest update latency on "
                          "short-tailed graphs (paper: 2.3-3.2x AS)",
                measured=", ".join(f"{d}: {r:.2f}x" for d, r in ratios.items()),
                passed=all(r > 1.3 for r in ratios.values()),
            )
        )
        orderings = {}
        for d in short:
            row = {
                s: _update_ratio(profile, d, s) for s in ("AC", "Stinger", "DAH")
            }
            orderings[d] = row["Stinger"] < row["AC"] < row["DAH"]
        results.append(
            ClaimResult(
                claim_id="short-tail-ordering",
                source="Fig. 6(b)",
                statement="short-tailed update ordering AS < Stinger < AC < DAH",
                measured=", ".join(
                    f"{d}: {'ok' if ok else 'violated'}" for d, ok in orderings.items()
                ),
                passed=sum(orderings.values()) >= max(len(short) - 1, 1),
            )
        )
    if heavy:
        dah = float(np.mean([1 / _update_ratio(profile, d, "DAH") for d in heavy]))
        stinger = float(
            np.mean([1 / _update_ratio(profile, d, "Stinger") for d in heavy])
        )
        ac = float(np.mean([1 / _update_ratio(profile, d, "AC") for d in heavy]))
        results.append(
            ClaimResult(
                claim_id="heavy-tail-flip",
                source="Fig. 6(b)",
                statement="heavy-tailed update flips: AS slowest, DAH fastest "
                          "(paper: AS/DAH 12.6x, AS/Stinger 3.9x, AS/AC 2.6x)",
                measured=f"AS/DAH {dah:.1f}x, AS/Stinger {stinger:.1f}x, AS/AC {ac:.1f}x",
                passed=dah > stinger > ac > 1.0,
            )
        )

    # -- compute model (Fig. 7) ----------------------------------------
    def p3_benefit(dataset):
        return float(
            np.mean([profile.fig7(a, dataset)[2] for a in algorithms if a != "MC"])
        )

    if "RMAT" in profile.results and heavy:
        rmat = p3_benefit("RMAT")
        small = float(np.mean([p3_benefit(d) for d in heavy]))
        results.append(
            ClaimResult(
                claim_id="inc-scales-with-size",
                source="Fig. 7 / Section V-C",
                statement="larger graphs benefit more from INC "
                          "(RMAT largest, Wiki/Talk smallest)",
                measured=f"RMAT P3 FS/INC {rmat:.1f}x vs heavy-tailed {small:.1f}x",
                passed=rmat > small,
            )
        )

    # -- latency breakdown (Fig. 8) -------------------------------------
    shares = []
    for dataset, result in profile.results.items():
        for algorithm in result.algorithms:
            shares.append(max(profile.fig8(algorithm, dataset)))
    above_40 = sum(1 for share in shares if share >= 0.40)
    results.append(
        ClaimResult(
            claim_id="update-share-40pc",
            source="Fig. 8 / Section V-D",
            statement="the update phase reaches >=40% of batch latency "
                      "for many workloads",
            measured=f"{above_40}/{len(shares)} workloads reach 40%",
            passed=above_40 >= len(shares) / 3,
        )
    )

    # -- best model (Table III) -----------------------------------------
    table = profile.table3()
    inc_wins = sum(1 for cells in table.values() if cells[2].best.model == "INC")
    results.append(
        ClaimResult(
            claim_id="inc-predominant",
            source="Table III / Section V-A",
            statement="the incremental compute model is predominantly optimal",
            measured=f"INC best in {inc_wins}/{len(table)} P3 cells",
            passed=inc_wins > len(table) / 2,
        )
    )
    return results


def check_hardware_claims(profile: HardwareProfile) -> List[ClaimResult]:
    """Section VI's findings against a hardware profile."""
    results: List[ClaimResult] = []
    top = {
        (g, p): max(profile[g].scaling_performance(p).values())
        for g in profile.groups
        for p in ("update", "compute")
    }
    results.append(
        ClaimResult(
            claim_id="update-scales-worse",
            source="Fig. 9(a) / Section VI-A",
            statement="the update phase scales worse with cores than compute",
            measured=", ".join(
                f"{g}: upd {top[(g, 'update')]:.1f}x vs cmp {top[(g, 'compute')]:.1f}x"
                for g in profile.groups
            ),
            passed=all(
                top[(g, "update")] < top[(g, "compute")] for g in profile.groups
            ),
        )
    )
    results.append(
        ClaimResult(
            claim_id="htail-update-worst-scaler",
            source="Fig. 9(a) / Section VI-B",
            statement="heavy-tailed update benefits least from more cores",
            measured=f"HTail update tops at {top[('HTail', 'update')]:.1f}x",
            passed=top[("HTail", "update")] == min(top.values()),
        )
    )
    s_bw = profile["STail"].stage_counter("update", 2, "memory_bandwidth")
    h_bw = profile["HTail"].stage_counter("update", 2, "memory_bandwidth")
    results.append(
        ClaimResult(
            claim_id="htail-update-starves-bandwidth",
            source="Fig. 9(b) / Section VI-B",
            statement="heavy-tailed update uses a fraction of short-tailed "
                      "update's memory bandwidth (paper: ~5 vs 13-32 GB/s)",
            measured=f"HTail {h_bw / 1e9:.1f} GB/s vs STail {s_bw / 1e9:.1f} GB/s",
            passed=h_bw < s_bw / 2,
        )
    )
    llc = {
        (g, p): profile[g].stage_counter(p, 2, "llc_hit_ratio")
        for g in profile.groups
        for p in ("update", "compute")
    }
    results.append(
        ClaimResult(
            claim_id="compute-owns-llc",
            source="Fig. 10(a) / Section VI-C",
            statement="the compute phase has the higher LLC hit ratio",
            measured=", ".join(
                f"{g}: cmp {100 * llc[(g, 'compute')]:.0f}% vs "
                f"upd {100 * llc[(g, 'update')]:.0f}%"
                for g in profile.groups
            ),
            passed=all(
                llc[(g, "compute")] > llc[(g, "update")] for g in profile.groups
            ),
        )
    )
    h_l2_update = profile["HTail"].stage_counter("update", 2, "l2_mpki")
    h_l2_compute = profile["HTail"].stage_counter("compute", 2, "l2_mpki")
    results.append(
        ClaimResult(
            claim_id="update-owns-l2",
            source="Fig. 10(b,c) / Section VI-C",
            statement="the update phase leans on the private L2: its L2 MPKI "
                      "sits far below compute's (paper: 3-9 vs 12-16)",
            measured=f"HTail update {h_l2_update:.1f} vs compute {h_l2_compute:.1f} MPKI",
            passed=h_l2_update < h_l2_compute,
        )
    )
    return results


def conformance_report(
    software: Optional[SoftwareProfile] = None,
    hardware: Optional[HardwareProfile] = None,
) -> List[ClaimResult]:
    """All checkable claims for whichever profiles are supplied."""
    results: List[ClaimResult] = []
    if software is not None:
        results.extend(check_software_claims(software))
    if hardware is not None:
        results.extend(check_hardware_claims(hardware))
    return results


def run_conformance(
    software_kwargs: Optional[dict] = None,
    hardware_kwargs: Optional[dict] = None,
    store=None,
    jobs=None,
) -> List[ClaimResult]:
    """Recompute both sweeps through the experiment engine and check.

    ``store``/``jobs`` reach both
    :func:`~repro.analysis.software_profile.run_software_profile` and
    :func:`~repro.analysis.hardware_profile.run_hardware_profile`, so a
    warm RunStore regenerates the whole report without simulating.
    """
    from repro.analysis.hardware_profile import run_hardware_profile
    from repro.analysis.software_profile import run_software_profile

    software = run_software_profile(
        **(software_kwargs or {}), store=store, jobs=jobs
    )
    hardware = run_hardware_profile(
        **(hardware_kwargs or {}), store=store, jobs=jobs
    )
    return conformance_report(software=software, hardware=hardware)


def render_conformance(results: List[ClaimResult]) -> str:
    """Plain-text conformance table."""
    passed = sum(1 for r in results if r.passed)
    lines = [
        f"Paper-claim conformance: {passed}/{len(results)} upheld",
        "-" * 78,
    ]
    for r in results:
        mark = "PASS" if r.passed else "FAIL"
        lines.append(f"  [{mark}] {r.claim_id}  ({r.source})")
        lines.append(f"         claim:    {r.statement}")
        lines.append(f"         measured: {r.measured}")
    return "\n".join(lines)

"""Memory-footprint characterization of the four data structures.

Not a paper artifact, but the natural companion study: the simulated
address space already accounts every allocation, so we can report
bytes-per-edge and total footprint per structure as the stream grows.
The structural trade-offs mirror the latency ones:

- AS/AC pay vector slack (capacity doubling) and per-vertex headers;
- Stinger pays block slack (a vertex with 17 edges holds 32 slots);
- DAH pays hash-table load-factor slack twice (vertex tables and
  per-hub neighbor sets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.datasets.catalog import DEFAULT_BATCH_SIZE, load_dataset
from repro.graph import ExecutionContext, make_structure
from repro.streaming.batching import make_batches

STRUCTURE_NAMES = ("AS", "AC", "Stinger", "DAH")


@dataclass(frozen=True)
class FootprintSample:
    """Live structure memory after one ingested batch."""

    batch_index: int
    edges: int
    live_bytes: int

    @property
    def bytes_per_edge(self) -> float:
        return self.live_bytes / self.edges if self.edges else 0.0


@dataclass
class MemoryReport:
    """Footprint series of every structure over one dataset's stream."""

    dataset: str
    series: Dict[str, List[FootprintSample]]

    def final_bytes_per_edge(self) -> Dict[str, float]:
        return {
            name: samples[-1].bytes_per_edge for name, samples in self.series.items()
        }

    def final_bytes(self) -> Dict[str, int]:
        return {name: samples[-1].live_bytes for name, samples in self.series.items()}


def run_memory_report(
    dataset_name: str,
    batch_size: int = DEFAULT_BATCH_SIZE,
    structures: Sequence[str] = STRUCTURE_NAMES,
    seed: int = 0,
    size_factor: float = 1.0,
) -> MemoryReport:
    """Stream one dataset through each structure, sampling live bytes."""
    dataset = load_dataset(dataset_name, seed=seed, size_factor=size_factor)
    batches = make_batches(dataset.edges, batch_size, shuffle_seed=seed)
    ctx = ExecutionContext()
    series: Dict[str, List[FootprintSample]] = {}
    for name in structures:
        structure = make_structure(
            name, dataset.max_nodes, directed=dataset.directed
        )
        baseline = structure.space.live_bytes  # fixed arrays (headers etc.)
        samples: List[FootprintSample] = []
        for index, batch in enumerate(batches):
            structure.update(batch, ctx)
            samples.append(
                FootprintSample(
                    batch_index=index,
                    edges=structure.num_edges,
                    live_bytes=structure.space.live_bytes,
                )
            )
        series[name] = samples
        del baseline
    return MemoryReport(dataset=dataset_name, series=series)


def render_memory_report(reports: Sequence[MemoryReport]) -> str:
    """Plain-text table of final footprints per dataset and structure."""
    lines = [
        "Memory footprint: live simulated bytes after the full stream",
        "-" * 78,
        f"  {'dataset':8s} " + "".join(f"{name:>14s}" for name in STRUCTURE_NAMES),
    ]
    for report in reports:
        per_edge = report.final_bytes_per_edge()
        totals = report.final_bytes()
        lines.append(
            f"  {report.dataset:8s} "
            + "".join(
                f"{totals.get(name, 0) / 1024:>10.0f} KiB" for name in STRUCTURE_NAMES
            )
        )
        lines.append(
            f"  {'  B/edge':8s} "
            + "".join(f"{per_edge.get(name, 0.0):>14.1f}" for name in STRUCTURE_NAMES)
        )
    return "\n".join(lines)

"""Thread-level-parallelism diagnosis: contention vs imbalance.

Section VI-B's insight: the update phase's low TLP has *two distinct
causes*, visible only inside the scheduler --

- **thread contention** for short-tailed graphs on AS (threads wait on
  the hot vertices' coarse locks), and
- **workload imbalance** for heavy-tailed graphs on DAH (the chunk
  holding the hot vertex does most of the work while other chunks'
  threads idle).

The paper infers this indirectly from PCM counters; the simulator can
measure it directly.  Two per-batch metrics:

- ``lock_wait_share`` -- lock-wait cycles over total busy cycles
  (nonzero only for lock-based structures);
- ``imbalance`` -- max over mean per-thread *insert* work (the fixed
  per-batch routing overhead is excluded so the skew of the real work
  is visible; 1.0 is perfectly balanced, ``threads`` is one thread
  doing everything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.datasets.catalog import DEFAULT_BATCH_SIZE, load_dataset
from repro.graph import ExecutionContext, make_structure
from repro.sim.tasks import TaskArray
from repro.streaming.batching import make_batches


@dataclass(frozen=True)
class TLPSample:
    """Parallelism diagnostics of one batch update."""

    batch_index: int
    speedup: float
    utilization: float
    lock_wait_share: float
    contended_acquires: int
    imbalance: float


@dataclass
class TLPReport:
    """Per-batch TLP diagnostics of one (dataset, structure) stream."""

    dataset: str
    structure: str
    threads: int
    samples: List[TLPSample]

    def mean(self, attribute: str) -> float:
        return float(np.mean([getattr(s, attribute) for s in self.samples]))


def run_tlp_report(
    dataset_name: str,
    structure_name: str,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 0,
    size_factor: float = 1.0,
    ctx: ExecutionContext = None,
) -> TLPReport:
    """Stream one dataset through one structure, diagnosing each batch."""
    dataset = load_dataset(dataset_name, seed=seed, size_factor=size_factor)
    if ctx is None:
        ctx = ExecutionContext()
    structure = make_structure(
        structure_name, dataset.max_nodes, directed=dataset.directed,
        cost_model=ctx.cost_model,
    )
    from dataclasses import replace as dc_replace

    keep_ctx = dc_replace(ctx, keep_tasks=True)
    threads = keep_ctx.threads
    samples: List[TLPSample] = []
    for index, batch in enumerate(
        make_batches(dataset.edges, batch_size, shuffle_seed=seed)
    ):
        result = structure.update(batch, keep_ctx)
        schedule = result.schedule
        busy = schedule.thread_busy_cycles
        busy_total = float(busy.sum())
        # Per-thread *insert* work, overhead tasks excluded.
        tasks = result.extra["tasks"]
        if isinstance(tasks, TaskArray):
            keep = ~tasks.overhead
            thread = np.where(
                tasks.chunk >= 0,
                tasks.chunk % threads,
                np.asarray(schedule.task_thread, dtype=np.int64),
            )
            work = np.bincount(
                thread[keep], weights=tasks.total_work[keep], minlength=threads
            )
        else:
            work = np.zeros(threads)
            for task_index, task in enumerate(tasks):
                if task.overhead:
                    continue
                if task.chunk is not None:
                    thread = task.chunk % threads
                else:
                    thread = int(schedule.task_thread[task_index])
                work[thread] += task.total_work
        mean_work = float(work.mean()) if work.size else 0.0
        samples.append(
            TLPSample(
                batch_index=index,
                speedup=schedule.speedup,
                utilization=schedule.utilization,
                lock_wait_share=(
                    schedule.lock_wait_cycles / busy_total if busy_total else 0.0
                ),
                contended_acquires=schedule.contended_acquires,
                imbalance=(float(work.max()) / mean_work) if mean_work else 1.0,
            )
        )
    return TLPReport(
        dataset=dataset_name,
        structure=structure_name,
        threads=ctx.threads,
        samples=samples,
    )


def render_tlp(reports: Sequence[TLPReport]) -> str:
    """Plain-text table of the TLP diagnosis per stream."""
    lines = [
        "Update-phase TLP diagnosis: contention vs imbalance (Section VI-B)",
        "-" * 78,
        f"  {'dataset':8s} {'struct':8s} {'speedup':>8s} {'util':>6s} "
        f"{'lock-wait':>10s} {'imbalance':>10s}",
    ]
    for report in reports:
        lines.append(
            f"  {report.dataset:8s} {report.structure:8s} "
            f"{report.mean('speedup'):>8.2f} "
            f"{100 * report.mean('utilization'):>5.1f}% "
            f"{100 * report.mean('lock_wait_share'):>9.1f}% "
            f"{report.mean('imbalance'):>10.2f}"
        )
    return "\n".join(lines)

"""Machine-readable export of characterization results.

Writes the profiling sweeps to CSV so results can be diffed across
runs, plotted externally, or compared against the paper's numbers
programmatically.  One row per measured quantity; no aggregation is
baked in beyond the P1/P2/P3 staging the paper uses.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.analysis.hardware_profile import HardwareProfile
from repro.analysis.software_profile import STAGES, SoftwareProfile


def export_software_profile(
    profile: SoftwareProfile, path: Union[str, Path]
) -> Path:
    """Write per-stage batch/update/compute latencies to CSV.

    Columns: dataset, algorithm, model, structure, stage, series,
    mean_seconds, ci_seconds, samples.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "dataset", "algorithm", "model", "structure", "stage",
                "series", "mean_seconds", "ci_seconds", "samples",
            ]
        )
        for dataset, result in profile.results.items():
            for structure in result.structures:
                stats = profile._stats(dataset, "update", structure)
                for stage, stat in zip(STAGES, stats):
                    writer.writerow(
                        [dataset, "", "", structure, stage, "update",
                         f"{stat.mean:.9e}", f"{stat.ci:.9e}", stat.count]
                    )
            for algorithm in result.algorithms:
                for model in result.models:
                    for structure in result.structures:
                        for series in ("compute", "batch"):
                            stats = profile._stats(
                                dataset, series, algorithm, model, structure
                            )
                            for stage, stat in zip(STAGES, stats):
                                writer.writerow(
                                    [dataset, algorithm, model, structure,
                                     stage, series, f"{stat.mean:.9e}",
                                     f"{stat.ci:.9e}", stat.count]
                                )
    return path


def export_hardware_profile(
    profile: HardwareProfile, path: Union[str, Path]
) -> Path:
    """Write the Section VI counters and scaling curves to CSV.

    Columns: group, phase, kind, key, stage, value -- where kind is
    either ``scaling`` (key = core count, value = speedup) or a counter
    name (key empty, one row per stage).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    counter_names = (
        "l2_hit_ratio", "llc_hit_ratio", "l2_mpki", "llc_mpki",
        "memory_bandwidth", "qpi_utilization",
    )
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["group", "phase", "kind", "key", "stage", "value"])
        for group_name, group in profile.groups.items():
            for phase in ("update", "compute"):
                for cores, speedup in group.scaling_performance(phase).items():
                    writer.writerow(
                        [group_name, phase, "scaling", cores, "", f"{speedup:.6f}"]
                    )
                for counter in counter_names:
                    for stage in range(3):
                        value = group.stage_counter(phase, stage, counter)
                        writer.writerow(
                            [group_name, phase, counter, "", STAGES[stage],
                             f"{value:.9e}"]
                        )
    return path

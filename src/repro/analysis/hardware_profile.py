"""Architecture-level profiling: Figs. 9-10 (Section VI).

The paper characterizes the update and compute phases with Intel PCM
on the best structure per dataset group:

- **STail** -- short-tailed LJ, Orkut, RMAT on AS;
- **HTail** -- heavy-tailed Wiki, Talk on DAH;

all with the incremental compute model, averaged over the six
algorithms.  This module reproduces the three experiments on the
simulated machine:

- **Fig. 9(a)** core scaling: each batch's update task list is
  re-scheduled at every physical core count (threads = 2 x cores,
  cores split across both sockets); compute runs are re-priced
  likewise.
- **Fig. 9(b,c)** memory and QPI bandwidth: the phases' memory traces
  replay through a persistent cache hierarchy; LLC miss traffic over
  the phase's simulated time gives bandwidth, and the remote-socket
  share gives QPI utilization.
- **Fig. 10** caches: L2/LLC hit ratios and MPKI per phase, from the
  same replays.  The hierarchy persists from update to compute within
  a batch, reproducing the cross-phase reuse the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.registry import get_algorithm
from repro.analysis.stats import stage_slices
from repro.compute.pricing import price_compute_run
from repro.datasets.catalog import DEFAULT_BATCH_SIZE, HEAVY_TAILED, SHORT_TAILED, load_dataset
from repro.engine.fingerprint import canonical, describe_dataset, fingerprint
from repro.engine.store import RunStore
from repro.errors import SimulationError
from repro.graph import ReferenceGraph, make_structure
from repro.graph.base import ExecutionContext
from repro.graph.properties import VertexProperties
from repro.sim.cache import CacheHierarchy
from repro.sim.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.sim.counters import PhaseCounters, derive_counters
from repro.sim.machine import MachineConfig, SKYLAKE_GOLD_6142
from repro.obs.tracer import TRACER
from repro.sim.scheduler import ScheduleResult
from repro.sim.trace import TraceRecorder
from repro.streaming.batching import make_batches

#: Core counts swept in Fig. 9(a).
DEFAULT_CORE_COUNTS = (4, 8, 12, 16, 20, 24, 28)

#: Cap on replayed accesses per phase per batch (systematic sampling).
DEFAULT_TRACE_CAP = 60_000

_PHASES = ("update", "compute")


@dataclass
class PhaseSample:
    """One batch's counters for one phase."""

    batch_index: int
    counters: PhaseCounters


@dataclass
class HardwareCell:
    """One (dataset, structure) slice of an architecture profile.

    The unit of caching and parallelism in the hardware sweep: cells
    are independent (each gets its own cache hierarchy, reference
    graph, and algorithm states), so the engine can execute them in any
    order and merge deterministically.
    """

    dataset: str
    structure: str
    batches: int
    #: {phase: {cores: total makespan cycles summed over batches}}
    scaling_cycles: Dict[str, Dict[int, float]]
    #: {phase: [PhaseCounters, ...]} in batch order.
    counters: Dict[str, List[PhaseCounters]]

    def to_payload(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Split into JSON metadata and columnar arrays for the store."""
        fields = list(PhaseCounters.__dataclass_fields__)
        core_counts = sorted(self.scaling_cycles[_PHASES[0]])
        meta = {
            "dataset": self.dataset,
            "structure": self.structure,
            "batches": self.batches,
            "core_counts": core_counts,
            "counter_fields": fields,
        }
        arrays = {}
        for phase in _PHASES:
            arrays[f"scaling_{phase}"] = np.asarray(
                [self.scaling_cycles[phase][c] for c in core_counts]
            )
            arrays[f"counters_{phase}"] = np.asarray(
                [[getattr(c, f) for f in fields] for c in self.counters[phase]]
            ).reshape(len(self.counters[phase]), len(fields))
        return meta, arrays

    @classmethod
    def from_payload(cls, meta: dict, arrays: Dict[str, np.ndarray]) -> "HardwareCell":
        fields = list(meta["counter_fields"])
        if fields != list(PhaseCounters.__dataclass_fields__):
            raise SimulationError("cached cell has incompatible counter fields")
        core_counts = [int(c) for c in meta["core_counts"]]
        scaling = {
            phase: dict(zip(core_counts, map(float, arrays[f"scaling_{phase}"])))
            for phase in _PHASES
        }
        counters = {
            phase: [
                PhaseCounters(**dict(zip(fields, map(float, row))))
                for row in arrays[f"counters_{phase}"]
            ]
            for phase in _PHASES
        }
        return cls(
            dataset=meta["dataset"],
            structure=meta["structure"],
            batches=int(meta["batches"]),
            scaling_cycles=scaling,
            counters=counters,
        )


@dataclass
class GroupProfile:
    """Aggregated architecture profile of one dataset group."""

    group: str
    structure: str
    datasets: Tuple[str, ...]
    #: {phase: {cores: total makespan cycles summed over batches}}
    scaling_cycles: Dict[str, Dict[int, float]] = field(default_factory=dict)
    #: {phase: [PhaseSample, ...]} in batch order per dataset.
    samples: Dict[str, List[PhaseSample]] = field(
        default_factory=lambda: {p: [] for p in _PHASES}
    )
    batches_per_dataset: Dict[str, int] = field(default_factory=dict)

    def scaling_performance(self, phase: str) -> Dict[int, float]:
        """Fig. 9(a): speedup of each core count over the smallest."""
        cycles = self.scaling_cycles[phase]
        base_cores = min(cycles)
        base = cycles[base_cores]
        return {cores: base / cycles[cores] for cores in sorted(cycles)}

    def stage_counter(self, phase: str, stage: int, attribute: str, stages: int = 3) -> float:
        """Mean of one counter over a stage's batches, pooled per dataset."""
        values = []
        offset = 0
        samples = self.samples[phase]
        for dataset, count in self.batches_per_dataset.items():
            slices = stage_slices(count, stages)
            chunk = samples[offset: offset + count]
            for sample in chunk[slices[stage]]:
                values.append(getattr(sample.counters, attribute))
            offset += count
        if not values:
            raise SimulationError(f"no samples for {phase} stage {stage}")
        return float(np.mean(values))


@dataclass
class HardwareProfile:
    """Both groups' profiles (the paper's STail and HTail averages)."""

    groups: Dict[str, GroupProfile]

    def __getitem__(self, group: str) -> GroupProfile:
        if group not in self.groups:
            raise SimulationError(f"unknown group {group!r}")
        return self.groups[group]


def _synthetic_schedule(latency_cycles: float, work_cycles: float, threads: int) -> ScheduleResult:
    """Wrap pricer output in the shape ``derive_counters`` consumes."""
    return ScheduleResult(
        makespan_cycles=latency_cycles,
        total_work_cycles=work_cycles,
        threads=threads,
        task_count=0,
        thread_busy_cycles=np.zeros(threads),
        task_thread=np.empty(0, dtype=np.int32),
    )


class HardwareProfiler:
    """Streams one dataset on one structure with full instrumentation."""

    def __init__(
        self,
        machine: MachineConfig = SKYLAKE_GOLD_6142,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
        algorithms: Sequence[str] = ("BFS", "CC", "MC", "PR", "SSSP", "SSWP"),
        batch_size: int = DEFAULT_BATCH_SIZE,
        trace_cap: int = DEFAULT_TRACE_CAP,
        seed: int = 0,
        prefetch: bool = False,
    ) -> None:
        self.machine = machine
        self.cost = cost_model
        self.core_counts = tuple(core_counts)
        self.algorithms = tuple(algorithms)
        self.batch_size = batch_size
        self.trace_cap = trace_cap
        self.seed = seed
        self.prefetch = prefetch

    def cell_key(
        self, dataset_name: str, structure_name: str, size_factor: float
    ) -> str:
        """RunStore fingerprint of one (dataset, structure) cell."""
        fields = list(PhaseCounters.__dataclass_fields__)
        return fingerprint(
            {
                "kind": "hardware-cell",
                "dataset": describe_dataset(dataset_name, self.seed, size_factor),
                "structure": structure_name,
                "machine": canonical(self.machine),
                "cost_model": canonical(self.cost),
                "core_counts": list(self.core_counts),
                "algorithms": list(self.algorithms),
                "batch_size": self.batch_size,
                "trace_cap": self.trace_cap,
                "prefetch": self.prefetch,
                "counter_fields": fields,
            }
        )

    def profile_group(
        self,
        group: str,
        datasets: Sequence[str],
        structure_name: str,
        size_factor: float = 1.0,
        store: Optional[RunStore] = None,
        jobs: Optional[int] = None,
    ) -> GroupProfile:
        """Profile every dataset of one group on its best structure."""
        cells = self.profile_cells(
            [(name, structure_name, size_factor) for name in datasets],
            store=store,
            jobs=jobs,
        )
        return merge_cells(group, structure_name, cells, self.core_counts)

    def profile_cells(
        self,
        specs: Sequence[Tuple[str, str, float]],
        store: Optional[RunStore] = None,
        jobs: Optional[int] = None,
    ) -> List[HardwareCell]:
        """Resolve (dataset, structure, size_factor) cells, in order.

        Cached cells load from ``store``; the rest run serially or fan
        out over a process pool, then everything is reassembled in the
        order of ``specs``.
        """
        cells: List[Optional[HardwareCell]] = [None] * len(specs)
        keys: List[Optional[str]] = [None] * len(specs)
        pending: List[Tuple[int, Tuple[str, str, float]]] = []
        for index, (dataset, structure, size_factor) in enumerate(specs):
            if store is not None:
                keys[index] = self.cell_key(dataset, structure, size_factor)
                payload = store.load_arrays(keys[index])
                if payload is not None:
                    try:
                        cells[index] = HardwareCell.from_payload(*payload)
                        continue
                    except SimulationError:
                        pass
            pending.append((index, (dataset, structure, size_factor)))
        if pending:
            payloads = [(self,) + spec for _, spec in pending]
            if jobs and jobs > 1 and len(pending) > 1:
                from concurrent.futures import ProcessPoolExecutor

                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    fresh = list(pool.map(_run_hardware_cell, payloads))
            else:
                fresh = [_run_hardware_cell(payload) for payload in payloads]
            for (index, _), cell in zip(pending, fresh):
                cells[index] = cell
                if store is not None:
                    store.save_arrays(keys[index], *cell.to_payload())
        return [cell for cell in cells if cell is not None]

    # ------------------------------------------------------------------

    def profile_cell(
        self,
        dataset_name: str,
        structure_name: str,
        size_factor: float = 1.0,
    ) -> HardwareCell:
        """Stream one dataset on one structure with full instrumentation."""
        machine = self.machine
        dataset = load_dataset(dataset_name, seed=self.seed, size_factor=size_factor)
        batches = make_batches(dataset.edges, self.batch_size, shuffle_seed=self.seed)
        structure = make_structure(
            structure_name,
            dataset.max_nodes,
            directed=dataset.directed,
            cost_model=self.cost,
        )
        reference = ReferenceGraph(dataset.max_nodes, directed=dataset.directed)
        hierarchy = CacheHierarchy(machine, prefetch=self.prefetch)
        properties = VertexProperties(dataset.max_nodes, structure.space)
        for algorithm in self.algorithms:
            properties.add(algorithm)
        visited_region = structure.space.alloc(
            max(dataset.max_nodes // 8, 64), "inc.visited"
        )
        states = {
            name: get_algorithm(name).make_state(dataset.max_nodes)
            for name in self.algorithms
        }
        deg_in = np.zeros(dataset.max_nodes, dtype=np.int64)
        deg_out = np.zeros(dataset.max_nodes, dtype=np.int64)
        source = int(np.bincount(dataset.edges.src).argmax())
        threads = machine.hardware_threads
        full_ctx = ExecutionContext(machine=machine, cost_model=self.cost)
        scaling_ctxs = {
            cores: ExecutionContext(
                machine=machine.with_cores(cores),
                threads=2 * cores,
                cost_model=self.cost,
            )
            for cores in self.core_counts
        }

        cell = HardwareCell(
            dataset=dataset_name,
            structure=structure_name,
            batches=len(batches),
            scaling_cycles={
                p: {c: 0.0 for c in self.core_counts} for p in _PHASES
            },
            counters={p: [] for p in _PHASES},
        )
        for batch_index, batch in enumerate(batches):
            # ---- update phase --------------------------------------
            recorder = TraceRecorder()
            ctx = ExecutionContext(
                machine=machine, cost_model=self.cost, recorder=recorder, keep_tasks=True
            )
            update = structure.update(batch, ctx)
            tasks = update.extra["tasks"]
            for cores, sctx in scaling_ctxs.items():
                scaled = structure.schedule_tasks(tasks, sctx)
                cell.scaling_cycles["update"][cores] += scaled.makespan_cycles
            full_trace = update.trace
            sampled = full_trace.sample(self.trace_cap, seed=batch_index)
            scale = max(1.0, len(full_trace) / max(len(sampled), 1))
            stats = hierarchy.replay(sampled, update.schedule.task_thread)
            cell.counters["update"].append(
                derive_counters(update.schedule, stats, machine, scale)
            )

            # ---- reference bookkeeping -----------------------------
            for u, v, w in reference.update_collect(batch):
                deg_out[u] += 1
                deg_in[v] += 1
                if not dataset.directed and u != v:
                    deg_out[v] += 1
                    deg_in[u] += 1
            n = reference.num_nodes

            # ---- compute phase (INC, averaged over algorithms) -----
            compute_counter_list = []
            for alg_name in self.algorithms:
                with TRACER.span("compute"):
                    algorithm = get_algorithm(alg_name)
                    affected = algorithm.affected_from_batch(batch, reference)
                    run = algorithm.inc_run(
                        reference, states[alg_name], affected, source=source
                    )
                    for cores, sctx in scaling_ctxs.items():
                        pricing = price_compute_run(
                            run, structure_name, deg_in[:n], deg_out[:n], sctx,
                            neighbor_degree_query=algorithm.neighbor_degree_query,
                        )
                        cell.scaling_cycles["compute"][cores] += pricing.latency_cycles
                    pricing = price_compute_run(
                        run, structure_name, deg_in[:n], deg_out[:n], full_ctx,
                        neighbor_degree_query=algorithm.neighbor_degree_query,
                    )
                    trace, task_thread = self._compute_trace(
                        run, structure, reference, properties, alg_name,
                        visited_region, threads,
                    )
                sampled = trace.sample(self.trace_cap, seed=batch_index)
                scale = max(1.0, len(trace) / max(len(sampled), 1))
                stats = hierarchy.replay(sampled, task_thread)
                schedule = _synthetic_schedule(
                    pricing.latency_cycles, pricing.total_work_cycles, threads
                )
                compute_counter_list.append(
                    derive_counters(schedule, stats, machine, scale)
                )
            cell.counters["compute"].append(
                _average_counters(compute_counter_list)
            )
        return cell

    def _compute_trace(
        self,
        run,
        structure,
        reference: ReferenceGraph,
        properties: VertexProperties,
        algorithm: str,
        visited_region,
        threads: int,
    ):
        """Emit the compute phase's memory accesses as a trace.

        Every evaluated vertex reads its in-neighbors' values from the
        structure plus their property entries and writes its own; every
        triggered vertex scans its out-neighbors and touches the
        visited bitvector.  One task per vertex, round-robin threads.
        """
        recorder = TraceRecorder()
        task = 0
        for iteration in run.iterations:
            for v in iteration.pull_vertices:
                v = int(v)
                recorder.begin_task(task)
                task += 1
                structure.trace_in_traversal(v, recorder)
                for u, _ in reference.in_neigh(v):
                    recorder.access(properties.address_of(algorithm, int(u)))
                recorder.access(properties.address_of(algorithm, v), write=True)
            for v in iteration.push_vertices:
                v = int(v)
                recorder.begin_task(task)
                task += 1
                structure.trace_out_traversal(v, recorder)
                for w, _ in reference.out_neigh(v):
                    recorder.access(visited_region.element(int(w) // 8, 1), write=True)
        task_thread = np.arange(max(task, 1), dtype=np.int32) % threads
        return recorder.finalize(), task_thread


def _run_hardware_cell(payload) -> HardwareCell:
    """Process-pool entry point: run one cell on a pickled profiler."""
    profiler, dataset, structure, size_factor = payload
    return profiler.profile_cell(dataset, structure, size_factor)


def merge_cells(
    group: str,
    structure: str,
    cells: Sequence[HardwareCell],
    core_counts: Sequence[int],
) -> GroupProfile:
    """Assemble a :class:`GroupProfile` from per-dataset cells, in order.

    Produces exactly what the former monolithic per-group loop did:
    scaling cycles summed across datasets, samples concatenated in
    dataset order with per-dataset batch indices.
    """
    profile = GroupProfile(
        group=group,
        structure=structure,
        datasets=tuple(cell.dataset for cell in cells),
        scaling_cycles={p: {c: 0.0 for c in core_counts} for p in _PHASES},
    )
    for cell in cells:
        profile.batches_per_dataset[cell.dataset] = cell.batches
        for phase in _PHASES:
            for cores in core_counts:
                profile.scaling_cycles[phase][cores] += cell.scaling_cycles[phase][
                    cores
                ]
            profile.samples[phase].extend(
                PhaseSample(batch_index=index, counters=counters)
                for index, counters in enumerate(cell.counters[phase])
            )
    return profile


def _average_counters(counters: List[PhaseCounters]) -> PhaseCounters:
    """Field-wise mean of a list of :class:`PhaseCounters`."""
    if not counters:
        raise SimulationError("cannot average zero counters")
    fields = PhaseCounters.__dataclass_fields__
    means = {
        name: float(np.mean([getattr(c, name) for c in counters])) for name in fields
    }
    return PhaseCounters(**means)


def run_hardware_profile(
    machine: MachineConfig = SKYLAKE_GOLD_6142,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
    algorithms: Sequence[str] = ("BFS", "CC", "MC", "PR", "SSSP", "SSWP"),
    short_tailed: Sequence[str] = SHORT_TAILED,
    heavy_tailed: Sequence[str] = HEAVY_TAILED,
    batch_size: int = DEFAULT_BATCH_SIZE,
    size_factor: float = 1.0,
    seed: int = 0,
    trace_cap: int = DEFAULT_TRACE_CAP,
    prefetch: bool = False,
    store: Optional[RunStore] = None,
    jobs: Optional[int] = None,
) -> HardwareProfile:
    """Run the full Section VI characterization on both groups.

    All (group, dataset) cells resolve through one cache lookup /
    process pool, then merge per group in dataset order, so the profile
    is identical to the sequential sweep regardless of ``jobs``.
    """
    profiler = HardwareProfiler(
        machine=machine,
        cost_model=cost_model,
        core_counts=core_counts,
        algorithms=algorithms,
        batch_size=batch_size,
        trace_cap=trace_cap,
        seed=seed,
        prefetch=prefetch,
    )
    plan = [("STail", tuple(short_tailed), "AS"), ("HTail", tuple(heavy_tailed), "DAH")]
    specs = [
        (dataset, structure, size_factor)
        for _, datasets, structure in plan
        for dataset in datasets
    ]
    cells = profiler.profile_cells(specs, store=store, jobs=jobs)
    groups = {}
    offset = 0
    for group, datasets, structure in plan:
        groups[group] = merge_cells(
            group,
            structure,
            cells[offset: offset + len(datasets)],
            profiler.core_counts,
        )
        offset += len(datasets)
    return HardwareProfile(groups=groups)

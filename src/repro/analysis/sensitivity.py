"""Batch-size sensitivity study.

The paper fixes the batch size at 500K edges (Section IV-B) and notes
other systems use similar values.  This harness sweeps the batch size
and reports each structure's total update latency for the stream --
exposing the trade-off the fixed choice hides:

- chunked structures (AC, DAH) amortize their per-batch routing scan
  over bigger batches;
- AS's lock convoy on heavy-tailed streams *worsens* with batch size
  (more simultaneous updates to the hot vertex per batch);
- tiny batches drown everyone in per-batch dispatch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.engine.store import RunStore
from repro.engine.sweep import StreamRequest, run_many
from repro.streaming.driver import StreamConfig

DEFAULT_BATCH_SIZES = (500, 1000, 2500, 5000, 10000)
STRUCTURE_NAMES = ("AS", "AC", "Stinger", "DAH")


@dataclass
class SensitivityResult:
    """Total stream update latency per (structure, batch size)."""

    dataset: str
    batch_sizes: Sequence[int]
    #: {structure: {batch_size: total update seconds}}
    totals: Dict[str, Dict[int, float]]

    def best_batch_size(self, structure: str) -> int:
        series = self.totals[structure]
        return min(series, key=series.get)


def run_batch_size_sensitivity(
    dataset_name: str,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    structures: Sequence[str] = STRUCTURE_NAMES,
    seed: int = 0,
    size_factor: float = 1.0,
    store: Optional[RunStore] = None,
    jobs: Optional[int] = None,
) -> SensitivityResult:
    """Sweep batch sizes; returns total update latency per structure.

    Each batch size is one engine request with an empty compute matrix
    (update phase only), so the sweep shares the RunStore cache and the
    process pool with every other harness.
    """
    requests = [
        StreamRequest(
            dataset=dataset_name,
            config=StreamConfig(
                batch_size=batch_size,
                structures=tuple(structures),
                algorithms=(),
                models=(),
                shuffle_seed=seed,
            ),
            seed=seed,
            size_factor=size_factor,
        )
        for batch_size in batch_sizes
    ]
    results = run_many(requests, store=store, jobs=jobs)
    totals: Dict[str, Dict[int, float]] = {name: {} for name in structures}
    for batch_size, result in zip(batch_sizes, results):
        for name in structures:
            totals[name][batch_size] = float(result.update_latency(name).sum())
    return SensitivityResult(
        dataset=dataset_name, batch_sizes=tuple(batch_sizes), totals=totals
    )


def render_sensitivity(results: Sequence[SensitivityResult]) -> str:
    """Plain-text table: total update latency by batch size."""
    lines = ["Batch-size sensitivity: total stream update latency (ms)", "-" * 78]
    for result in results:
        lines.append(f"  {result.dataset}:")
        header = f"    {'batch':>9s} " + "".join(
            f"{name:>10s}" for name in result.totals
        )
        lines.append(header)
        for batch_size in result.batch_sizes:
            row = f"    {batch_size:>9d} " + "".join(
                f"{result.totals[name][batch_size] * 1e3:>10.3f}"
                for name in result.totals
            )
            lines.append(row)
        best = {name: result.best_batch_size(name) for name in result.totals}
        lines.append(f"    best batch size: {best}")
    return "\n".join(lines)

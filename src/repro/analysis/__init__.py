"""Analysis harnesses regenerating the paper's tables and figures.

- :mod:`repro.analysis.stats` -- P1/P2/P3 stage averaging with 95%
  confidence intervals (Section IV-B methodology).
- :mod:`repro.analysis.software_profile` -- Section V: Table III and
  Figs. 6-8 from one streaming sweep.
- :mod:`repro.analysis.hardware_profile` -- Section VI: Figs. 9-10 via
  the simulated machine's scheduler, caches, and traffic counters.
- :mod:`repro.analysis.degrees` -- Table IV degree statistics.
- :mod:`repro.analysis.report` -- plain-text renderers shared by the
  benchmark harnesses.
"""

from repro.analysis.stats import StageStat, stage_slices, stage_stats
from repro.analysis.degrees import degree_table
from repro.analysis.software_profile import SoftwareProfile, run_software_profile
from repro.analysis.hardware_profile import HardwareProfile, run_hardware_profile
from repro.analysis.conformance import (
    conformance_report,
    render_conformance,
    run_conformance,
)
from repro.analysis.memory_report import MemoryReport, run_memory_report
from repro.analysis.tlp import TLPReport, run_tlp_report
from repro.analysis.sensitivity import SensitivityResult, run_batch_size_sensitivity

__all__ = [
    "HardwareProfile",
    "TLPReport",
    "conformance_report",
    "render_conformance",
    "run_conformance",
    "run_tlp_report",
    "MemoryReport",
    "SensitivityResult",
    "SoftwareProfile",
    "StageStat",
    "degree_table",
    "run_batch_size_sensitivity",
    "run_hardware_profile",
    "run_memory_report",
    "run_software_profile",
    "stage_slices",
    "stage_stats",
]

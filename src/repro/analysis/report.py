"""Plain-text renderers for the paper's tables and figures.

Each ``render_*`` function returns a string matching the corresponding
table/figure of the paper; the benchmark harnesses print these so a
run regenerates the paper's artifacts as text.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.algorithms.registry import ALGORITHMS
from repro.analysis.degrees import DegreeRow
from repro.analysis.hardware_profile import HardwareProfile
from repro.analysis.software_profile import STAGES, SoftwareProfile
from repro.datasets.catalog import DATASETS, DEFAULT_BATCH_SIZE

#: Table I's vertex functions, as printed in the paper.
VERTEX_FUNCTIONS = {
    "BFS": "v.depth <- min over InEdges(v) of (e.source.depth + 1)",
    "CC": "v.value <- min(v.value, min over InEdges(v) of e.source.value)",
    "MC": "v.value <- max(v.value, max over InEdges(v) of e.source.value)",
    "PR": "v.rank <- 0.15/|V| + 0.85 * sum over InEdges(v) of "
          "(e.source.rank / e.source.out_degree)",
    "SSSP": "v.path <- min over InEdges(v) of (e.source.path + e.weight)",
    "SSWP": "v.path <- max over InEdges(v) of min(e.source.path, e.weight)",
}


def _rule(width: int = 78) -> str:
    return "-" * width


def render_table1() -> str:
    """Table I: vertex functions for the six algorithms."""
    lines = ["Table I: Vertex functions for algorithms", _rule()]
    for name in ALGORITHMS:
        lines.append(f"  {name:5s} {VERTEX_FUNCTIONS[name]}")
    return "\n".join(lines)


def render_table2(batch_size: int = DEFAULT_BATCH_SIZE) -> str:
    """Table II: evaluated datasets (stand-in vs paper scale)."""
    lines = [
        "Table II: Evaluated datasets "
        f"(stand-in scale, batch size {batch_size}; paper in parentheses)",
        _rule(),
        f"  {'dataset':8s} {'vertices':>12s} {'edges':>12s} {'batchCount':>10s}",
    ]
    for name, spec in DATASETS.items():
        batches = (spec.num_edges + batch_size - 1) // batch_size
        paper = spec.paper
        lines.append(
            f"  {name:8s} {spec.num_nodes:>12,d} {spec.num_edges:>12,d} {batches:>10d}"
            f"    ({paper.vertices:,} / {paper.edges:,} / {paper.batch_count})"
        )
    return "\n".join(lines)


def render_table3(profile: SoftwareProfile) -> str:
    """Table III: best combination and absolute latency per stage."""
    lines = [
        "Table III: Best combination of data structure and compute model",
        "(cell: best-label, batch processing latency in simulated seconds)",
        _rule(),
        f"  {'alg':5s} {'dataset':7s} "
        + "".join(f"{stage:>26s}" for stage in STAGES),
    ]
    for (algorithm, dataset), cells in profile.table3().items():
        row = f"  {algorithm:5s} {dataset:7s} "
        for cell in cells:
            row += f"{cell.label:>18s} {cell.latency_seconds:7.5f}"
        lines.append(row)
    return "\n".join(lines)


def render_table4(rows: Dict[str, DegreeRow]) -> str:
    """Table IV: max in/out degree, full stream and one batch."""
    lines = [
        "Table IV: Max in/out degree (stand-in; paper in parentheses)",
        _rule(),
        f"  {'dataset':8s} {'full in':>10s} {'full out':>10s} "
        f"{'batch in':>10s} {'batch out':>10s}  tail",
    ]
    for name, row in rows.items():
        tail = "heavy" if row.heavy_tailed else "short"
        lines.append(
            f"  {name:8s} {row.max_in:>10d} {row.max_out:>10d} "
            f"{row.batch_max_in:>10d} {row.batch_max_out:>10d}  {tail}"
            f"   (paper: {row.paper_max_in}/{row.paper_max_out} full, "
            f"{row.paper_batch_max_in}/{row.paper_batch_max_out} batch)"
        )
    return "\n".join(lines)


def render_fig6(
    profile: SoftwareProfile,
    algorithms: Optional[Sequence[str]] = None,
    stage: int = 2,
) -> str:
    """Fig. 6: per-structure latency normalized to AS at P3."""
    lines = [
        f"Fig. 6: latency of AC/DAH/Stinger normalized to AS at {STAGES[stage]} "
        "(best compute model)",
        _rule(),
        f"  {'alg':5s} {'dataset':7s} {'series':8s} "
        f"{'AC/AS':>8s} {'DAH/AS':>8s} {'Stinger/AS':>11s}",
    ]
    for dataset, result in profile.results.items():
        for algorithm in algorithms or result.algorithms:
            ratios = profile.fig6(algorithm, dataset, stage)
            for series in ("batch", "update", "compute"):
                r = ratios[series]
                lines.append(
                    f"  {algorithm:5s} {dataset:7s} {series:8s} "
                    f"{r.get('AC', float('nan')):>8.2f} "
                    f"{r.get('DAH', float('nan')):>8.2f} "
                    f"{r.get('Stinger', float('nan')):>11.2f}"
                )
    return "\n".join(lines)


def render_fig7(profile: SoftwareProfile) -> str:
    """Fig. 7: FS compute latency normalized to INC, per stage."""
    lines = [
        "Fig. 7: FS compute latency normalized to INC (best data structure)",
        _rule(),
        f"  {'alg':5s} {'dataset':7s} "
        + "".join(f"{stage:>8s}" for stage in STAGES),
    ]
    for dataset, result in profile.results.items():
        for algorithm in result.algorithms:
            ratios = profile.fig7(algorithm, dataset)
            lines.append(
                f"  {algorithm:5s} {dataset:7s} "
                + "".join(f"{ratio:>8.2f}" for ratio in ratios)
            )
    return "\n".join(lines)


def render_fig8(profile: SoftwareProfile) -> str:
    """Fig. 8: update share of batch processing latency, per stage."""
    lines = [
        "Fig. 8: update phase share of batch latency (best combination), %",
        _rule(),
        f"  {'alg':5s} {'dataset':7s} "
        + "".join(f"{stage:>8s}" for stage in STAGES),
    ]
    for dataset, result in profile.results.items():
        for algorithm in result.algorithms:
            shares = profile.fig8(algorithm, dataset)
            lines.append(
                f"  {algorithm:5s} {dataset:7s} "
                + "".join(f"{100 * share:>7.1f}%" for share in shares)
            )
    return "\n".join(lines)


def render_fig9(hw: HardwareProfile) -> str:
    """Fig. 9: core scaling, memory bandwidth, QPI utilization."""
    lines = ["Fig. 9(a): performance scalability to physical core count", _rule()]
    for group_name, group in hw.groups.items():
        for phase in ("update", "compute"):
            perf = group.scaling_performance(phase)
            series = "  ".join(f"{cores}c:{speedup:4.2f}" for cores, speedup in perf.items())
            lines.append(f"  {group_name:6s} {phase:8s} {series}")
    lines += ["", "Fig. 9(b): memory bandwidth utilization (GB/s)", _rule()]
    for group_name, group in hw.groups.items():
        for phase in ("update", "compute"):
            values = [
                group.stage_counter(phase, stage, "memory_bandwidth") / 1e9
                for stage in range(3)
            ]
            lines.append(
                f"  {group_name:6s} {phase:8s} "
                + "  ".join(f"{s}:{v:6.2f}" for s, v in zip(STAGES, values))
            )
    lines += ["", "Fig. 9(c): QPI link utilization (%)", _rule()]
    for group_name, group in hw.groups.items():
        for phase in ("update", "compute"):
            values = [
                100 * group.stage_counter(phase, stage, "qpi_utilization")
                for stage in range(3)
            ]
            lines.append(
                f"  {group_name:6s} {phase:8s} "
                + "  ".join(f"{s}:{v:5.1f}%" for s, v in zip(STAGES, values))
            )
    return "\n".join(lines)


def render_fig10(hw: HardwareProfile) -> str:
    """Fig. 10: L2/LLC hit ratios and MPKI per phase."""
    lines = ["Fig. 10(a): private L2 and shared LLC hit ratios (%)", _rule()]
    for group_name, group in hw.groups.items():
        for phase in ("update", "compute"):
            l2 = [
                100 * group.stage_counter(phase, stage, "l2_hit_ratio")
                for stage in range(3)
            ]
            llc = [
                100 * group.stage_counter(phase, stage, "llc_hit_ratio")
                for stage in range(3)
            ]
            lines.append(
                f"  {group_name:6s} {phase:8s} "
                + "  ".join(f"L2@{s}:{v:5.1f}%" for s, v in zip(STAGES, l2))
                + "   "
                + "  ".join(f"LLC@{s}:{v:5.1f}%" for s, v in zip(STAGES, llc))
            )
    lines += ["", "Fig. 10(b,c): L2 and LLC MPKI per phase", _rule()]
    for group_name, group in hw.groups.items():
        for phase in ("update", "compute"):
            l2 = [group.stage_counter(phase, stage, "l2_mpki") for stage in range(3)]
            llc = [group.stage_counter(phase, stage, "llc_mpki") for stage in range(3)]
            lines.append(
                f"  {group_name:6s} {phase:8s} "
                + "  ".join(f"L2@{s}:{v:5.1f}" for s, v in zip(STAGES, l2))
                + "   "
                + "  ".join(f"LLC@{s}:{v:5.1f}" for s, v in zip(STAGES, llc))
            )
    return "\n".join(lines)

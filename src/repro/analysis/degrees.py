"""Degree statistics: Table IV.

Max in/out-degree of each dataset, over the entire stream and over one
typical batch -- the structural signature that separates short-tailed
from heavy-tailed graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.datasets.catalog import DEFAULT_BATCH_SIZE, dataset_names, load_dataset


@dataclass(frozen=True)
class DegreeRow:
    """One dataset's row of Table IV."""

    dataset: str
    max_in: int
    max_out: int
    batch_max_in: int
    batch_max_out: int
    paper_max_in: int
    paper_max_out: int
    paper_batch_max_in: int
    paper_batch_max_out: int

    @property
    def heavy_tailed(self) -> bool:
        """The paper's classification: a batch tail far above the
        short-tailed graphs' single digits."""
        return max(self.batch_max_in, self.batch_max_out) >= 12


def degree_table(
    names: Optional[Sequence[str]] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 0,
    size_factor: float = 1.0,
) -> Dict[str, DegreeRow]:
    """Compute Table IV for the generated stand-in datasets."""
    rows: Dict[str, DegreeRow] = {}
    for name in names if names is not None else dataset_names():
        dataset = load_dataset(name, seed=seed, size_factor=size_factor)
        shuffled = dataset.edges.shuffled(seed)
        full_in, full_out = shuffled.max_in_out_degree()
        batch = shuffled.slice(0, min(batch_size, len(shuffled)))
        batch_in, batch_out = batch.max_in_out_degree()
        paper = dataset.spec.paper
        rows[name] = DegreeRow(
            dataset=name,
            max_in=full_in,
            max_out=full_out,
            batch_max_in=batch_in,
            batch_max_out=batch_out,
            paper_max_in=paper.max_in_degree if paper else 0,
            paper_max_out=paper.max_out_degree if paper else 0,
            paper_batch_max_in=paper.batch_max_in_degree if paper else 0,
            paper_batch_max_out=paper.batch_max_out_degree if paper else 0,
        )
    return rows

"""Software-level profiling: Table III and Figs. 6-8 (Section V).

One streaming sweep per dataset measures every (data structure x
compute model) combination; this module reduces the sweep to the
paper's reported artifacts:

- **Table III** -- the best combination per (algorithm, dataset) at
  each stage P1/P2/P3, with competitive alternatives (overlapping 95%
  confidence intervals).
- **Fig. 6** -- batch/update/compute latency of AC, DAH, Stinger
  normalized to AS at P3, at the best compute model.
- **Fig. 7** -- FS compute latency normalized to INC at the best data
  structure, per stage.
- **Fig. 8** -- the update phase's share of batch processing latency at
  the best combination, per stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import StageStat, stage_stats
from repro.datasets.catalog import dataset_names
from repro.engine.store import RunStore
from repro.engine.sweep import StreamRequest, run_many
from repro.errors import SimulationError
from repro.streaming.driver import StreamConfig
from repro.streaming.results import StreamResult

#: Stage names in paper order.
STAGES = ("P1", "P2", "P3")


@dataclass(frozen=True)
class ComboStat:
    """One (model, structure) combination's latency at one stage."""

    model: str
    structure: str
    stat: StageStat

    @property
    def label(self) -> str:
        return f"{self.model}+{self.structure}"


@dataclass(frozen=True)
class BestCombination:
    """One cell of Table III."""

    algorithm: str
    dataset: str
    stage: str
    best: ComboStat
    competitive: Tuple[ComboStat, ...]  # overlapping-CI alternatives

    @property
    def label(self) -> str:
        """Paper-style cell label, e.g. ``INC+AS`` or ``INC/FS+DAH``."""
        models = [self.best.model]
        structures = [self.best.structure]
        for combo in self.competitive:
            if combo.model not in models:
                models.append(combo.model)
            if combo.structure not in structures:
                structures.append(combo.structure)
        return "/".join(models) + "+" + "/".join(structures)

    @property
    def latency_seconds(self) -> float:
        return self.best.stat.mean


@dataclass
class SoftwareProfile:
    """Reduced software-level characterization of all datasets."""

    results: Dict[str, StreamResult]
    stages: int = 3
    _stage_cache: dict = field(default_factory=dict, repr=False)

    # -- primitives ----------------------------------------------------

    def _stats(self, dataset: str, kind: str, *key) -> List[StageStat]:
        cache_key = (dataset, kind) + key
        if cache_key not in self._stage_cache:
            result = self.results[dataset]
            if kind == "batch":
                series = result.batch_latency(*key)
            elif kind == "update":
                series = result.update_latency(*key)
            elif kind == "compute":
                series = result.compute_latency(*key)
            elif kind == "fraction":
                series = result.update_fraction(*key)
            else:
                raise SimulationError(f"unknown series kind {kind!r}")
            self._stage_cache[cache_key] = stage_stats(series, self.stages)
        return self._stage_cache[cache_key]

    def _result(self, dataset: str) -> StreamResult:
        if dataset not in self.results:
            raise SimulationError(f"dataset {dataset!r} not profiled")
        return self.results[dataset]

    # -- Table III ------------------------------------------------------

    def best_combination(self, algorithm: str, dataset: str, stage: int) -> BestCombination:
        """The Table III cell for one (algorithm, dataset, stage)."""
        result = self._result(dataset)
        combos = [
            ComboStat(
                model=model,
                structure=structure,
                stat=self._stats(dataset, "batch", algorithm, model, structure)[stage],
            )
            for model in result.models
            for structure in result.structures
        ]
        best = min(combos, key=lambda combo: combo.stat.mean)
        competitive = tuple(
            combo
            for combo in sorted(combos, key=lambda combo: combo.stat.mean)
            if combo is not best and combo.stat.overlaps(best.stat)
        )
        return BestCombination(
            algorithm=algorithm,
            dataset=dataset,
            stage=STAGES[stage],
            best=best,
            competitive=competitive,
        )

    def table3(self) -> Dict[Tuple[str, str], List[BestCombination]]:
        """All Table III cells: {(algorithm, dataset): [P1, P2, P3]}."""
        table: Dict[Tuple[str, str], List[BestCombination]] = {}
        for dataset, result in self.results.items():
            for algorithm in result.algorithms:
                table[(algorithm, dataset)] = [
                    self.best_combination(algorithm, dataset, stage)
                    for stage in range(self.stages)
                ]
        return table

    # -- Fig. 6 ----------------------------------------------------------

    def fig6(
        self, algorithm: str, dataset: str, stage: int = 2
    ) -> Dict[str, Dict[str, float]]:
        """Latency of each structure normalized to AS at one stage.

        Returns ``{"batch"|"update"|"compute": {structure: ratio}}``,
        measured at the best compute model of that stage (isolating the
        data-structure effect, as in the paper).
        """
        result = self._result(dataset)
        best_model = self.best_combination(algorithm, dataset, stage).best.model
        ratios: Dict[str, Dict[str, float]] = {"batch": {}, "update": {}, "compute": {}}
        base_batch = self._stats(dataset, "batch", algorithm, best_model, "AS")[stage]
        base_update = self._stats(dataset, "update", "AS")[stage]
        base_compute = self._stats(dataset, "compute", algorithm, best_model, "AS")[stage]
        for structure in result.structures:
            batch = self._stats(dataset, "batch", algorithm, best_model, structure)[stage]
            update = self._stats(dataset, "update", structure)[stage]
            compute = self._stats(dataset, "compute", algorithm, best_model, structure)[stage]
            ratios["batch"][structure] = batch.mean / base_batch.mean
            ratios["update"][structure] = update.mean / base_update.mean
            ratios["compute"][structure] = compute.mean / base_compute.mean
        return ratios

    # -- Fig. 7 ----------------------------------------------------------

    def fig7(self, algorithm: str, dataset: str) -> List[float]:
        """FS/INC compute-latency ratio at the best structure, per stage."""
        ratios = []
        for stage in range(self.stages):
            structure = self.best_combination(algorithm, dataset, stage).best.structure
            fs = self._stats(dataset, "compute", algorithm, "FS", structure)[stage]
            inc = self._stats(dataset, "compute", algorithm, "INC", structure)[stage]
            ratios.append(fs.mean / inc.mean if inc.mean > 0 else float("inf"))
        return ratios

    # -- Fig. 8 ----------------------------------------------------------

    def fig8(self, algorithm: str, dataset: str) -> List[float]:
        """Update share of batch latency at the best combination, per stage."""
        shares = []
        for stage in range(self.stages):
            best = self.best_combination(algorithm, dataset, stage).best
            stat = self._stats(
                dataset, "fraction", algorithm, best.model, best.structure
            )[stage]
            shares.append(stat.mean)
        return shares


def run_software_profile(
    datasets: Optional[Sequence[str]] = None,
    config: Optional[StreamConfig] = None,
    seed: int = 0,
    size_factor: float = 1.0,
    store: Optional[RunStore] = None,
    jobs: Optional[int] = None,
) -> SoftwareProfile:
    """Stream every dataset and return the reduced profile.

    Runs through the experiment engine: per-dataset results are served
    from ``store`` when cached, and (dataset × repetition) cells fan
    out over ``jobs`` worker processes otherwise.
    """
    config = config if config is not None else StreamConfig()
    names = list(datasets if datasets is not None else dataset_names())
    requests = [
        StreamRequest(dataset=name, config=config, seed=seed, size_factor=size_factor)
        for name in names
    ]
    swept = run_many(requests, store=store, jobs=jobs)
    results: Dict[str, StreamResult] = dict(zip(names, swept))
    return SoftwareProfile(results=results)

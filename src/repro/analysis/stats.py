"""Stage averaging with confidence intervals (Section IV-B).

The paper divides each experiment's batches into three equal stages and
reports P1 (early), P2 (middle), P3 (final) averages, pooling the
corresponding third of every repetition's batch values, with 95%
confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import SimulationError

#: Two-sided 95% normal quantile used for the confidence intervals.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class StageStat:
    """Mean and 95% confidence half-width of one stage's latencies."""

    mean: float
    ci: float
    count: int

    @property
    def low(self) -> float:
        return self.mean - self.ci

    @property
    def high(self) -> float:
        return self.mean + self.ci

    def overlaps(self, other: "StageStat") -> bool:
        """True when the two 95% intervals intersect.

        The paper calls combinations with overlapping intervals
        *competitive* (the x/y entries of Table III).
        """
        return self.low <= other.high and other.low <= self.high


def stage_slices(num_batches: int, stages: int = 3) -> List[slice]:
    """Split ``num_batches`` into ``stages`` contiguous, near-equal slices."""
    if num_batches < 1:
        raise SimulationError(f"need at least one batch, got {num_batches}")
    if stages < 1:
        raise SimulationError(f"stages must be >= 1, got {stages}")
    bounds = np.linspace(0, num_batches, stages + 1).round().astype(int)
    return [slice(int(bounds[i]), int(bounds[i + 1])) for i in range(stages)]


def stage_stats(series: np.ndarray, stages: int = 3) -> List[StageStat]:
    """P1..Pn statistics of a ``(repetitions, batches)`` latency series.

    Each stage pools the corresponding third of the batches across all
    repetitions (the paper's ``1/3 x batchCount x 3`` averaging).
    Stages that received no batches (streams shorter than ``stages``)
    reuse the last non-empty stage so downstream tables stay total.
    """
    series = np.atleast_2d(np.asarray(series, dtype=np.float64))
    slices = stage_slices(series.shape[1], stages)
    result: List[StageStat] = []
    for sl in slices:
        pooled = series[:, sl].ravel()
        if pooled.size == 0:
            if not result:
                raise SimulationError("first stage cannot be empty")
            result.append(result[-1])
            continue
        mean = float(pooled.mean())
        if pooled.size > 1:
            ci = Z_95 * float(pooled.std(ddof=1)) / np.sqrt(pooled.size)
        else:
            ci = 0.0
        result.append(StageStat(mean=mean, ci=ci, count=int(pooled.size)))
    return result


def mean_ci(values: np.ndarray) -> Tuple[float, float]:
    """Plain mean and 95% CI half-width of a flat sample."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise SimulationError("cannot average an empty sample")
    mean = float(values.mean())
    ci = (
        Z_95 * float(values.std(ddof=1)) / np.sqrt(values.size)
        if values.size > 1
        else 0.0
    )
    return mean, ci

"""Shared harness for the wall-clock benchmark scripts.

The three ``scripts/bench_*.py`` tools used to each carry their own
copy of the same timing scaffolding: slicing a dataset into batches,
interleaving cold repetitions of the compared paths, taking the
minimum per path, and writing a one-off ``BENCH_*.json`` snapshot with
no memory across runs.  This module is that scaffolding, shared -- plus
the piece that gives benches a memory: every run can be distilled into
a schema'd *history record* (git SHA, timestamp, workload fingerprint,
the flattened min-of-N timings, environment facts) and appended to
``BENCH_history.jsonl``, which the regression detector in
:mod:`repro.obs.baseline` reads.

Design rules:

- records are one JSON object per line (append-only, merge-friendly in
  version control, no rewriting on append);
- the *workload fingerprint* hashes only what defines the measured
  work (dataset, sizes, batch/churn parameters), never the measured
  times -- history comparisons are only meaningful within a
  fingerprint;
- timings are a flat ``dotted.path -> seconds`` mapping distilled from
  the bench's own JSON payload, so the detector needs no per-bench
  knowledge.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

#: Bump when the record layout changes; the detector skips records
#: from other schemas rather than misreading them.
HISTORY_SCHEMA_VERSION = 1

#: Default history file at the repo root, next to the BENCH_*.json
#: snapshots it summarizes.
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: Top-level bench-payload keys that describe the environment a number
#: was measured in (copied verbatim into the history record).
_ENV_KEYS = ("python", "ckernel_loaded", "cingest_loaded", "compute_threads")


# ----------------------------------------------------------------------
# Timing-loop scaffolding (extracted from the bench scripts)
# ----------------------------------------------------------------------


def batches_of(dataset, batch_size: int):
    """Slice a dataset's edge stream into driver-shaped batches."""
    edges = dataset.edges
    return [
        edges.slice(i, min(i + batch_size, len(edges)))
        for i in range(0, len(edges), batch_size)
    ]


def alternating_runs(
    paths: Dict[str, Callable[[], dict]], repeat: int
) -> Dict[str, List[dict]]:
    """``repeat`` cold repetitions per labeled path, interleaved.

    Alternation makes background load hit every compared path equally;
    each callable must be a fully cold run (fresh structures, fresh
    address space) so repetitions stay independent.
    """
    results: Dict[str, List[dict]] = {label: [] for label in paths}
    for _ in range(repeat):
        for label, fn in paths.items():
            results[label].append(fn())
    return results


def min_run(runs: List[dict], seconds_key: str = "seconds") -> dict:
    """The repetition with the smallest timing -- the standard way to
    keep OS scheduling noise out of a single-process comparison."""
    return min(runs, key=lambda run: run[seconds_key])


# ----------------------------------------------------------------------
# History records
# ----------------------------------------------------------------------


def git_sha() -> str:
    """The current commit, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def workload_fingerprint(workload: Dict[str, object]) -> str:
    """Stable digest of what defines the measured work."""
    blob = json.dumps(workload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def make_record(
    bench: str,
    workload: Dict[str, object],
    timings: Dict[str, float],
    env: Optional[Dict[str, object]] = None,
    sha: Optional[str] = None,
    ts: Optional[float] = None,
) -> dict:
    """One schema'd history record (see module docstring)."""
    return {
        "schema": HISTORY_SCHEMA_VERSION,
        "bench": bench,
        "sha": sha if sha is not None else git_sha(),
        "ts": float(ts) if ts is not None else time.time(),
        "fingerprint": workload_fingerprint(workload),
        "workload": dict(workload),
        "timings": {key: float(value) for key, value in timings.items()},
        "env": dict(env or {}),
    }


def _flatten_timings(node, prefix: str, out: Dict[str, float]) -> None:
    """Collect numeric ``*seconds`` leaves as ``dotted.path -> value``.

    Rows inside lists are labeled by their identifying field
    (``structure``/``algorithm``) when they carry one, by index
    otherwise; metric snapshots are skipped -- they describe the
    workload, not its timing.
    """
    if isinstance(node, dict):
        for key in sorted(node):
            if key == "metrics":
                continue
            value = node[key]
            path = f"{prefix}{key}"
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)) and key.endswith("seconds"):
                out[path] = float(value)
            elif isinstance(value, (dict, list)):
                _flatten_timings(value, path + ".", out)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            label = str(index)
            if isinstance(item, dict):
                for id_key in ("structure", "algorithm", "model"):
                    if isinstance(item.get(id_key), str):
                        label = item[id_key]
                        break
            _flatten_timings(item, f"{prefix}{label}.", out)


def record_from_bench_json(
    payload: Dict[str, object],
    bench: str,
    sha: Optional[str] = None,
    ts: Optional[float] = None,
) -> dict:
    """Distill a ``BENCH_*.json`` payload into a history record."""
    timings: Dict[str, float] = {}
    _flatten_timings(payload, "", timings)
    env = {key: payload[key] for key in _ENV_KEYS if key in payload}
    workload = payload.get("workload")
    return make_record(
        bench,
        workload if isinstance(workload, dict) else {},
        timings,
        env=env,
        sha=sha,
        ts=ts,
    )


def append_history(record: dict, path=DEFAULT_HISTORY) -> None:
    """Append one record as a line of JSON (creates the file)."""
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_history(path=DEFAULT_HISTORY) -> List[dict]:
    """Every current-schema record, in file (append) order.

    Missing files read as empty history; lines from other schema
    versions or corrupt lines are skipped, so an old history file can
    never wedge the detector.
    """
    history_path = Path(path)
    if not history_path.exists():
        return []
    records = []
    for line in history_path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if (
            isinstance(record, dict)
            and record.get("schema") == HISTORY_SCHEMA_VERSION
        ):
            records.append(record)
    return records

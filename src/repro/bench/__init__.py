"""Shared wall-clock benchmark harness and history (see ``harness``)."""

from repro.bench.harness import (
    HISTORY_SCHEMA_VERSION,
    alternating_runs,
    append_history,
    batches_of,
    git_sha,
    load_history,
    make_record,
    min_run,
    record_from_bench_json,
    workload_fingerprint,
)

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "alternating_runs",
    "append_history",
    "batches_of",
    "git_sha",
    "load_history",
    "make_record",
    "min_run",
    "record_from_bench_json",
    "workload_fingerprint",
]

"""Incremental CSR maintenance: stop rebuilding ComputeViews per batch.

PR 4's driver rebuilt both CSR directions from the full incidence
buffer every batch -- O(E log E) per batch for a delta of a few
thousand edges.  This module maintains the CSR arrays *under* the
insert/delete deltas instead:

:class:`DynamicCSR`
    A "slack CSR": per-row ``starts``/``lens``/``caps`` plus a shared
    column heap (``cols``/``wts``).  Rows keep capacity slack, so an
    append is usually an in-place write; a row that overflows relocates
    to the heap's end with doubled capacity (amortized O(1) per edge),
    leaving its old extent behind as a *tombstone* -- dead heap space
    reclaimed by periodic compaction.  Deletions shift the row's tail
    left (order-preserving), turning freed slots into reusable row
    slack rather than tombstones.  Per-row neighbor order remains the
    chronological insertion order -- exactly the order
    ``csr_from_edges`` produces and the reference graph's dicts
    iterate, so every kernel stays bit-identical.

:class:`ViewMaintainer`
    Owns one :class:`DynamicCSR` per direction and turns the driver's
    per-batch ``(inserted, removed)`` arrays into a fresh
    :class:`~repro.compute.kernels.ComputeView`.  Falls back to a full
    rebuild when the batch's churn exceeds a threshold of the live edge
    count (``SAGA_BENCH_CSR_REBUILD_CHURN``, default 0.5; ``0`` forces
    a rebuild every batch -- the differential-test baseline).  Emits
    ``compute.view_update`` / ``compute.view_rebuild`` spans and the
    ``compute_view_build_seconds`` / ``compute_view_update_seconds`` /
    ``compute_view_rebuilds_total`` observability series.

The exported view aliases the store's live arrays (zero-copy) and is
valid until the next :meth:`ViewMaintainer.apply`; within a batch the
driver's ``view_scope`` reuse across algorithm x model runs sees one
consistent snapshot.  Each apply bumps :attr:`ViewMaintainer.version`
and stamps it on the view, so staleness is detectable, and records the
dirty row range for observability.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional, Tuple

import numpy as np

from repro.compute.kernels import ComputeView, CSRArrays
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER

#: Churn threshold env var: rebuild when (inserts + deletes) exceed
#: this fraction of the live edge count.  "0" rebuilds every batch.
CHURN_ENV = "SAGA_BENCH_CSR_REBUILD_CHURN"

#: Default churn threshold (fraction of live edges).
DEFAULT_CHURN_THRESHOLD = 0.5

#: Compact the heap when tombstoned space exceeds half the used extent
#: (and the heap is big enough for compaction to matter).
COMPACT_DEAD_FRACTION = 0.5
COMPACT_MIN_USED = 4096

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_F64 = np.empty(0, dtype=np.float64)


def churn_threshold() -> float:
    raw = os.environ.get(CHURN_ENV)
    if raw is None or raw == "":
        return DEFAULT_CHURN_THRESHOLD
    return float(raw)


def _flat_slots(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Heap slot of every row element: starts repeated + within-row rank."""
    total = int(counts.sum())
    offsets = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    return np.repeat(starts, counts) + within


class DynamicCSR:
    """One adjacency direction as a slack CSR under edge deltas.

    ``keys`` are the grouping vertex (src for the out-direction, dst
    for in); ``vals`` the other endpoint.  All public methods take
    whole delta arrays and run a constant number of numpy ops.
    """

    __slots__ = (
        "max_nodes",
        "starts",
        "lens",
        "caps",
        "cols",
        "wts",
        "used",
        "dead",
        "live",
    )

    def __init__(self, max_nodes: int) -> None:
        self.max_nodes = max_nodes
        self.starts = np.zeros(max_nodes, dtype=np.int64)
        self.lens = np.zeros(max_nodes, dtype=np.int64)
        self.caps = np.zeros(max_nodes, dtype=np.int64)
        self.cols = np.empty(0, dtype=np.int64)
        self.wts = np.empty(0, dtype=np.float64)
        self.used = 0  # heap extent handed out (live + dead + slack)
        self.dead = 0  # tombstoned slots from row relocations
        self.live = 0  # live edges

    def reset(self) -> None:
        """Empty the store in place, keeping the allocated heap.

        The next :meth:`rebuild` repacks from scratch exactly as on a
        fresh instance (it replaces every row array), so a reset store
        is indistinguishable from a new one -- minus the allocations.
        """
        self.starts[:] = 0
        self.lens[:] = 0
        self.caps[:] = 0
        self.used = 0
        self.dead = 0
        self.live = 0

    # -- full rebuild ---------------------------------------------------

    def rebuild(self, keys: np.ndarray, vals: np.ndarray, wts: np.ndarray) -> None:
        """Tight repack from a full edge list (chronological order).

        The stable grouping sort reproduces ``csr_from_edges`` exactly:
        per-row order equals the edge list's chronological order.  Old
        exported arrays are left untouched (the new heap is fresh), so
        a previous batch's view stays a consistent snapshot.
        """
        order = np.argsort(keys, kind="stable")
        counts = np.bincount(keys, minlength=self.max_nodes).astype(np.int64)
        self.starts = np.cumsum(counts) - counts
        self.lens = counts
        self.caps = counts.copy()
        self.cols = vals[order]
        self.wts = wts[order]
        self.used = self.live = int(len(keys))
        self.dead = 0

    # -- incremental deltas ---------------------------------------------

    def _grow_heap(self, extra: int) -> None:
        needed = self.used + extra
        if needed <= len(self.cols):
            return
        capacity = max(len(self.cols) * 2, needed, 1024)
        for name, dtype in (("cols", np.int64), ("wts", np.float64)):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=dtype)
            grown[: self.used] = old[: self.used]
            setattr(self, name, grown)

    def insert(self, keys: np.ndarray, vals: np.ndarray, wts: np.ndarray) -> None:
        """Append ``(key, val, wt)`` edges preserving chronological order."""
        m = len(keys)
        if m == 0:
            return
        order = np.argsort(keys, kind="stable")
        k_sorted = keys[order]
        rows, first, add = np.unique(k_sorted, return_index=True, return_counts=True)
        need = self.lens[rows] + add
        over = need > self.caps[rows]
        if over.any():
            # Relocate overflowing rows to the heap's end with doubled
            # capacity; the old extents become tombstones.
            rows_over = rows[over]
            old_starts = self.starts[rows_over]
            old_lens = self.lens[rows_over]
            new_caps = np.maximum(np.maximum(self.caps[rows_over] * 2, need[over]), 4)
            total_new = int(new_caps.sum())
            self._grow_heap(total_new)
            new_starts = self.used + np.cumsum(new_caps) - new_caps
            src_flat = _flat_slots(old_starts, old_lens)
            dst_flat = _flat_slots(new_starts, old_lens)
            self.cols[dst_flat] = self.cols[src_flat]
            self.wts[dst_flat] = self.wts[src_flat]
            self.dead += int(self.caps[rows_over].sum())
            self.starts[rows_over] = new_starts
            self.caps[rows_over] = new_caps
            self.used += total_new
        # Scatter the new entries behind each row's current tail, in
        # chronological (stable-sorted) order within each row.
        within = np.arange(m, dtype=np.int64) - np.repeat(first, add)
        dest = np.repeat(self.starts[rows] + self.lens[rows], add) + within
        self.cols[dest] = vals[order]
        self.wts[dest] = wts[order]
        self.lens[rows] += add
        self.live += m

    def delete(self, keys: np.ndarray, vals: np.ndarray) -> int:
        """Remove ``(key, val)`` pairs, preserving surviving row order.

        Freed slots stay behind each row's tail as reusable slack (not
        tombstones).  Returns the number of edges removed.
        """
        if len(keys) == 0 or self.live == 0:
            return 0
        rows = np.unique(keys)
        counts = self.lens[rows]
        total = int(counts.sum())
        if total == 0:
            return 0
        seg = np.repeat(np.arange(len(rows), dtype=np.int64), counts)
        flat = _flat_slots(self.starts[rows], counts)
        # Packed (row, col) membership against the deletion set; the
        # reference graph guarantees (src, dst) uniqueness, so each
        # requested pair matches at most one slot.
        slot_key = rows[seg] * self.max_nodes + self.cols[flat]
        del_key = keys * self.max_nodes + vals
        keep = ~np.isin(slot_key, del_key)
        removed = total - int(keep.sum())
        if removed == 0:
            return 0
        kept_counts = np.bincount(seg[keep], minlength=len(rows)).astype(np.int64)
        src_flat = flat[keep]
        dst_flat = _flat_slots(self.starts[rows], kept_counts)
        self.cols[dst_flat] = self.cols[src_flat]
        self.wts[dst_flat] = self.wts[src_flat]
        self.lens[rows] = kept_counts
        self.live -= removed
        return removed

    # -- maintenance ----------------------------------------------------

    def needs_compaction(self) -> bool:
        return (
            self.used > COMPACT_MIN_USED
            and self.dead > self.used * COMPACT_DEAD_FRACTION
        )

    def compact(self) -> None:
        """Repack the heap tight, dropping tombstones and slack."""
        flat = _flat_slots(self.starts, self.lens)
        counts = self.lens
        self.cols = self.cols[flat]
        self.wts = self.wts[flat]
        self.starts = np.cumsum(counts) - counts
        self.caps = counts.copy()
        self.used = self.live
        self.dead = 0

    # -- export ---------------------------------------------------------

    def export(self, num_nodes: int) -> CSRArrays:
        """Zero-copy CSR view of the first ``num_nodes`` rows.

        ``indptr``/``degrees`` are views into the live arrays and the
        heap may hold slack between rows, so the result is a *slack*
        CSR: valid for every row-addressed kernel (they index
        ``indptr[v]`` + ``degrees[v]``), not for code assuming
        ``indices`` is packed edge-dense (see ``ComputeView.packed``).
        """
        return CSRArrays(
            indptr=self.starts[:num_nodes],
            indices=self.cols,
            weights=self.wts,
            degrees=self.lens[:num_nodes],
        )

    def check_against(self, reference_csr: CSRArrays, num_nodes: int) -> bool:
        """Row-for-row equality with a packed CSR (test helper)."""
        if not np.array_equal(self.lens[:num_nodes], reference_csr.degrees):
            return False
        flat = _flat_slots(self.starts[:num_nodes], self.lens[:num_nodes])
        return np.array_equal(self.cols[flat], reference_csr.indices) and np.array_equal(
            self.wts[flat], reference_csr.weights
        )


class ViewMaintainer:
    """Per-repetition owner of both CSR directions under edge deltas."""

    def __init__(
        self, max_nodes: int, churn: Optional[float] = None
    ) -> None:
        self.max_nodes = max_nodes
        self.churn = churn_threshold() if churn is None else churn
        self.out = DynamicCSR(max_nodes)
        self.inc = DynamicCSR(max_nodes)
        self.version = 0
        self.builds = 0  # full (re)builds, including the seed build
        self.rebuilds = 0  # churn/threshold-triggered rebuilds only
        self.updates = 0  # incremental applies
        self.compactions = 0
        self.last_dirty_rows = 0
        self._packed = False

    def reset(self) -> None:
        """Empty both directions for reuse across repetitions.

        The first ``apply`` after a reset sees ``live == 0`` and takes
        the full-rebuild path, exactly as on a fresh maintainer, so
        exported views (and hence every downstream fingerprint) are
        unchanged.  The cumulative build/update counters survive --
        they describe the maintainer's whole lifetime.
        """
        self.out.reset()
        self.inc.reset()
        self._packed = False

    def _observe(self, metric: str, help_text: str, seconds: float) -> None:
        if METRICS.enabled:
            METRICS.histogram(metric, help_text).observe(seconds)

    def apply(
        self,
        ins_src: np.ndarray,
        ins_dst: np.ndarray,
        ins_wt: np.ndarray,
        rem_src: np.ndarray,
        rem_dst: np.ndarray,
        num_nodes: int,
        all_edges: Callable[[], Tuple[np.ndarray, np.ndarray, np.ndarray]],
    ) -> ComputeView:
        """Fold one batch's deltas in and export the ComputeView.

        ``ins_*``/``rem_*`` are the batch's actually-inserted and
        actually-removed incidence arrays (both orientations already
        interleaved for undirected graphs), applied in driver order:
        inserts first, then churn deletions.  ``all_edges`` lazily
        yields the full live incidence arrays -- only consulted on the
        full-rebuild path.
        """
        delta = len(ins_src) + len(rem_src)
        live = self.out.live
        rebuild = live == 0 or delta > self.churn * live
        self.version += 1
        started = time.perf_counter()
        if rebuild:
            with TRACER.span(
                "compute.view_rebuild", args={"delta": delta, "live": live}
            ):
                src, dst, wt = all_edges()
                self.out.rebuild(src, dst, wt)
                self.inc.rebuild(dst, src, wt)
            self.builds += 1
            self._packed = True
            if live:
                self.rebuilds += 1
                if METRICS.enabled:
                    METRICS.counter(
                        "compute_view_rebuilds_total",
                        "churn-triggered full CSR rebuilds",
                    ).inc()
            self._observe(
                "compute_view_build_seconds",
                "full CSR (re)build time per batch",
                time.perf_counter() - started,
            )
        else:
            with TRACER.span(
                "compute.view_update", args={"delta": delta, "live": live}
            ):
                self.out.insert(ins_src, ins_dst, ins_wt)
                self.inc.insert(ins_dst, ins_src, ins_wt)
                if len(rem_src):
                    self.out.delete(rem_src, rem_dst)
                    self.inc.delete(rem_dst, rem_src)
                compacted = False
                for store in (self.out, self.inc):
                    if store.needs_compaction():
                        store.compact()
                        self.compactions += 1
                        compacted = True
                        if METRICS.enabled:
                            METRICS.counter(
                                "compute_view_compactions_total",
                                "tombstone compactions of the CSR heap",
                            ).inc()
            self.updates += 1
            self._packed = False
            dirty = np.concatenate([ins_src, ins_dst, rem_src, rem_dst])
            self.last_dirty_rows = int(np.unique(dirty).size) if dirty.size else 0
            self._observe(
                "compute_view_update_seconds",
                "incremental CSR delta-apply time per batch",
                time.perf_counter() - started,
            )
        view = ComputeView(
            num_nodes,
            out_csr=self.out.export(num_nodes),
            in_csr=self.inc.export(num_nodes),
            packed=self._packed,
        )
        view.version = self.version
        return view

"""Pricing a compute run on a specific data structure.

Vertex *values* are independent of the storage structure, but compute
*latency* is not: each structure has its own traversal mechanism
(contiguous scan, pointer-chased blocks, hashed retrieval; Section V-B
of the paper).  Given the operation counts of one
:class:`~repro.compute.stats.ComputeRun`, this module prices the run on
any of the four structures: every evaluated vertex is a parallel-for
task whose cost combines the structure's traversal cost with the
algorithm's per-neighbor work, and the simulated latency is the sum of
the per-iteration makespans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.compute.stats import ComputeRun
from repro.errors import StructureError
from repro.graph import STRUCTURES
from repro.graph.base import ExecutionContext
from repro.sim.cost_model import CostModel
from repro.sim.scheduler import parallel_for_makespan

#: Structures whose degree lookups go through hash-table meta-queries.
_DAH_NAME = "DAH"


def _degree_query_cost(structure: str, cost: CostModel) -> float:
    if structure == _DAH_NAME:
        return cost.degree_query + cost.hash_probe
    return cost.probe_element


@dataclass
class ComputePricing:
    """Simulated compute-phase latency of one run on one structure."""

    structure: str
    latency_cycles: float
    total_work_cycles: float
    iteration_count: int

    def latency_seconds(self, machine) -> float:
        return machine.cycles_to_seconds(self.latency_cycles)


def price_compute_run(
    run: ComputeRun,
    structure: str,
    deg_in: np.ndarray,
    deg_out: np.ndarray,
    ctx: ExecutionContext,
    neighbor_degree_query: bool = False,
) -> ComputePricing:
    """Price ``run`` as if it had executed on ``structure``.

    Parameters
    ----------
    deg_in, deg_out:
        Per-vertex in/out-degree arrays of the graph *as of this
        batch* (the traversal costs are degree-driven).
    neighbor_degree_query:
        True for PageRank, whose vertex function additionally queries
        the out-degree of every in-neighbor (the normalization in
        Table I) -- particularly expensive on DAH (Section V-B).
    """
    if structure not in STRUCTURES:
        raise StructureError(f"unknown structure {structure!r}")
    cost = ctx.cost_model
    vector_cost = STRUCTURES[structure].vector_traversal_cost
    dq = _degree_query_cost(structure, cost)
    threads = ctx.threads
    cores = ctx.machine.physical_cores

    total_cycles = 0.0
    total_work = 0.0
    for it in run.iterations:
        costs = []
        if len(it.pull_vertices):
            d_in = deg_in[it.pull_vertices]
            pull_costs = (
                cost.vertex_task_base
                + vector_cost(d_in, cost)
                + d_in * cost.neighbor_visit
                + cost.property_write
            )
            if neighbor_degree_query:
                pull_costs = pull_costs + d_in * dq
            costs.append(pull_costs)
        if len(it.push_vertices):
            d_out = deg_out[it.push_vertices]
            push_costs = vector_cost(d_out, cost) + d_out * cost.cas
            costs.append(push_costs)
        if not costs:
            continue
        per_task = np.concatenate(costs)
        result = parallel_for_makespan(
            per_task, threads=threads, physical_cores=cores, cost_model=cost
        )
        extra = it.pushes * cost.queue_push
        total_cycles += result.makespan_cycles + extra / threads
        total_work += result.total_work_cycles + extra

    # Whole-array scans (affected flags, new-vertex init, FS resets):
    # one light access per vertex, perfectly parallel.
    scan_work = run.linear_scans * len(deg_in) * cost.probe_element
    total_cycles += scan_work / threads
    total_work += scan_work

    return ComputePricing(
        structure=structure,
        latency_cycles=total_cycles,
        total_work_cycles=total_work,
        iteration_count=run.iteration_count,
    )

"""The incremental compute engine: Algorithm 1 of the paper.

One generic engine implements both of the paper's incremental
techniques for every algorithm:

- **Processing amortization** -- the run starts from the caller's
  ``values`` array (the previous batch's results); only vertices that
  appeared for the first time get fresh initial values.
- **Selective triggering** -- the first parallel pass re-evaluates only
  the vertices flagged *affected* by the latest update; a vertex whose
  value changed by more than the triggering threshold pushes its
  out-neighbors onto the next queue (guarded by a CAS on the visited
  bitvector), and rounds continue until no vertex is triggered.

The per-algorithm piece is ``recalculate(v)``: the pull-style vertex
function from Table I.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.compute.stats import ComputeRun, IterationStats
from repro.errors import SimulationError

#: The paper's triggering threshold (Algorithm 1 line 1).
DEFAULT_EPSILON = 1e-7

#: Safety valve: no algorithm here needs anywhere near this many rounds.
MAX_ROUNDS = 10_000


def invalidate_after_deletions(
    view,
    values: np.ndarray,
    deleted_edges,
    supports: Callable[[float, float, float], bool],
    init_fn,
    pinned=(),
):
    """KickStarter-style invalidation for deletion batches.

    Algorithm 1 assumes edge *insertions*: for a monotone vertex
    function, values only improve, so recomputing affected vertices
    converges.  After a *deletion*, a vertex's stored value may rest on
    a path that no longer exists, and plain recomputation can keep such
    stale values alive through cycles of mutual support (a vertex and
    its downstream neighbors vouching for each other's dead values).

    The sound fix (the trimming idea of KickStarter): flag every
    deletion target whose stored value *could* have been derived
    through the deleted edge -- ``supports(source_value, weight,
    target_value)`` is the algorithm's derivation test -- then
    over-approximate the tainted region by the flagged vertices'
    forward closure (a value derived through a tainted vertex lies in
    that closure by construction), reset the region to its initial
    values, and let a normal incremental run re-derive it from the
    still-valid boundary.

    ``deleted_edges`` is the ``(src, dst, weight)`` list actually
    removed.  Returns the affected set to feed to
    :func:`run_incremental` (the reset region plus the flagged roots).
    """
    num_nodes = view.num_nodes
    pinned = set(pinned)
    roots = set()
    for u, v, w in deleted_edges:
        if v >= num_nodes or v in pinned:
            continue
        if supports(float(values[u]), float(w), float(values[v])):
            roots.add(v)
    # Forward closure of the flagged vertices (out-edges only: a value
    # can only have been derived along edge direction).
    out_getter = getattr(view, "out_items", None)
    tainted = set(roots)
    frontier = list(roots)
    while frontier:
        v = frontier.pop()
        targets = (
            out_getter(v)
            if out_getter is not None
            else [w for w, _ in view.out_neigh(v)]
        )
        for w in targets:
            if w not in tainted and w not in pinned:
                tainted.add(w)
                frontier.append(w)
    if tainted:
        ids = np.fromiter(tainted, dtype=np.int64)
        values[ids] = init_fn(ids)
    return tainted


def run_incremental(
    view,
    values: np.ndarray,
    affected: Iterable[int],
    recalculate: Callable[[int], float],
    algorithm: str,
    epsilon: float = DEFAULT_EPSILON,
    max_rounds: int = MAX_ROUNDS,
) -> ComputeRun:
    """Run Algorithm 1 and return the operation-count record.

    Parameters
    ----------
    view:
        Any graph view exposing ``out_neigh``/``num_nodes``.
    values:
        The persistent vertex-value array, mutated in place.
    affected:
        Vertices directly affected by the latest update phase.
    recalculate:
        The vertex function: ``recalculate(v)`` returns v's new value
        from its in-neighbors' current values.
    epsilon:
        Triggering threshold: changes of at most ``epsilon`` do not
        propagate.
    """
    num_nodes = view.num_nodes
    out_getter = getattr(view, "out_items", None)
    visited = np.zeros(num_nodes, dtype=bool)
    run = ComputeRun(algorithm=algorithm, model="INC", values=values)
    # Lines 2-7 of Algorithm 1 scan the whole vertex array twice: once
    # initializing new vertices, once testing the affected flags.
    run.linear_scans = 2

    # Deterministic round order: a unique ascending numpy frontier.
    # (The old sorted-set rebuild gave the same order but went through
    # Python set semantics; np.unique pins the contract explicitly and
    # keeps the array form the vectorized engine shares.)
    if isinstance(affected, np.ndarray):
        seed = affected.astype(np.int64, copy=False)
    else:
        seed = np.fromiter(affected, dtype=np.int64)
    current = np.unique(seed[seed < num_nodes])
    rounds = 0
    while current.size:
        rounds += 1
        if rounds > max_rounds:
            raise SimulationError(
                f"incremental {algorithm} exceeded {max_rounds} rounds; "
                "the vertex function is probably not convergent"
            )
        visited[:] = False
        next_queue = []
        triggered = []
        pushes = 0
        cas_ops = 0
        # tolist() hands the loop plain Python ints: view methods (and
        # DAH's hash function in particular) expect native integers.
        for v in current.tolist():
            # Plain floats: inf - inf is a quiet NaN (an unreached
            # vertex staying unreached is not a change).
            old = float(values[v])
            new = float(recalculate(v))
            values[v] = new
            if abs(old - new) > epsilon:
                triggered.append(v)
                targets = out_getter(v) if out_getter is not None else [
                    w for w, _ in view.out_neigh(v)
                ]
                for w in targets:
                    cas_ops += 1
                    if not visited[w]:
                        visited[w] = True
                        next_queue.append(w)
                        pushes += 1
        run.iterations.append(
            IterationStats.make(
                pull=current, push=triggered, pushes=pushes, cas_ops=cas_ops
            )
        )
        # The visited bitvector already deduplicated next_queue, so the
        # stable unique only sorts ascending -- the legacy round order.
        current = np.unique(np.asarray(next_queue, dtype=np.int64))
    return run

"""Operation-count records produced by one compute-phase run.

Vertex values do not depend on which data structure stores the
topology, so the driver executes each algorithm once per batch against
a neutral view and records *what work happened*; per-structure compute
latencies are then priced from these records (see
:mod:`repro.compute.pricing`).  This mirrors the paper's observation
that the compute phase differs across structures only through the
traversal mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


def _as_vertex_array(vertices) -> np.ndarray:
    return np.asarray(vertices, dtype=np.int64)


@dataclass
class IterationStats:
    """Work performed by one parallel iteration of an algorithm.

    Attributes
    ----------
    pull_vertices:
        Vertices whose vertex function was (re)evaluated by traversing
        their **in**-edges (Table I functions are pull-style).
    push_vertices:
        Vertices whose **out**-neighbors were scanned to propagate a
        change (Algorithm 1 line 12) or to relax edges (frontier-style
        FS algorithms).
    pushes:
        Vertices appended to the next frontier/queue.
    cas_ops:
        Compare-and-swap attempts on the visited bitvector.
    """

    pull_vertices: np.ndarray
    push_vertices: np.ndarray
    pushes: int = 0
    cas_ops: int = 0

    @classmethod
    def make(cls, pull=(), push=(), pushes: int = 0, cas_ops: int = 0) -> "IterationStats":
        return cls(
            pull_vertices=_as_vertex_array(pull),
            push_vertices=_as_vertex_array(push),
            pushes=pushes,
            cas_ops=cas_ops,
        )

    @property
    def evaluations(self) -> int:
        return int(len(self.pull_vertices))


@dataclass
class ComputeRun:
    """Everything one compute-phase execution produced.

    ``values`` is the final vertex property array; ``iterations`` holds
    the per-iteration operation counts the pricer consumes;
    ``linear_scans`` counts full passes over the vertex array (INC's
    affected-flag scan and new-vertex initialization, FS's value
    reset), each charged as one light access per vertex.
    """

    algorithm: str
    model: str
    values: np.ndarray
    iterations: List[IterationStats] = field(default_factory=list)
    linear_scans: int = 0
    converged: bool = True
    source: Optional[int] = None
    #: Frontier accounting filled by the kernel engines (0 on the
    #: legacy per-vertex paths): rounds executed and total frontier
    #: vertices across them -- the per-batch features the cost-model
    #: fitter joins with the ``compute_frontier_size`` histogram.
    frontier_rounds: int = 0
    frontier_vertices: int = 0

    @property
    def total_evaluations(self) -> int:
        return sum(it.evaluations for it in self.iterations)

    @property
    def total_pushes(self) -> int:
        return sum(it.pushes for it in self.iterations)

    @property
    def iteration_count(self) -> int:
        return len(self.iterations)

"""Compiled compute kernels: the hottest inner loops in C via ctypes.

PR 4 vectorized the compute phase, but profiling the quick RMAT
workload shows numpy *dispatch* still dominates: the INC engine issues
~30 small array ops per round (and the dependency-wave machinery on
top), matching the csl-experiments finding that per-op overhead
exceeds pure compute ~2.9x.  This module compiles the inner loops with
the system C compiler (the :mod:`repro.sim.cbuild` pattern from PR 2:
content-hashed build cache, atomic install, ``-ffp-contract=off``) and
exposes them behind the same bit-identity contract as the numpy twins.

The deeper win is *fusion*: the legacy engines are sequential
Gauss-Seidel loops, which numpy can only reproduce through
dependency-level wave scheduling -- but a C loop that processes the
ascending frontier one position at a time reproduces the sequential
semantics *directly*.  ``saga_inc_round`` runs one whole INC round
(recalculate + trigger + dedup) in a single call; ``saga_relax_round``
and ``saga_delta_pass`` do the same for the FS relaxation and
delta-stepping passes.  Float accumulation order is the sequential
order of the legacy loops by construction, NaN semantics follow numpy
(``np.minimum`` propagates NaN; ``inf - inf`` is not a change), and
the build forbids FMA contraction.

Gates:

- ``SAGA_BENCH_NO_CCOMPUTE=1`` (or ``all``) disables every compiled
  compute kernel; a comma list (``inc_round,expand``) disables
  individual kernels, leaving the rest compiled.
- ``SAGA_BENCH_REQUIRE_CCOMPUTE=1`` turns a failed build into a hard
  error instead of the silent numpy fallback (CI sets it so a broken
  toolchain cannot masquerade as a perf regression).
- ``SAGA_BENCH_LEGACY_COMPUTE=1`` bypasses the vectorized engines
  entirely, so these kernels never run on the legacy path.
"""

from __future__ import annotations

import ctypes
import os
from typing import FrozenSet, Optional, Tuple

import numpy as np

from repro.sim.cbuild import load_library

#: Disable compiled compute kernels: "1"/"all", or a comma list of
#: kernel names (see :data:`KERNEL_NAMES`).
DISABLE_ENV = "SAGA_BENCH_NO_CCOMPUTE"

#: When set, a failed build raises instead of falling back to numpy.
REQUIRE_ENV = "SAGA_BENCH_REQUIRE_CCOMPUTE"

#: Individually gateable kernel names.
KERNEL_NAMES = frozenset(
    {
        "expand",
        "segment_reduce",
        "segment_sum",
        "inc_round",
        "relax_round",
        "delta_pass",
        "scatter",
    }
)

#: Fused INC-round vertex functions (``saga_inc_round``'s ``op``).
OP_BFS = 0
OP_SSSP = 1
OP_SSWP = 2
OP_CC = 3
OP_MC = 4
OP_PR = 5

#: Fused relaxation ops (``saga_relax_round``'s ``op``).
RELAX_ADD1 = 0  # candidate = base + 1.0           (BFS)
RELAX_MINW = 1  # candidate = min(base, weight)    (SSWP)

_I64 = ctypes.c_int64
_I32 = ctypes.c_int32
_F64 = ctypes.c_double
_PTR = ctypes.c_void_p

_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <math.h>

/* Compute-phase inner loops.  Every function mirrors a numpy kernel
 * (or the legacy per-vertex loop it vectorizes) operation for
 * operation: identical IEEE float64 arithmetic in identical order, and
 * numpy's NaN semantics where min/max are involved (np.minimum /
 * np.maximum propagate NaN; C fmin/fmax do NOT, so comparisons are
 * written out with explicit x != x checks).
 *
 * CSR rows arrive as (starts, lens) rather than a packed indptr: the
 * incremental CSR store keeps per-row slack, so rows need not be
 * contiguous.  A packed CSR is the special case starts = indptr[:n].
 */

/* np.minimum: NaN wins; otherwise the smaller. */
static inline double take_min(double acc, double x)
{
    return (x < acc || x != x) ? x : acc;
}

static inline double take_max(double acc, double x)
{
    return (x > acc || x != x) ? x : acc;
}

/* expand_frontier: all adjacency rows of the frontier, in sequential
 * iteration order (frontier position major, neighbor order minor). */
void saga_expand(
    int64_t k,
    const int64_t *frontier,
    const int64_t *starts,
    const int64_t *lens,
    const int64_t *cols,
    const double *wts,
    int64_t *seg_out,
    int64_t *nbr_out,
    double *wt_out)
{
    int64_t p, j, r = 0;
    for (p = 0; p < k; p++) {
        int64_t v = frontier[p];
        int64_t s = starts[v];
        int64_t d = lens[v];
        for (j = 0; j < d; j++) {
            seg_out[r] = p;
            nbr_out[r] = cols[s + j];
            wt_out[r] = wts[s + j];
            r++;
        }
    }
}

/* segment_min / segment_max over back-to-back segments; empty segments
 * yield the identity, matching _segment_reduce. */
void saga_segment_reduce(
    int64_t nseg,
    const int64_t *counts,
    const double *terms,
    int32_t maximize,
    double identity,
    double *out)
{
    int64_t s, j, i = 0;
    for (s = 0; s < nseg; s++) {
        double acc = identity;
        int64_t c = counts[s];
        if (maximize) {
            for (j = 0; j < c; j++)
                acc = take_max(acc, terms[i + j]);
        } else {
            for (j = 0; j < c; j++)
                acc = take_min(acc, terms[i + j]);
        }
        out[s] = acc;
        i += c;
    }
}

/* segment_sum_ordered: out[seg[i]] += terms[i] in array order -- the
 * exact accumulation order of np.bincount (and a Python += loop).
 * out must arrive zeroed. */
void saga_segment_sum(
    int64_t m,
    const int64_t *seg,
    const double *terms,
    double *out)
{
    int64_t i;
    for (i = 0; i < m; i++)
        out[seg[i]] += terms[i];
}

/* np.minimum.at / np.maximum.at: sequential scatter extreme. */
void saga_scatter_extreme(
    int64_t m,
    const int64_t *idx,
    const double *terms,
    int32_t maximize,
    double *out)
{
    int64_t i;
    for (i = 0; i < m; i++) {
        int64_t t = idx[i];
        out[t] = maximize ? take_max(out[t], terms[i])
                          : take_min(out[t], terms[i]);
    }
}

static int cmp_i64(const void *a, const void *b)
{
    int64_t x = *(const int64_t *)a, y = *(const int64_t *)b;
    return (x > y) - (x < y);
}

/* One whole INC round (Algorithm 1), fused: sequential Gauss-Seidel
 * over the ascending unique frontier -- each vertex recalculates from
 * the in-CSR reading values[] as they stand (earlier positions already
 * updated, later ones not), writes its new value, and on a change
 * greater than epsilon scans its out-row (cas_ops), deduplicating the
 * next frontier through the caller's zeroed seen[] bytes.  This IS the
 * legacy run_incremental loop, so bit-identity holds by construction;
 * the numpy engine needs dependency-level waves to reproduce it.
 *
 * op selects the Table-I vertex function.  pinned (-1 = none) keeps
 * the source at its current value (old == new, never triggers).
 * Outputs: triggered[] prefix (counts_out[0]), next_out[] prefix
 * sorted ascending (counts_out[2]), counts_out[1] = cas_ops.  seen[]
 * is reset to zero before returning.
 */
void saga_inc_round(
    int64_t k,
    const int64_t *frontier,
    const int64_t *in_starts,
    const int64_t *in_lens,
    const int64_t *in_cols,
    const double *in_wts,
    const int64_t *out_starts,
    const int64_t *out_lens,
    const int64_t *out_cols,
    const int64_t *out_deg,
    double *values,
    int32_t op,
    double epsilon,
    int64_t pinned,
    double pr_base,
    double damping,
    uint8_t *seen,
    int64_t *triggered,
    int64_t *next_out,
    int64_t *counts_out)
{
    int64_t p, j, nt = 0, cas = 0, nn = 0;
    for (p = 0; p < k; p++) {
        int64_t v = frontier[p];
        double old = values[v];
        double nv;
        if (v == pinned) {
            nv = old;
        } else {
            int64_t s = in_starts[v];
            int64_t d = in_lens[v];
            double acc;
            switch (op) {
            case 0: /* BFS: min(values[u] + 1) */
                acc = INFINITY;
                for (j = 0; j < d; j++)
                    acc = take_min(acc, values[in_cols[s + j]] + 1.0);
                nv = acc;
                break;
            case 1: /* SSSP: min(values[u] + w) */
                acc = INFINITY;
                for (j = 0; j < d; j++)
                    acc = take_min(acc, values[in_cols[s + j]] + in_wts[s + j]);
                nv = acc;
                break;
            case 2: /* SSWP: max(0, max(min(values[u], w))) */
                acc = -INFINITY;
                for (j = 0; j < d; j++) {
                    double vu = values[in_cols[s + j]];
                    double w = in_wts[s + j];
                    acc = take_max(acc, (vu < w) ? vu : w);
                }
                /* np.maximum(acc, 0.0): NaN propagates. */
                nv = (acc > 0.0 || acc != acc) ? acc : 0.0;
                break;
            case 3: /* CC: min(values[v], min(values[u])) */
                acc = old;
                for (j = 0; j < d; j++)
                    acc = take_min(acc, values[in_cols[s + j]]);
                nv = acc;
                break;
            case 4: /* MC: max(values[v], max(values[u])) */
                acc = old;
                for (j = 0; j < d; j++)
                    acc = take_max(acc, values[in_cols[s + j]]);
                nv = acc;
                break;
            default: /* PR: base + d * sum(values[u] / outdeg[u]) */
                acc = 0.0;
                for (j = 0; j < d; j++) {
                    int64_t u = in_cols[s + j];
                    acc += values[u] / (double)out_deg[u];
                }
                nv = pr_base + damping * acc;
                break;
            }
        }
        values[v] = nv;
        /* inf - inf is NaN; NaN > eps is false -- not a change,
         * exactly as the scalar engine treats it. */
        if (fabs(old - nv) > epsilon) {
            int64_t s = out_starts[v];
            int64_t d = out_lens[v];
            triggered[nt++] = v;
            for (j = 0; j < d; j++) {
                int64_t t = out_cols[s + j];
                cas++;
                if (!seen[t]) {
                    seen[t] = 1;
                    next_out[nn++] = t;
                }
            }
        }
    }
    for (p = 0; p < nn; p++)
        seen[next_out[p]] = 0;
    /* The numpy engine's np.unique: seen[] already deduplicated, so
     * sorting ascending completes the contract. */
    qsort(next_out, (size_t)nn, sizeof(int64_t), cmp_i64);
    counts_out[0] = nt;
    counts_out[1] = cas;
    counts_out[2] = nn;
}

/* One FS frontier-relaxation round (BFS / SSWP), fused: the legacy
 * loop verbatim -- each frontier vertex reads its base value at its
 * turn, relaxes its out-edges sequentially, conditionally updates, and
 * appends each target to the next frontier on its first improvement
 * (improved[] must arrive zeroed; reset before returning).  Returns
 * the next-frontier length; next_out keeps discovery order (the
 * legacy append order), NOT sorted. */
int64_t saga_relax_round(
    int64_t k,
    const int64_t *frontier,
    const int64_t *starts,
    const int64_t *lens,
    const int64_t *cols,
    const double *wts,
    double *values,
    int32_t op,
    int32_t maximize,
    uint8_t *improved,
    int64_t *next_out)
{
    int64_t p, j, nn = 0;
    for (p = 0; p < k; p++) {
        int64_t v = frontier[p];
        double base = values[v];
        int64_t s = starts[v];
        int64_t d = lens[v];
        for (j = 0; j < d; j++) {
            int64_t t = cols[s + j];
            double w = wts[s + j];
            double cand = op == 0 ? base + 1.0 : ((base < w) ? base : w);
            double cur = values[t];
            if (maximize ? (cand > cur) : (cand < cur)) {
                values[t] = cand;
                if (!improved[t]) {
                    improved[t] = 1;
                    next_out[nn++] = t;
                }
            }
        }
    }
    for (p = 0; p < nn; p++)
        improved[next_out[p]] = 0;
    return nn;
}

/* One delta-stepping light or heavy pass (SSSP FS), fused: sequential
 * conditional relaxation over the frontier's out-edges filtered by
 * weight (light: w <= delta, heavy: w > delta).  Every successful
 * compare-and-update emits one (target, candidate) event in sequential
 * order -- exactly the rows kernels.relaxation_events reconstructs.
 * Returns the event count. */
int64_t saga_delta_pass(
    int64_t k,
    const int64_t *frontier,
    const int64_t *starts,
    const int64_t *lens,
    const int64_t *cols,
    const double *wts,
    double *values,
    double delta,
    int32_t heavy,
    int64_t *ev_tgt,
    double *ev_cand)
{
    int64_t p, j, ne = 0;
    for (p = 0; p < k; p++) {
        int64_t v = frontier[p];
        double base = values[v];
        int64_t s = starts[v];
        int64_t d = lens[v];
        for (j = 0; j < d; j++) {
            double w = wts[s + j];
            int64_t t;
            double cand;
            if (heavy ? (w <= delta) : (w > delta))
                continue;
            t = cols[s + j];
            cand = base + w;
            if (cand < values[t]) {
                values[t] = cand;
                ev_tgt[ne] = t;
                ev_cand[ne] = cand;
                ne++;
            }
        }
    }
    return ne;
}
"""


def _sig(fn, restype, argtypes) -> None:
    fn.restype = restype
    fn.argtypes = argtypes


class ComputeKernels:
    """ctypes wrappers over the compiled kernels (numpy in/out)."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        _sig(lib.saga_expand, None, [_I64] + [_PTR] * 8)
        _sig(lib.saga_segment_reduce, None, [_I64, _PTR, _PTR, _I32, _F64, _PTR])
        _sig(lib.saga_segment_sum, None, [_I64, _PTR, _PTR, _PTR])
        _sig(lib.saga_scatter_extreme, None, [_I64, _PTR, _PTR, _I32, _PTR])
        _sig(
            lib.saga_inc_round,
            None,
            [_I64] + [_PTR] * 10 + [_I32, _F64, _I64, _F64, _F64] + [_PTR] * 4,
        )
        _sig(
            lib.saga_relax_round,
            _I64,
            [_I64] + [_PTR] * 6 + [_I32, _I32] + [_PTR] * 2,
        )
        _sig(
            lib.saga_delta_pass,
            _I64,
            [_I64] + [_PTR] * 6 + [_F64, _I32] + [_PTR] * 2,
        )

    # ``arr.ctypes.data`` of a size-0 array is a valid (never
    # dereferenced) pointer, so empty frontiers need no special casing.
    @staticmethod
    def _p(arr: np.ndarray):
        return arr.ctypes.data

    def expand(
        self, csr, frontier: np.ndarray, total: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """C twin of :func:`repro.compute.kernels.expand_frontier`."""
        seg = np.empty(total, dtype=np.int64)
        nbr = np.empty(total, dtype=np.int64)
        wt = np.empty(total, dtype=np.float64)
        self._lib.saga_expand(
            frontier.size,
            self._p(frontier),
            self._p(csr.indptr),
            self._p(csr.degrees),
            self._p(csr.indices),
            self._p(csr.weights),
            self._p(seg),
            self._p(nbr),
            self._p(wt),
        )
        return seg, nbr, wt

    def segment_reduce(
        self, terms: np.ndarray, counts: np.ndarray, identity: float, maximize: bool
    ) -> np.ndarray:
        out = np.empty(counts.size, dtype=np.float64)
        self._lib.saga_segment_reduce(
            counts.size,
            self._p(counts),
            self._p(terms),
            1 if maximize else 0,
            identity,
            self._p(out),
        )
        return out

    def segment_sum(
        self, terms: np.ndarray, seg: np.ndarray, num_segments: int
    ) -> np.ndarray:
        out = np.zeros(num_segments, dtype=np.float64)
        self._lib.saga_segment_sum(
            terms.size, self._p(seg), self._p(terms), self._p(out)
        )
        return out

    def scatter_extreme(
        self, out: np.ndarray, idx: np.ndarray, terms: np.ndarray, maximize: bool
    ) -> None:
        """In-place ``np.minimum.at`` / ``np.maximum.at``."""
        self._lib.saga_scatter_extreme(
            idx.size, self._p(idx), self._p(terms), 1 if maximize else 0, self._p(out)
        )

    def inc_round(
        self,
        cv,
        frontier: np.ndarray,
        values: np.ndarray,
        op: int,
        epsilon: float,
        pinned: int,
        pr_base: float,
        damping: float,
        seen: np.ndarray,
    ) -> Tuple[np.ndarray, int, np.ndarray]:
        """One fused INC round; returns (triggered, cas_ops, next)."""
        k = frontier.size
        out_csr = cv.out_csr
        in_csr = cv.in_csr
        cap = int(out_csr.degrees[frontier].sum()) if k else 0
        triggered = np.empty(k, dtype=np.int64)
        next_out = np.empty(cap, dtype=np.int64)
        counts = np.zeros(3, dtype=np.int64)
        self._lib.saga_inc_round(
            k,
            self._p(frontier),
            self._p(in_csr.indptr),
            self._p(in_csr.degrees),
            self._p(in_csr.indices),
            self._p(in_csr.weights),
            self._p(out_csr.indptr),
            self._p(out_csr.degrees),
            self._p(out_csr.indices),
            self._p(out_csr.degrees),
            self._p(values),
            op,
            epsilon,
            pinned,
            pr_base,
            damping,
            self._p(seen),
            self._p(triggered),
            self._p(next_out),
            self._p(counts),
        )
        return triggered[: counts[0]], int(counts[1]), next_out[: counts[2]]

    def relax_round(
        self,
        csr,
        frontier: np.ndarray,
        values: np.ndarray,
        op: int,
        maximize: bool,
        improved: np.ndarray,
    ) -> np.ndarray:
        """One fused FS relaxation round; returns the next frontier."""
        cap = int(csr.degrees[frontier].sum()) if frontier.size else 0
        next_out = np.empty(cap, dtype=np.int64)
        nn = self._lib.saga_relax_round(
            frontier.size,
            self._p(frontier),
            self._p(csr.indptr),
            self._p(csr.degrees),
            self._p(csr.indices),
            self._p(csr.weights),
            self._p(values),
            op,
            1 if maximize else 0,
            self._p(improved),
            self._p(next_out),
        )
        return next_out[:nn]

    def delta_pass(
        self,
        csr,
        frontier: np.ndarray,
        values: np.ndarray,
        delta: float,
        heavy: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One fused delta-stepping pass; returns (ev_tgt, ev_cand)."""
        cap = int(csr.degrees[frontier].sum()) if frontier.size else 0
        ev_tgt = np.empty(cap, dtype=np.int64)
        ev_cand = np.empty(cap, dtype=np.float64)
        ne = self._lib.saga_delta_pass(
            frontier.size,
            self._p(frontier),
            self._p(csr.indptr),
            self._p(csr.degrees),
            self._p(csr.indices),
            self._p(csr.weights),
            self._p(values),
            delta,
            1 if heavy else 0,
            self._p(ev_tgt),
            self._p(ev_cand),
        )
        return ev_tgt[:ne], ev_cand[:ne]


_kernels: Optional[ComputeKernels] = None
_disabled: FrozenSet[str] = frozenset()
_tried = False


def _disabled_kernels() -> FrozenSet[str]:
    raw = os.environ.get(DISABLE_ENV, "").strip()
    if not raw:
        return frozenset()
    if raw in {"1", "all", "true"}:
        return KERNEL_NAMES
    names = frozenset(part.strip() for part in raw.split(",") if part.strip())
    unknown = names - KERNEL_NAMES
    if unknown:
        raise ValueError(
            f"{DISABLE_ENV} names unknown kernels {sorted(unknown)}; "
            f"known: {sorted(KERNEL_NAMES)}"
        )
    return names


def _probe() -> Optional[ComputeKernels]:
    global _kernels, _disabled, _tried
    if _tried:
        return _kernels
    _tried = True
    _disabled = _disabled_kernels()
    if _disabled == KERNEL_NAMES:
        return None
    try:
        _kernels = ComputeKernels(load_library(_SOURCE, "saga_compute"))
    except Exception as exc:
        if os.environ.get(REQUIRE_ENV):
            raise RuntimeError(
                f"{REQUIRE_ENV} is set but the compute kernels failed to "
                f"build: {exc}"
            ) from exc
        _kernels = None
    return _kernels


def get(name: str) -> Optional[ComputeKernels]:
    """The compiled kernels if ``name`` is available, else ``None``.

    ``name`` must be one of :data:`KERNEL_NAMES`; call sites gate each
    fused path on its own name so individual kernels can be disabled
    for differential debugging.
    """
    kernels = _probe()
    if kernels is None or name in _disabled:
        return None
    return kernels


def loaded() -> bool:
    """True when the compiled library is built and loadable.

    The bench scripts embed this in ``BENCH_*.json`` so a silent numpy
    fallback cannot masquerade as a perf change.
    """
    return _probe() is not None


def reset() -> None:
    """Forget the cached probe result and env parse (test hook)."""
    global _kernels, _disabled, _tried
    _kernels = None
    _disabled = frozenset()
    _tried = False

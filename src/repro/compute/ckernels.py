"""Compiled compute kernels: the hottest inner loops in C via ctypes.

PR 4 vectorized the compute phase, but profiling the quick RMAT
workload shows numpy *dispatch* still dominates: the INC engine issues
~30 small array ops per round (and the dependency-wave machinery on
top), matching the csl-experiments finding that per-op overhead
exceeds pure compute ~2.9x.  This module compiles the inner loops with
the system C compiler (the :mod:`repro.sim.cbuild` pattern from PR 2:
content-hashed build cache, atomic install, ``-ffp-contract=off``) and
exposes them behind the same bit-identity contract as the numpy twins.

The deeper win is *fusion*: the legacy engines are sequential
Gauss-Seidel loops, which numpy can only reproduce through
dependency-level wave scheduling -- but a C loop that processes the
ascending frontier one position at a time reproduces the sequential
semantics *directly*.  ``saga_inc_round`` runs one whole INC round
(recalculate + trigger + dedup) in a single call; ``saga_relax_round``
and ``saga_delta_pass`` do the same for the FS relaxation and
delta-stepping passes.  Float accumulation order is the sequential
order of the legacy loops by construction, NaN semantics follow numpy
(``np.minimum`` propagates NaN; ``inf - inf`` is not a change), and
the build forbids FMA contraction.

Gates:

- ``SAGA_BENCH_NO_CCOMPUTE=1`` (or ``all``) disables every compiled
  compute kernel; a comma list (``inc_round,expand``) disables
  individual kernels, leaving the rest compiled.
- ``SAGA_BENCH_REQUIRE_CCOMPUTE=1`` turns a failed build into a hard
  error instead of the silent numpy fallback (CI sets it so a broken
  toolchain cannot masquerade as a perf regression).
- ``SAGA_BENCH_LEGACY_COMPUTE=1`` bypasses the vectorized engines
  entirely, so these kernels never run on the legacy path.
- ``SAGA_BENCH_COMPUTE_THREADS=N`` runs the fused INC round on a
  persistent pthread pool.  Results are bit-identical at every thread
  count: the round is partitioned into flow-dependency levels, each
  level's recalculation is a pure parallel gather against the values
  array as of the previous level, and write-back, triggering, and
  dedup stay in the serial order.
"""

from __future__ import annotations

import ctypes
import os
from typing import FrozenSet, Optional, Tuple

import numpy as np

from repro.sim.cbuild import load_library

#: Disable compiled compute kernels: "1"/"all", or a comma list of
#: kernel names (see :data:`KERNEL_NAMES`).
DISABLE_ENV = "SAGA_BENCH_NO_CCOMPUTE"

#: When set, a failed build raises instead of falling back to numpy.
REQUIRE_ENV = "SAGA_BENCH_REQUIRE_CCOMPUTE"

#: Thread count for the fused INC round (default 1 = serial).
THREADS_ENV = "SAGA_BENCH_COMPUTE_THREADS"

#: Individually gateable kernel names.
KERNEL_NAMES = frozenset(
    {
        "expand",
        "segment_reduce",
        "segment_sum",
        "inc_round",
        "relax_round",
        "delta_pass",
        "scatter",
    }
)

#: Fused INC-round vertex functions (``saga_inc_round``'s ``op``).
OP_BFS = 0
OP_SSSP = 1
OP_SSWP = 2
OP_CC = 3
OP_MC = 4
OP_PR = 5

#: Fused relaxation ops (``saga_relax_round``'s ``op``).
RELAX_ADD1 = 0  # candidate = base + 1.0           (BFS)
RELAX_MINW = 1  # candidate = min(base, weight)    (SSWP)

_I64 = ctypes.c_int64
_I32 = ctypes.c_int32
_F64 = ctypes.c_double
_PTR = ctypes.c_void_p

_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>
#include <pthread.h>

/* Compute-phase inner loops.  Every function mirrors a numpy kernel
 * (or the legacy per-vertex loop it vectorizes) operation for
 * operation: identical IEEE float64 arithmetic in identical order, and
 * numpy's NaN semantics where min/max are involved (np.minimum /
 * np.maximum propagate NaN; C fmin/fmax do NOT, so comparisons are
 * written out with explicit x != x checks).
 *
 * CSR rows arrive as (starts, lens) rather than a packed indptr: the
 * incremental CSR store keeps per-row slack, so rows need not be
 * contiguous.  A packed CSR is the special case starts = indptr[:n].
 */

/* np.minimum: NaN wins; otherwise the smaller. */
static inline double take_min(double acc, double x)
{
    return (x < acc || x != x) ? x : acc;
}

static inline double take_max(double acc, double x)
{
    return (x > acc || x != x) ? x : acc;
}

/* expand_frontier: all adjacency rows of the frontier, in sequential
 * iteration order (frontier position major, neighbor order minor). */
void saga_expand(
    int64_t k,
    const int64_t *frontier,
    const int64_t *starts,
    const int64_t *lens,
    const int64_t *cols,
    const double *wts,
    int64_t *seg_out,
    int64_t *nbr_out,
    double *wt_out)
{
    int64_t p, j, r = 0;
    for (p = 0; p < k; p++) {
        int64_t v = frontier[p];
        int64_t s = starts[v];
        int64_t d = lens[v];
        for (j = 0; j < d; j++) {
            seg_out[r] = p;
            nbr_out[r] = cols[s + j];
            wt_out[r] = wts[s + j];
            r++;
        }
    }
}

/* segment_min / segment_max over back-to-back segments; empty segments
 * yield the identity, matching _segment_reduce. */
void saga_segment_reduce(
    int64_t nseg,
    const int64_t *counts,
    const double *terms,
    int32_t maximize,
    double identity,
    double *out)
{
    int64_t s, j, i = 0;
    for (s = 0; s < nseg; s++) {
        double acc = identity;
        int64_t c = counts[s];
        if (maximize) {
            for (j = 0; j < c; j++)
                acc = take_max(acc, terms[i + j]);
        } else {
            for (j = 0; j < c; j++)
                acc = take_min(acc, terms[i + j]);
        }
        out[s] = acc;
        i += c;
    }
}

/* segment_sum_ordered: out[seg[i]] += terms[i] in array order -- the
 * exact accumulation order of np.bincount (and a Python += loop).
 * out must arrive zeroed. */
void saga_segment_sum(
    int64_t m,
    const int64_t *seg,
    const double *terms,
    double *out)
{
    int64_t i;
    for (i = 0; i < m; i++)
        out[seg[i]] += terms[i];
}

/* np.minimum.at / np.maximum.at: sequential scatter extreme. */
void saga_scatter_extreme(
    int64_t m,
    const int64_t *idx,
    const double *terms,
    int32_t maximize,
    double *out)
{
    int64_t i;
    for (i = 0; i < m; i++) {
        int64_t t = idx[i];
        out[t] = maximize ? take_max(out[t], terms[i])
                          : take_min(out[t], terms[i]);
    }
}

static int cmp_i64(const void *a, const void *b)
{
    int64_t x = *(const int64_t *)a, y = *(const int64_t *)b;
    return (x > y) - (x < y);
}

/* ---- INC-round vertex recalculation ------------------------------
 * The Table-I vertex functions, factored out so the serial loop and
 * the threaded gather run the exact same IEEE float64 operations in
 * the exact same order (the build forbids FMA contraction, so
 * inlining context cannot change a single bit). */
static double inc_recalc(
    int64_t v,
    const double *values,
    const int64_t *in_starts,
    const int64_t *in_lens,
    const int64_t *in_cols,
    const double *in_wts,
    const int64_t *out_deg,
    int32_t op,
    int64_t pinned,
    double pr_base,
    double damping)
{
    double old = values[v];
    double acc;
    int64_t s, d, j;
    if (v == pinned)
        return old;
    s = in_starts[v];
    d = in_lens[v];
    switch (op) {
    case 0: /* BFS: min(values[u] + 1) */
        acc = INFINITY;
        for (j = 0; j < d; j++)
            acc = take_min(acc, values[in_cols[s + j]] + 1.0);
        return acc;
    case 1: /* SSSP: min(values[u] + w) */
        acc = INFINITY;
        for (j = 0; j < d; j++)
            acc = take_min(acc, values[in_cols[s + j]] + in_wts[s + j]);
        return acc;
    case 2: /* SSWP: max(0, max(min(values[u], w))) */
        acc = -INFINITY;
        for (j = 0; j < d; j++) {
            double vu = values[in_cols[s + j]];
            double w = in_wts[s + j];
            acc = take_max(acc, (vu < w) ? vu : w);
        }
        /* np.maximum(acc, 0.0): NaN propagates. */
        return (acc > 0.0 || acc != acc) ? acc : 0.0;
    case 3: /* CC: min(values[v], min(values[u])) */
        acc = old;
        for (j = 0; j < d; j++)
            acc = take_min(acc, values[in_cols[s + j]]);
        return acc;
    case 4: /* MC: max(values[v], max(values[u])) */
        acc = old;
        for (j = 0; j < d; j++)
            acc = take_max(acc, values[in_cols[s + j]]);
        return acc;
    default: /* PR: base + d * sum(values[u] / outdeg[u]) */
        acc = 0.0;
        for (j = 0; j < d; j++) {
            int64_t u = in_cols[s + j];
            acc += values[u] / (double)out_deg[u];
        }
        return pr_base + damping * acc;
    }
}

/* ---- persistent thread pool --------------------------------------
 * Workers live for the process; saga_set_threads spawns them lazily
 * and only ever grows the pool.  One gather job is in flight at a
 * time (calls arrive serialized from Python), dispatched by bumping a
 * generation counter under the mutex -- which also publishes the
 * values written back between levels to every worker. */

#define SAGA_MAX_THREADS 64
#define SAGA_MT_GRAIN 64 /* min positions per gather slice */

static struct {
    const int64_t *order; /* positions sorted by dependency level */
    int64_t base;         /* current level's slice of order[] */
    int64_t count;
    int nslices;
    const int64_t *frontier;
    const int64_t *in_starts, *in_lens, *in_cols;
    const double *in_wts;
    const int64_t *out_deg;
    const double *values;
    double *nv;
    int32_t op;
    int64_t pinned;
    double pr_base, damping;
} g_job;

static pthread_mutex_t g_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t g_go = PTHREAD_COND_INITIALIZER;
static pthread_cond_t g_done = PTHREAD_COND_INITIALIZER;
static pthread_t g_workers[SAGA_MAX_THREADS];
static int g_spawned = 0;     /* workers running slices 1..g_spawned */
static int64_t g_threads = 1; /* requested gather concurrency */
static uint64_t g_gen = 0;
static int g_pending = 0;

static void inc_run_slice(int idx)
{
    int64_t len = g_job.count;
    int64_t lo = g_job.base + len * idx / g_job.nslices;
    int64_t hi = g_job.base + len * (idx + 1) / g_job.nslices;
    int64_t i;
    for (i = lo; i < hi; i++) {
        int64_t p = g_job.order[i];
        g_job.nv[p] = inc_recalc(
            g_job.frontier[p], g_job.values, g_job.in_starts,
            g_job.in_lens, g_job.in_cols, g_job.in_wts, g_job.out_deg,
            g_job.op, g_job.pinned, g_job.pr_base, g_job.damping);
    }
}

static void *inc_worker(void *arg)
{
    int idx = (int)(intptr_t)arg;
    uint64_t seen_gen = 0;
    pthread_mutex_lock(&g_mu);
    for (;;) {
        while (g_gen == seen_gen)
            pthread_cond_wait(&g_go, &g_mu);
        seen_gen = g_gen;
        pthread_mutex_unlock(&g_mu);
        if (idx < g_job.nslices)
            inc_run_slice(idx);
        pthread_mutex_lock(&g_mu);
        if (--g_pending == 0)
            pthread_cond_signal(&g_done);
    }
    return NULL;
}

/* fork() only carries the calling thread into the child: the pool's
 * workers are gone there, so a threaded gather would wait on g_done
 * forever (multiprocessing sweep workers fork with the pool live).
 * Reset the child to the serial path; it can saga_set_threads again. */
static void saga_pool_atfork_child(void)
{
    g_spawned = 0;
    g_threads = 1;
    g_gen = 0;
    g_pending = 0;
    pthread_mutex_init(&g_mu, NULL);
    pthread_cond_init(&g_go, NULL);
    pthread_cond_init(&g_done, NULL);
}

static int g_atfork = 0;

void saga_set_threads(int64_t n)
{
    if (n < 1)
        n = 1;
    if (n > SAGA_MAX_THREADS)
        n = SAGA_MAX_THREADS;
    if (!g_atfork) {
        if (pthread_atfork(NULL, NULL, saga_pool_atfork_child) != 0)
            return; /* can't make forking safe: stay serial */
        g_atfork = 1;
    }
    while (g_spawned < n - 1) {
        if (pthread_create(&g_workers[g_spawned], NULL, inc_worker,
                           (void *)(intptr_t)(g_spawned + 1)) != 0)
            break; /* cap at what the system could spawn */
        g_spawned++;
    }
    if (n > g_spawned + 1)
        n = g_spawned + 1;
    g_threads = n;
}

int64_t saga_get_threads(void)
{
    return g_threads;
}

static void inc_gather_level(int64_t base, int64_t count)
{
    int nslices = (int)(count / SAGA_MT_GRAIN);
    if (nslices > (int)g_threads)
        nslices = (int)g_threads;
    if (nslices < 2) {
        g_job.base = base;
        g_job.count = count;
        g_job.nslices = 1;
        inc_run_slice(0);
        return;
    }
    pthread_mutex_lock(&g_mu);
    g_job.base = base;
    g_job.count = count;
    g_job.nslices = nslices;
    g_pending = g_spawned;
    g_gen++;
    pthread_cond_broadcast(&g_go);
    pthread_mutex_unlock(&g_mu);
    inc_run_slice(0);
    pthread_mutex_lock(&g_mu);
    while (g_pending > 0)
        pthread_cond_wait(&g_done, &g_mu);
    pthread_mutex_unlock(&g_mu);
}

/* ---- round-local scratch (calls are serialized) ------------------ */

static int64_t *g_posmap = NULL; /* vertex -> frontier position, -1 */
static int64_t g_posmap_cap = 0;
static int64_t *g_scratch = NULL; /* lvl | order | cnt, cap each */
static double *g_fscratch = NULL; /* nv | oldv, cap each */
static int64_t g_scratch_cap = 0;

static int inc_ensure_scratch(int64_t k)
{
    if (g_scratch_cap < k) {
        int64_t cap = g_scratch_cap ? g_scratch_cap : 1024;
        int64_t *si;
        double *sf;
        while (cap < k)
            cap *= 2;
        si = (int64_t *)malloc((size_t)(3 * cap + 1) * sizeof(int64_t));
        sf = (double *)malloc((size_t)(2 * cap) * sizeof(double));
        if (!si || !sf) {
            free(si);
            free(sf);
            return 0;
        }
        free(g_scratch);
        free(g_fscratch);
        g_scratch = si;
        g_fscratch = sf;
        g_scratch_cap = cap;
    }
    return 1;
}

static int inc_posmap_reserve(int64_t need)
{
    if (g_posmap_cap < need) {
        int64_t cap = g_posmap_cap ? g_posmap_cap : 4096;
        int64_t *grown;
        while (cap < need)
            cap *= 2;
        grown = (int64_t *)realloc(g_posmap, (size_t)cap * sizeof(int64_t));
        if (!grown)
            return 0;
        memset(grown + g_posmap_cap, 0xFF,
               (size_t)(cap - g_posmap_cap) * sizeof(int64_t));
        g_posmap = grown;
        g_posmap_cap = cap;
    }
    return 1;
}

/* Threaded INC round.  Positions are partitioned into dependency
 * levels: a flow dependency (position p reads a value that an earlier
 * position q writes) forces lvl[p] > lvl[q]; an anti-dependency
 * (p reads a value a LATER position writes) floors that writer at
 * lvl[p].  Within a level no position reads another's write, so the
 * recalculation is a pure gather against the values array as of the
 * previous level -- parallel slices compute nv[], then write-back
 * runs serially.  Because the frontier is unique, values[v] at any
 * position's serial turn equals its round-start value, so old/new
 * pairs -- and hence the trigger scan, run in original sequential
 * order afterwards -- match the serial loop bit for bit.  Returns 0
 * on allocation failure (caller falls back to the serial loop). */
static int saga_inc_round_mt(
    int64_t k,
    const int64_t *frontier,
    const int64_t *in_starts,
    const int64_t *in_lens,
    const int64_t *in_cols,
    const double *in_wts,
    const int64_t *out_starts,
    const int64_t *out_lens,
    const int64_t *out_cols,
    const int64_t *out_deg,
    double *values,
    int32_t op,
    double epsilon,
    int64_t pinned,
    double pr_base,
    double damping,
    uint8_t *seen,
    int64_t *triggered,
    int64_t *next_out,
    int64_t *counts_out)
{
    int64_t p, j, i, nt = 0, cas = 0, nn = 0, maxlvl = 0, maxv = -1;
    int64_t *lvl, *order, *cnt;
    double *nv, *oldv;
    if (!inc_ensure_scratch(k))
        return 0;
    lvl = g_scratch;
    order = g_scratch + g_scratch_cap;
    cnt = g_scratch + 2 * g_scratch_cap;
    nv = g_fscratch;
    oldv = g_fscratch + g_scratch_cap;
    for (p = 0; p < k; p++)
        if (frontier[p] > maxv)
            maxv = frontier[p];
    if (!inc_posmap_reserve(maxv + 1))
        return 0;
    for (p = 0; p < k; p++)
        g_posmap[frontier[p]] = p;
    for (p = 0; p < k; p++)
        lvl[p] = 0;
    for (p = 0; p < k; p++) {
        int64_t v = frontier[p];
        int64_t L = lvl[p]; /* anti-dependency floor so far */
        if (v != pinned) {
            int64_t s = in_starts[v];
            int64_t d = in_lens[v];
            for (j = 0; j < d; j++) {
                int64_t u = in_cols[s + j];
                int64_t q = u < g_posmap_cap ? g_posmap[u] : -1;
                if (q >= 0 && q < p && lvl[q] + 1 > L)
                    L = lvl[q] + 1;
            }
            for (j = 0; j < d; j++) {
                int64_t u = in_cols[s + j];
                int64_t q = u < g_posmap_cap ? g_posmap[u] : -1;
                if (q > p && lvl[q] < L)
                    lvl[q] = L;
            }
        }
        lvl[p] = L;
        if (L > maxlvl)
            maxlvl = L;
    }
    /* Counting sort: order[] holds positions grouped by ascending
     * level, ascending position within a level. */
    for (i = 0; i <= maxlvl; i++)
        cnt[i] = 0;
    for (p = 0; p < k; p++)
        cnt[lvl[p]]++;
    {
        int64_t off = 0;
        for (i = 0; i <= maxlvl; i++) {
            int64_t c = cnt[i];
            cnt[i] = off;
            off += c;
        }
    }
    for (p = 0; p < k; p++)
        order[cnt[lvl[p]]++] = p; /* cnt[i] becomes level i's end */
    g_job.order = order;
    g_job.frontier = frontier;
    g_job.in_starts = in_starts;
    g_job.in_lens = in_lens;
    g_job.in_cols = in_cols;
    g_job.in_wts = in_wts;
    g_job.out_deg = out_deg;
    g_job.values = values;
    g_job.nv = nv;
    g_job.op = op;
    g_job.pinned = pinned;
    g_job.pr_base = pr_base;
    g_job.damping = damping;
    {
        int64_t base = 0;
        for (i = 0; i <= maxlvl; i++) {
            int64_t end = cnt[i];
            inc_gather_level(base, end - base);
            for (j = base; j < end; j++) {
                int64_t pp = order[j];
                int64_t v = frontier[pp];
                oldv[pp] = values[v];
                values[v] = nv[pp];
            }
            base = end;
        }
    }
    for (p = 0; p < k; p++) {
        double old = oldv[p];
        double nvp = nv[p];
        if (fabs(old - nvp) > epsilon) {
            int64_t v = frontier[p];
            int64_t s = out_starts[v];
            int64_t d = out_lens[v];
            triggered[nt++] = v;
            for (j = 0; j < d; j++) {
                int64_t t = out_cols[s + j];
                cas++;
                if (!seen[t]) {
                    seen[t] = 1;
                    next_out[nn++] = t;
                }
            }
        }
    }
    for (p = 0; p < nn; p++)
        seen[next_out[p]] = 0;
    for (p = 0; p < k; p++)
        g_posmap[frontier[p]] = -1;
    qsort(next_out, (size_t)nn, sizeof(int64_t), cmp_i64);
    counts_out[0] = nt;
    counts_out[1] = cas;
    counts_out[2] = nn;
    return 1;
}

/* One whole INC round (Algorithm 1), fused: sequential Gauss-Seidel
 * over the ascending unique frontier -- each vertex recalculates from
 * the in-CSR reading values[] as they stand (earlier positions already
 * updated, later ones not), writes its new value, and on a change
 * greater than epsilon scans its out-row (cas_ops), deduplicating the
 * next frontier through the caller's zeroed seen[] bytes.  This IS the
 * legacy run_incremental loop, so bit-identity holds by construction;
 * the numpy engine needs dependency-level waves to reproduce it.
 *
 * op selects the Table-I vertex function.  pinned (-1 = none) keeps
 * the source at its current value (old == new, never triggers).
 * Outputs: triggered[] prefix (counts_out[0]), next_out[] prefix
 * sorted ascending (counts_out[2]), counts_out[1] = cas_ops.  seen[]
 * is reset to zero before returning.
 */
void saga_inc_round(
    int64_t k,
    const int64_t *frontier,
    const int64_t *in_starts,
    const int64_t *in_lens,
    const int64_t *in_cols,
    const double *in_wts,
    const int64_t *out_starts,
    const int64_t *out_lens,
    const int64_t *out_cols,
    const int64_t *out_deg,
    double *values,
    int32_t op,
    double epsilon,
    int64_t pinned,
    double pr_base,
    double damping,
    uint8_t *seen,
    int64_t *triggered,
    int64_t *next_out,
    int64_t *counts_out)
{
    int64_t p, j, nt = 0, cas = 0, nn = 0;
    if (g_threads > 1 && k >= 2 * SAGA_MT_GRAIN &&
        saga_inc_round_mt(k, frontier, in_starts, in_lens, in_cols,
                          in_wts, out_starts, out_lens, out_cols,
                          out_deg, values, op, epsilon, pinned, pr_base,
                          damping, seen, triggered, next_out, counts_out))
        return;
    for (p = 0; p < k; p++) {
        int64_t v = frontier[p];
        double old = values[v];
        double nv = inc_recalc(v, values, in_starts, in_lens, in_cols,
                               in_wts, out_deg, op, pinned, pr_base,
                               damping);
        values[v] = nv;
        /* inf - inf is NaN; NaN > eps is false -- not a change,
         * exactly as the scalar engine treats it. */
        if (fabs(old - nv) > epsilon) {
            int64_t s = out_starts[v];
            int64_t d = out_lens[v];
            triggered[nt++] = v;
            for (j = 0; j < d; j++) {
                int64_t t = out_cols[s + j];
                cas++;
                if (!seen[t]) {
                    seen[t] = 1;
                    next_out[nn++] = t;
                }
            }
        }
    }
    for (p = 0; p < nn; p++)
        seen[next_out[p]] = 0;
    /* The numpy engine's np.unique: seen[] already deduplicated, so
     * sorting ascending completes the contract. */
    qsort(next_out, (size_t)nn, sizeof(int64_t), cmp_i64);
    counts_out[0] = nt;
    counts_out[1] = cas;
    counts_out[2] = nn;
}

/* One FS frontier-relaxation round (BFS / SSWP), fused: the legacy
 * loop verbatim -- each frontier vertex reads its base value at its
 * turn, relaxes its out-edges sequentially, conditionally updates, and
 * appends each target to the next frontier on its first improvement
 * (improved[] must arrive zeroed; reset before returning).  Returns
 * the next-frontier length; next_out keeps discovery order (the
 * legacy append order), NOT sorted. */
int64_t saga_relax_round(
    int64_t k,
    const int64_t *frontier,
    const int64_t *starts,
    const int64_t *lens,
    const int64_t *cols,
    const double *wts,
    double *values,
    int32_t op,
    int32_t maximize,
    uint8_t *improved,
    int64_t *next_out)
{
    int64_t p, j, nn = 0;
    for (p = 0; p < k; p++) {
        int64_t v = frontier[p];
        double base = values[v];
        int64_t s = starts[v];
        int64_t d = lens[v];
        for (j = 0; j < d; j++) {
            int64_t t = cols[s + j];
            double w = wts[s + j];
            double cand = op == 0 ? base + 1.0 : ((base < w) ? base : w);
            double cur = values[t];
            if (maximize ? (cand > cur) : (cand < cur)) {
                values[t] = cand;
                if (!improved[t]) {
                    improved[t] = 1;
                    next_out[nn++] = t;
                }
            }
        }
    }
    for (p = 0; p < nn; p++)
        improved[next_out[p]] = 0;
    return nn;
}

/* One delta-stepping light or heavy pass (SSSP FS), fused: sequential
 * conditional relaxation over the frontier's out-edges filtered by
 * weight (light: w <= delta, heavy: w > delta).  Every successful
 * compare-and-update emits one (target, candidate) event in sequential
 * order -- exactly the rows kernels.relaxation_events reconstructs.
 * Returns the event count. */
int64_t saga_delta_pass(
    int64_t k,
    const int64_t *frontier,
    const int64_t *starts,
    const int64_t *lens,
    const int64_t *cols,
    const double *wts,
    double *values,
    double delta,
    int32_t heavy,
    int64_t *ev_tgt,
    double *ev_cand)
{
    int64_t p, j, ne = 0;
    for (p = 0; p < k; p++) {
        int64_t v = frontier[p];
        double base = values[v];
        int64_t s = starts[v];
        int64_t d = lens[v];
        for (j = 0; j < d; j++) {
            double w = wts[s + j];
            int64_t t;
            double cand;
            if (heavy ? (w <= delta) : (w > delta))
                continue;
            t = cols[s + j];
            cand = base + w;
            if (cand < values[t]) {
                values[t] = cand;
                ev_tgt[ne] = t;
                ev_cand[ne] = cand;
                ne++;
            }
        }
    }
    return ne;
}
"""


def _sig(fn, restype, argtypes) -> None:
    fn.restype = restype
    fn.argtypes = argtypes


class ComputeKernels:
    """ctypes wrappers over the compiled kernels (numpy in/out)."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        _sig(lib.saga_expand, None, [_I64] + [_PTR] * 8)
        _sig(lib.saga_segment_reduce, None, [_I64, _PTR, _PTR, _I32, _F64, _PTR])
        _sig(lib.saga_segment_sum, None, [_I64, _PTR, _PTR, _PTR])
        _sig(lib.saga_scatter_extreme, None, [_I64, _PTR, _PTR, _I32, _PTR])
        _sig(
            lib.saga_inc_round,
            None,
            [_I64] + [_PTR] * 10 + [_I32, _F64, _I64, _F64, _F64] + [_PTR] * 4,
        )
        _sig(
            lib.saga_relax_round,
            _I64,
            [_I64] + [_PTR] * 6 + [_I32, _I32] + [_PTR] * 2,
        )
        _sig(
            lib.saga_delta_pass,
            _I64,
            [_I64] + [_PTR] * 6 + [_F64, _I32] + [_PTR] * 2,
        )
        _sig(lib.saga_set_threads, None, [_I64])
        _sig(lib.saga_get_threads, _I64, [])

    def set_threads(self, n: int) -> None:
        """Size the INC-round gather pool (clamped to what spawns)."""
        self._lib.saga_set_threads(int(n))

    def threads(self) -> int:
        return int(self._lib.saga_get_threads())

    # ``arr.ctypes.data`` of a size-0 array is a valid (never
    # dereferenced) pointer, so empty frontiers need no special casing.
    @staticmethod
    def _p(arr: np.ndarray):
        return arr.ctypes.data

    def expand(
        self, csr, frontier: np.ndarray, total: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """C twin of :func:`repro.compute.kernels.expand_frontier`."""
        seg = np.empty(total, dtype=np.int64)
        nbr = np.empty(total, dtype=np.int64)
        wt = np.empty(total, dtype=np.float64)
        self._lib.saga_expand(
            frontier.size,
            self._p(frontier),
            self._p(csr.indptr),
            self._p(csr.degrees),
            self._p(csr.indices),
            self._p(csr.weights),
            self._p(seg),
            self._p(nbr),
            self._p(wt),
        )
        return seg, nbr, wt

    def segment_reduce(
        self, terms: np.ndarray, counts: np.ndarray, identity: float, maximize: bool
    ) -> np.ndarray:
        out = np.empty(counts.size, dtype=np.float64)
        self._lib.saga_segment_reduce(
            counts.size,
            self._p(counts),
            self._p(terms),
            1 if maximize else 0,
            identity,
            self._p(out),
        )
        return out

    def segment_sum(
        self, terms: np.ndarray, seg: np.ndarray, num_segments: int
    ) -> np.ndarray:
        out = np.zeros(num_segments, dtype=np.float64)
        self._lib.saga_segment_sum(
            terms.size, self._p(seg), self._p(terms), self._p(out)
        )
        return out

    def scatter_extreme(
        self, out: np.ndarray, idx: np.ndarray, terms: np.ndarray, maximize: bool
    ) -> None:
        """In-place ``np.minimum.at`` / ``np.maximum.at``."""
        self._lib.saga_scatter_extreme(
            idx.size, self._p(idx), self._p(terms), 1 if maximize else 0, self._p(out)
        )

    def inc_round(
        self,
        cv,
        frontier: np.ndarray,
        values: np.ndarray,
        op: int,
        epsilon: float,
        pinned: int,
        pr_base: float,
        damping: float,
        seen: np.ndarray,
    ) -> Tuple[np.ndarray, int, np.ndarray]:
        """One fused INC round; returns (triggered, cas_ops, next)."""
        k = frontier.size
        out_csr = cv.out_csr
        in_csr = cv.in_csr
        cap = int(out_csr.degrees[frontier].sum()) if k else 0
        triggered = np.empty(k, dtype=np.int64)
        next_out = np.empty(cap, dtype=np.int64)
        counts = np.zeros(3, dtype=np.int64)
        self._lib.saga_inc_round(
            k,
            self._p(frontier),
            self._p(in_csr.indptr),
            self._p(in_csr.degrees),
            self._p(in_csr.indices),
            self._p(in_csr.weights),
            self._p(out_csr.indptr),
            self._p(out_csr.degrees),
            self._p(out_csr.indices),
            self._p(out_csr.degrees),
            self._p(values),
            op,
            epsilon,
            pinned,
            pr_base,
            damping,
            self._p(seen),
            self._p(triggered),
            self._p(next_out),
            self._p(counts),
        )
        return triggered[: counts[0]], int(counts[1]), next_out[: counts[2]]

    def relax_round(
        self,
        csr,
        frontier: np.ndarray,
        values: np.ndarray,
        op: int,
        maximize: bool,
        improved: np.ndarray,
    ) -> np.ndarray:
        """One fused FS relaxation round; returns the next frontier."""
        cap = int(csr.degrees[frontier].sum()) if frontier.size else 0
        next_out = np.empty(cap, dtype=np.int64)
        nn = self._lib.saga_relax_round(
            frontier.size,
            self._p(frontier),
            self._p(csr.indptr),
            self._p(csr.degrees),
            self._p(csr.indices),
            self._p(csr.weights),
            self._p(values),
            op,
            1 if maximize else 0,
            self._p(improved),
            self._p(next_out),
        )
        return next_out[:nn]

    def delta_pass(
        self,
        csr,
        frontier: np.ndarray,
        values: np.ndarray,
        delta: float,
        heavy: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One fused delta-stepping pass; returns (ev_tgt, ev_cand)."""
        cap = int(csr.degrees[frontier].sum()) if frontier.size else 0
        ev_tgt = np.empty(cap, dtype=np.int64)
        ev_cand = np.empty(cap, dtype=np.float64)
        ne = self._lib.saga_delta_pass(
            frontier.size,
            self._p(frontier),
            self._p(csr.indptr),
            self._p(csr.degrees),
            self._p(csr.indices),
            self._p(csr.weights),
            self._p(values),
            delta,
            1 if heavy else 0,
            self._p(ev_tgt),
            self._p(ev_cand),
        )
        return ev_tgt[:ne], ev_cand[:ne]


_kernels: Optional[ComputeKernels] = None
_disabled: FrozenSet[str] = frozenset()
_tried = False


def _disabled_kernels() -> FrozenSet[str]:
    raw = os.environ.get(DISABLE_ENV, "").strip()
    if not raw:
        return frozenset()
    if raw in {"1", "all", "true"}:
        return KERNEL_NAMES
    names = frozenset(part.strip() for part in raw.split(",") if part.strip())
    unknown = names - KERNEL_NAMES
    if unknown:
        raise ValueError(
            f"{DISABLE_ENV} names unknown kernels {sorted(unknown)}; "
            f"known: {sorted(KERNEL_NAMES)}"
        )
    return names


def _probe() -> Optional[ComputeKernels]:
    global _kernels, _disabled, _tried
    if _tried:
        return _kernels
    _tried = True
    _disabled = _disabled_kernels()
    if _disabled == KERNEL_NAMES:
        return None
    try:
        _kernels = ComputeKernels(
            load_library(_SOURCE, "saga_compute", extra_flags=("-pthread",))
        )
        _kernels.set_threads(_env_threads())
    except Exception as exc:
        if os.environ.get(REQUIRE_ENV):
            raise RuntimeError(
                f"{REQUIRE_ENV} is set but the compute kernels failed to "
                f"build: {exc}"
            ) from exc
        _kernels = None
    return _kernels


def get(name: str) -> Optional[ComputeKernels]:
    """The compiled kernels if ``name`` is available, else ``None``.

    ``name`` must be one of :data:`KERNEL_NAMES`; call sites gate each
    fused path on its own name so individual kernels can be disabled
    for differential debugging.
    """
    kernels = _probe()
    if kernels is None or name in _disabled:
        return None
    return kernels


def _env_threads() -> int:
    """Thread count requested through :data:`THREADS_ENV` (min 1)."""
    raw = os.environ.get(THREADS_ENV, "").strip()
    if not raw:
        return 1
    try:
        n = int(raw)
    except ValueError:
        raise ValueError(
            f"{THREADS_ENV} must be an integer, got {raw!r}"
        ) from None
    return max(1, n)


def compute_threads() -> int:
    """Threads the fused INC round runs on (1 when not compiled)."""
    kernels = _probe()
    return kernels.threads() if kernels is not None else 1


def set_compute_threads(n: int) -> None:
    """Resize the gather pool at runtime (no-op without the library)."""
    kernels = _probe()
    if kernels is not None:
        kernels.set_threads(n)


def loaded() -> bool:
    """True when the compiled library is built and loadable.

    The bench scripts embed this in ``BENCH_*.json`` so a silent numpy
    fallback cannot masquerade as a perf change.
    """
    return _probe() is not None


def reset() -> None:
    """Forget the cached probe result and env parse (test hook)."""
    global _kernels, _disabled, _tried
    _kernels = None
    _disabled = frozenset()
    _tried = False

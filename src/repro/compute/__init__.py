"""Compute models of SAGA-Bench (Section III-B).

Two models run an algorithm over the freshly updated graph:

- **FS (recomputation from scratch)** -- every batch resets all vertex
  values and reruns a conventional static-graph algorithm (GAP-style).
  Implemented per algorithm in :mod:`repro.algorithms`.
- **INC (incremental computation)** -- Algorithm 1 of the paper:
  *processing amortization* (start from the previous batch's values)
  plus *selective triggering* (recompute only vertices affected,
  directly or transitively, by the latest update).  The generic engine
  lives in :mod:`repro.compute.incremental`.

:mod:`repro.compute.pricing` converts the operation counts of a run
into per-data-structure compute latencies on the simulated machine.

:mod:`repro.compute.kernels` holds the vectorized compute path: one
columnar :class:`~repro.compute.kernels.ComputeView` per batch plus
frontier-at-a-time kernels for both models, bit-identical to the
per-vertex engines (``SAGA_BENCH_LEGACY_COMPUTE=1`` restores those).
"""

from repro.compute.incremental import run_incremental
from repro.compute.kernels import (
    LEGACY_COMPUTE_ENV,
    ComputeView,
    use_legacy_compute,
    view_scope,
)
from repro.compute.pricing import ComputePricing, price_compute_run
from repro.compute.stats import ComputeRun, IterationStats
from repro.compute.state import AlgorithmState

__all__ = [
    "AlgorithmState",
    "ComputePricing",
    "ComputeRun",
    "ComputeView",
    "IterationStats",
    "LEGACY_COMPUTE_ENV",
    "price_compute_run",
    "run_incremental",
    "use_legacy_compute",
    "view_scope",
]

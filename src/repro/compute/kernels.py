"""Vectorized compute-phase kernels: columnar CSR views + frontier ops.

PR 2 made the *update* phase columnar; this module does the same for
the *compute* phase.  The per-vertex engines (``run_incremental``'s
Python loop, ``frontier_relaxation``'s per-edge relaxations) become
frontier-at-a-time kernels over a :class:`ComputeView` -- indptr /
indices / weights CSR arrays exported by every graph structure or
maintained per batch by the streaming driver -- in the GraphBolt /
KickStarter shape: expand the frontier with ``np.repeat``, gather
neighbor values, reduce with segment operations.

The kernels are **bit-identical** to the legacy per-vertex engines:
same float values, same per-round ``IterationStats`` arrays, same
triggered counts, and therefore the same priced cycles.  Two things
make that non-trivial:

1. **Sequential in-round semantics.**  The legacy engines are
   Gauss-Seidel within a round: a vertex late in the iteration order
   observes the *updated* values of vertices processed earlier in the
   same round.  The kernels reproduce this with *prefix waves*: the
   ordered frontier is cut into contiguous position ranges such that
   no range contains a position that depends on an earlier position in
   the same range (:func:`prefix_waves`).  Contiguity matters -- it
   also preserves the *reverse* constraint that a vertex reads its
   inputs before any later-positioned vertex overwrites them.
2. **Sequential float accumulation.**  ``np.add.reduce`` and
   ``np.add.reduceat`` use pairwise summation, which is *not* the
   bit pattern of a sequential Python ``+=`` loop.  ``np.bincount``
   and ``np.cumsum`` are sequential, so ordered segment sums (PR) use
   ``bincount`` and whole-array sums (SSSP's delta pick) ``cumsum``.
   Min/max reductions are order-free bitwise and use ``reduceat``.

The legacy path stays available behind ``SAGA_BENCH_LEGACY_COMPUTE=1``
(mirroring ``SAGA_BENCH_LEGACY_TASKS`` from PR 2).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.compute import ckernels
from repro.compute.stats import ComputeRun, IterationStats
from repro.errors import SimulationError
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER

#: Set to "1" to run the legacy per-vertex compute engines.
LEGACY_COMPUTE_ENV = "SAGA_BENCH_LEGACY_COMPUTE"

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_F64 = np.empty(0, dtype=np.float64)


def use_legacy_compute() -> bool:
    """True when the environment selects the per-vertex compute path."""
    return os.environ.get(LEGACY_COMPUTE_ENV) == "1"


# ----------------------------------------------------------------------
# Columnar views
# ----------------------------------------------------------------------


class CSRArrays(NamedTuple):
    """One direction of adjacency in CSR form.

    ``indices[indptr[u] : indptr[u] + degrees[u]]`` are u's neighbors
    in the exact order the source view iterates them (required for
    bit-identity of sequential accumulations); ``weights`` is parallel
    to ``indices``.  Rows are usually packed (``degrees`` is
    ``np.diff(indptr)``), but the incrementally-maintained views of
    :mod:`repro.compute.csrstore` export rows with slack between them;
    every kernel therefore reads row extents from ``indptr[u]`` +
    ``degrees[u]``, never from ``indptr[u + 1]``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    degrees: np.ndarray


def csr_from_rows(rows, num_nodes: int) -> CSRArrays:
    """Build :class:`CSRArrays` from per-vertex ``(neighbor, weight)`` rows.

    ``rows`` yields one neighbor sequence per vertex id in order; the
    generic fallback used by views without a columnar fast path.
    """
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    indices: List[int] = []
    weights: List[float] = []
    for u, pairs in enumerate(rows):
        for v, w in pairs:
            indices.append(v)
            weights.append(w)
        indptr[u + 1] = len(indices)
    return CSRArrays(
        indptr=indptr,
        indices=np.asarray(indices, dtype=np.int64),
        weights=np.asarray(weights, dtype=np.float64),
        degrees=np.diff(indptr),
    )


def csr_from_edges(
    src: np.ndarray, dst: np.ndarray, weight: np.ndarray, num_nodes: int, by_src: bool
) -> CSRArrays:
    """Group an edge list into CSR by source (out) or destination (in).

    The grouping sort is stable, so per-vertex neighbor order equals
    the chronological order of the edge list -- which is how the
    driver's incidence buffer and the reference graph's dicts iterate.
    """
    keys = src if by_src else dst
    vals = dst if by_src else src
    order = np.argsort(keys, kind="stable")
    counts = np.bincount(keys, minlength=num_nodes).astype(np.int64)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRArrays(
        indptr=indptr,
        indices=vals[order],
        weights=weight[order],
        degrees=counts,
    )


class ComputeView:
    """Both adjacency directions of one graph snapshot, columnar.

    The batch-granular artifact the kernels run against: built once per
    batch by the streaming driver (from its incidence buffer) or on
    demand from any view exposing ``csr_arrays`` /
    ``out_neigh``/``in_neigh``.
    """

    __slots__ = (
        "num_nodes",
        "out_csr",
        "in_csr",
        "packed",
        "version",
        "_packed_in",
        "_packed_out_w",
    )

    def __init__(
        self,
        num_nodes: int,
        out_csr: CSRArrays,
        in_csr: CSRArrays,
        packed: bool = True,
    ) -> None:
        self.num_nodes = num_nodes
        self.out_csr = out_csr
        self.in_csr = in_csr
        #: True when both CSRs are slack-free (indices/weights have
        #: exactly E live entries in row-major order).  Incremental
        #: views from csrstore leave slack and set this False.
        self.packed = packed
        #: Monotonic snapshot id assigned by the maintainer (0 = ad hoc).
        self.version = 0
        self._packed_in = None
        self._packed_out_w = None

    @property
    def out_degree(self) -> np.ndarray:
        return self.out_csr.degrees

    @classmethod
    def from_edges(
        cls, src: np.ndarray, dst: np.ndarray, weight: np.ndarray, num_nodes: int
    ) -> "ComputeView":
        """Build from insertion-ordered incidence arrays (driver path).

        For undirected graphs the arrays must already contain both
        orientations (the driver's reverse-interleaved buffer does).
        """
        return cls(
            num_nodes,
            out_csr=csr_from_edges(src, dst, weight, num_nodes, by_src=True),
            in_csr=csr_from_edges(src, dst, weight, num_nodes, by_src=False),
        )

    @classmethod
    def of(cls, view) -> "ComputeView":
        """Columnar export of any graph view.

        Prefers the view's own ``csr_arrays(direction)``; falls back to
        per-vertex ``out_neigh``/``in_neigh`` iteration for foreign
        views, so every view type the legacy engines accepted works.
        """
        n = view.num_nodes
        exporter = getattr(view, "csr_arrays", None)
        if exporter is not None:
            out_csr = _as_csr(exporter("out"), n)
            in_csr = _as_csr(exporter("in"), n)
        else:
            out_csr = csr_from_rows((view.out_neigh(u) for u in range(n)), n)
            in_csr = csr_from_rows((view.in_neigh(u) for u in range(n)), n)
        return cls(n, out_csr=out_csr, in_csr=in_csr)


def _as_csr(arrays, num_nodes: int) -> CSRArrays:
    if isinstance(arrays, CSRArrays):
        return arrays
    indptr, indices, weights = arrays
    return CSRArrays(indptr, indices, weights, np.diff(indptr))


def csr_from_pair_rows(rows, num_nodes: int) -> CSRArrays:
    """:class:`CSRArrays` from materialized per-vertex pair rows.

    Like :func:`csr_from_rows` but requires ``rows`` to be an indexable
    sequence of ``len()``-able ``(neighbor, weight)`` collections, which
    lets the columns come from one bulk ``np.array`` conversion instead
    of a per-pair Python loop.  Neighbor ids survive the float64 round
    trip exactly (they are far below 2**53).
    """
    counts = np.fromiter(
        (len(rows[u]) for u in range(num_nodes)), dtype=np.int64, count=num_nodes
    )
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    if total == 0:
        return CSRArrays(indptr, _EMPTY_I64, _EMPTY_F64, counts)
    flat = np.array(
        [pair for u in range(num_nodes) for pair in rows[u]], dtype=np.float64
    ).reshape(total, 2)
    return CSRArrays(
        indptr=indptr,
        indices=flat[:, 0].astype(np.int64),
        weights=np.ascontiguousarray(flat[:, 1]),
        degrees=counts,
    )


def _flat_row_slots(csr: CSRArrays, num_nodes: int) -> np.ndarray:
    """Heap positions of all live entries of rows 0..n, row-major."""
    counts = csr.degrees[:num_nodes]
    total = int(counts.sum())
    offsets = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    return np.repeat(csr.indptr[:num_nodes], counts) + within


def packed_in_edges(cv: ComputeView) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(src, dst, weight)`` of every edge, grouped by destination.

    Within one destination the edges keep the view's neighbor order --
    the order the legacy in-edge extraction iterates.  Zero-copy when
    the view is packed; a single flat gather otherwise.  Cached on the
    view, which is immutable once published.
    """
    cached = cv._packed_in
    if cached is None:
        csr = cv.in_csr
        n = cv.num_nodes
        dst = np.repeat(np.arange(n, dtype=np.int64), csr.degrees[:n])
        if cv.packed:
            cached = (csr.indices, dst, csr.weights)
        else:
            flat = _flat_row_slots(csr, n)
            cached = (csr.indices[flat], dst, csr.weights[flat])
        cv._packed_in = cached
    return cached


def packed_out_weights(cv: ComputeView) -> np.ndarray:
    """All live out-edge weights in row-major order (slack squeezed out).

    SSSP's delta pick needs a sequential ``cumsum`` over exactly the
    live weights in the order the packed view would store them.
    """
    weights = cv._packed_out_w
    if weights is None:
        if cv.packed:
            weights = cv.out_csr.weights
        else:
            weights = cv.out_csr.weights[_flat_row_slots(cv.out_csr, cv.num_nodes)]
        cv._packed_out_w = weights
    return weights


# -- driver-scoped view sharing ---------------------------------------
#
# The driver builds one ComputeView per batch and shares it across
# every algorithm x model run of that batch without threading it
# through third-party ``fs_run`` signatures: it registers the view for
# the duration of the compute phase and the engines look it up.

_SCOPED_VIEWS: Dict[int, "ComputeView"] = {}


@contextmanager
def view_scope(view, compute_view: Optional["ComputeView"]):
    """Register ``compute_view`` as the columnar twin of ``view``."""
    if compute_view is None:
        yield
        return
    key = id(view)
    previous = _SCOPED_VIEWS.get(key)
    _SCOPED_VIEWS[key] = compute_view
    try:
        yield
    finally:
        if previous is None:
            _SCOPED_VIEWS.pop(key, None)
        else:
            _SCOPED_VIEWS[key] = previous


def scoped_view(view) -> Optional["ComputeView"]:
    """The ComputeView registered for ``view``, if any (no building)."""
    return _SCOPED_VIEWS.get(id(view))


def resolve_view(view, compute_view: Optional["ComputeView"] = None) -> "ComputeView":
    """The ComputeView to use for ``view``: given > scoped > built."""
    if compute_view is not None:
        return compute_view
    scoped = _SCOPED_VIEWS.get(id(view))
    if scoped is not None:
        return scoped
    return ComputeView.of(view)


# ----------------------------------------------------------------------
# Frontier primitives
# ----------------------------------------------------------------------


def expand_frontier(
    csr: CSRArrays, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All adjacency rows of ``frontier``, in sequential iteration order.

    Returns ``(seg, nbr, wt)``: for row r, frontier position ``seg[r]``
    touches neighbor ``nbr[r]`` with weight ``wt[r]``.  ``seg`` is
    non-decreasing and rows within one position follow the view's
    neighbor order -- exactly the order the legacy per-vertex loop
    visits edges.  Robust to empty adjacency lists.
    """
    counts = csr.degrees[frontier]
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_I64, _EMPTY_I64, _EMPTY_F64
    ck = ckernels.get("expand")
    if ck is not None:
        return ck.expand(csr, frontier, total)
    seg = np.repeat(np.arange(len(frontier), dtype=np.int64), counts)
    offsets = np.cumsum(counts) - counts  # exclusive prefix per position
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    flat = csr.indptr[frontier][seg] + within
    return seg, csr.indices[flat], csr.weights[flat]


def segment_min(terms: np.ndarray, counts: np.ndarray, identity: float) -> np.ndarray:
    """Per-segment minimum with ``identity`` for empty segments.

    ``terms`` holds the segments back to back; ``counts[i]`` is segment
    i's length.  Min is order-free bitwise, so ``reduceat`` is safe
    (only the starts of non-empty segments are passed, which makes the
    spans between consecutive starts cover exactly one segment each).
    """
    ck = ckernels.get("segment_reduce")
    if ck is not None and identity == np.inf:
        # The C loop seeds every segment with the identity; that is
        # only a no-op for the direction's true identity, so other
        # identities keep the reduceat path.
        return ck.segment_reduce(terms, counts, identity, maximize=False)
    return _segment_reduce(np.minimum, terms, counts, identity)


def segment_max(terms: np.ndarray, counts: np.ndarray, identity: float) -> np.ndarray:
    """Per-segment maximum with ``identity`` for empty segments."""
    ck = ckernels.get("segment_reduce")
    if ck is not None and identity == -np.inf:
        return ck.segment_reduce(terms, counts, identity, maximize=True)
    return _segment_reduce(np.maximum, terms, counts, identity)


def _segment_reduce(op, terms, counts, identity):
    out = np.full(len(counts), identity, dtype=np.float64)
    if terms.size == 0 or len(counts) == 0:
        return out
    nonempty = counts > 0
    starts = np.cumsum(counts) - counts
    out[nonempty] = op.reduceat(terms, starts[nonempty])
    return out


def segment_sum_ordered(
    terms: np.ndarray, seg: np.ndarray, num_segments: int
) -> np.ndarray:
    """Per-segment sum accumulating in row order (sequential bit pattern).

    ``np.bincount`` adds elements into each bin in array order, so the
    result carries the same float bits as a Python ``+=`` loop over the
    rows -- unlike ``np.add.reduceat``, which sums pairwise.
    """
    if terms.size == 0:
        return np.zeros(num_segments, dtype=np.float64)
    ck = ckernels.get("segment_sum")
    if ck is not None:
        return ck.segment_sum(terms, seg, num_segments)
    return np.bincount(seg, weights=terms, minlength=num_segments)


def scatter_extreme(
    out: np.ndarray, idx: np.ndarray, terms: np.ndarray, maximize: bool
) -> None:
    """In-place per-index min/max scatter (``np.minimum.at`` twin).

    Min/max are order-free bitwise, so the compiled loop and the ufunc
    ``.at`` form are interchangeable; the C path is skipped under the
    legacy env so the legacy engines' timings stay untouched.
    """
    ck = None if use_legacy_compute() else ckernels.get("scatter")
    if ck is not None and idx.size:
        ck.scatter_extreme(
            out,
            np.ascontiguousarray(idx, dtype=np.int64),
            np.ascontiguousarray(terms, dtype=np.float64),
            maximize,
        )
        return
    (np.maximum if maximize else np.minimum).at(out, idx, terms)


def prefix_waves(
    size: int, dep_src: np.ndarray, dep_dst: np.ndarray
) -> List[Tuple[int, int]]:
    """Cut positions ``0..size`` into sequentially-safe contiguous waves.

    A dependency ``(p, q)`` with ``p < q`` means position q must run in
    a strictly later wave than position p (q reads a value p writes).
    Waves are *prefix ranges*: contiguity guarantees both directions of
    the sequential contract -- a dependent position runs after its
    writer, and a position's inputs are read before any later position
    overwrites them.  A greedy "ready set" partition would violate the
    second property.

    Each wave starts at the previous cut s and ends before the first
    position q > s whose latest writer ``maxdep[q]`` lies at or after
    s.  ``maxdep[q] < q`` always, so every wave is non-empty.
    """
    if size <= 1 or len(dep_src) == 0:
        return [(0, size)] if size else []
    maxdep = np.full(size, -1, dtype=np.int64)
    np.maximum.at(maxdep, dep_dst, dep_src)
    waves: List[Tuple[int, int]] = []
    start = 0
    while start < size:
        tail = maxdep[start + 1 :]
        violating = tail >= start
        end = start + 1 + int(np.argmax(violating)) if violating.any() else size
        waves.append((start, end))
        start = end
    return waves


def dependency_levels(
    size: int,
    fwd_src: np.ndarray,
    fwd_dst: np.ndarray,
    anti_src: np.ndarray,
    anti_dst: np.ndarray,
) -> np.ndarray:
    """Exact sequential-equivalence levels for one Gauss-Seidel round.

    Position q of an (ascending, unique) frontier must observe the new
    value of every in-frontier in-neighbor at an earlier position
    (forward dependency: ``lvl[q] > lvl[p]``) and the *old* value of
    every in-frontier in-neighbor at a later position (anti dependency:
    the later writer runs no earlier, ``lvl[writer] >= lvl[reader]``;
    equality is safe because a wave gathers all inputs before it
    writes).  The least fixpoint of those constraints is the longest
    dependency-chain depth -- far fewer waves than contiguous prefix
    cuts, which split on *positions* rather than chains.

    Monotone iteration to the fixpoint: each sweep extends every chain
    by at least one step, so the sweep count is the final depth + 1.
    """
    lvl = np.zeros(size, dtype=np.int64)
    if fwd_src.size == 0:
        return lvl
    if anti_src.size:
        src = np.concatenate([fwd_src, anti_src])
        dst = np.concatenate([fwd_dst, anti_dst])
        bump = np.zeros(src.size, dtype=np.int64)
        bump[: fwd_src.size] = 1
    else:
        src, dst, bump = fwd_src, fwd_dst, 1
    before = np.int64(-1)
    while True:
        np.maximum.at(lvl, dst, lvl[src] + bump)
        # Levels only grow, so an unchanged sum means a fixpoint.
        total = lvl.sum()
        if total == before:
            return lvl
        before = total


def writer_reader_deps(
    frontier: np.ndarray, writer_pos: np.ndarray, writer_tgt: np.ndarray, size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Forward dependencies of push-style rounds (FS relaxation).

    Row r at frontier position ``writer_pos[r]`` may write vertex
    ``writer_tgt[r]``; frontier position q reads the base value of
    ``frontier[q]`` at its turn.  Returns ``(dep_src, dep_dst)`` pairs
    ``(p, q)`` where p is the *latest* writer position below q that
    targets ``frontier[q]`` -- sufficient for :func:`prefix_waves`.
    Handles duplicate frontier entries (SSSP's settled list may revisit
    a vertex), which is why this is a sorted join rather than a single
    position scatter.
    """
    if writer_pos.size == 0 or size <= 1:
        return _EMPTY_I64, _EMPTY_I64
    order = np.lexsort((writer_pos, writer_tgt))
    tgt_sorted = writer_tgt[order]
    pos_sorted = writer_pos[order]
    # Composite key (target, writer position): positions are < size, so
    # target * size + position sorts by target then position.
    keys = tgt_sorted * size + pos_sorted
    positions = np.arange(size, dtype=np.int64)
    queries = frontier * size + positions
    idx = np.searchsorted(keys, queries)
    group_start = np.searchsorted(tgt_sorted, frontier)
    has_dep = idx > group_start
    dep_dst = positions[has_dep]
    dep_src = pos_sorted[idx[has_dep] - 1]
    return dep_src, dep_dst


# ----------------------------------------------------------------------
# INC: frontier-at-a-time Algorithm 1
# ----------------------------------------------------------------------


def as_frontier(affected, num_nodes: int) -> np.ndarray:
    """Normalize an affected set to a unique ascending int64 array."""
    if isinstance(affected, np.ndarray):
        arr = affected.astype(np.int64, copy=False)
    else:
        arr = np.fromiter(affected, dtype=np.int64)
    return np.unique(arr[arr < num_nodes])


def _observe_frontier(run: ComputeRun, size: int) -> None:
    """Per-round frontier accounting: run totals + optional histogram.

    The run totals (``frontier_rounds`` / ``frontier_vertices``) are
    the per-batch features the cost-model fitter consumes; they are two
    integer adds, so they stay on even when observability is off.
    """
    run.frontier_rounds += 1
    run.frontier_vertices += int(size)
    if METRICS.enabled:
        METRICS.histogram(
            "compute_frontier_size",
            "frontier size per compute-kernel round",
            algorithm=run.algorithm,
            model=run.model,
        ).observe(float(size))


def _observe_expansion(run: ComputeRun, edges: int) -> None:
    """Record one round's expanded-edge count (numpy paths only --
    the fused C rounds never materialize the expansion)."""
    if METRICS.enabled:
        METRICS.histogram(
            "compute_expanded_edges",
            "edges expanded per compute-kernel round",
            algorithm=run.algorithm,
            model=run.model,
        ).observe(float(edges))


def run_incremental_frontier(
    view,
    values: np.ndarray,
    affected,
    algorithm,
    source: Optional[int] = None,
    compute_view: Optional[ComputeView] = None,
    max_rounds: int = 10_000,
) -> ComputeRun:
    """Algorithm 1, one frontier at a time (bit-identical to the loop).

    ``algorithm`` supplies ``recalculate_batch`` (the vectorized Table
    I vertex function), ``epsilon``, and source pinning.  Per round:
    expand the ascending frontier over the in-CSR, schedule it into
    dependency-level waves so Gauss-Seidel reads see exactly the values
    the sequential loop would, recalculate wave-at-a-time, then derive
    ``triggered``/``cas_ops``/``pushes`` from vectorized masks over the
    out-expansion (the legacy visited bitvector becomes ``np.unique``).

    When the algorithm declares a compiled vertex function
    (``ckernel_op``) and the compute kernels built, the whole round --
    expansion, Gauss-Seidel recalculation, trigger test, next-frontier
    dedup -- runs as one C call: the C loop IS sequential, so the wave
    machinery (whose entire purpose is reproducing sequential reads
    with vector ops) disappears rather than being translated.
    """
    cv = resolve_view(view, compute_view)
    n = cv.num_nodes
    run = ComputeRun(algorithm=algorithm.name, model="INC", values=values)
    run.linear_scans = 2
    epsilon = algorithm.epsilon
    pinned = source if algorithm.needs_source and source is not None else None
    frontier = as_frontier(affected, n)
    rounds = 0
    ck = ckernels.get("inc_round")
    ck_op = getattr(algorithm, "ckernel_op", None)
    if ck is not None and ck_op is not None:
        pin = int(pinned) if pinned is not None and pinned < n else -1
        pr_base, damping = algorithm.ckernel_constants(n)
        seen = np.zeros(n, dtype=np.uint8)
        with TRACER.span(
            "compute.kernel", args={"algorithm": algorithm.name, "model": "INC"}
        ):
            while frontier.size:
                rounds += 1
                if rounds > max_rounds:
                    raise SimulationError(
                        f"incremental {algorithm.name} exceeded {max_rounds} "
                        "rounds; the vertex function is probably not convergent"
                    )
                _observe_frontier(run, frontier.size)
                triggered, cas_ops, next_frontier = ck.inc_round(
                    cv, frontier, values, ck_op, epsilon, pin, pr_base, damping, seen
                )
                run.iterations.append(
                    IterationStats.make(
                        pull=frontier,
                        push=triggered,
                        pushes=int(next_frontier.size),
                        cas_ops=cas_ops,
                    )
                )
                frontier = next_frontier
        return run
    with TRACER.span(
        "compute.kernel", args={"algorithm": algorithm.name, "model": "INC"}
    ):
        while frontier.size:
            rounds += 1
            if rounds > max_rounds:
                raise SimulationError(
                    f"incremental {algorithm.name} exceeded {max_rounds} rounds; "
                    "the vertex function is probably not convergent"
                )
            _observe_frontier(run, frontier.size)
            k = frontier.size
            seg, nbr, nwt = expand_frontier(cv.in_csr, frontier)
            _observe_expansion(run, nbr.size)
            # Forward deps: reading an in-neighbor that sits earlier in
            # this (ascending, unique) frontier sees its new value.
            position = np.full(n, -1, dtype=np.int64)
            position[frontier] = np.arange(k, dtype=np.int64)
            pin_pos = int(position[pinned]) if pinned is not None and pinned < n else -1
            writer = position[nbr]
            in_front = writer >= 0
            forward = in_front & (writer < seg)
            # inf - inf (unreached stays unreached) is NaN: not a
            # change, exactly as the scalar engine treats it.
            with np.errstate(invalid="ignore"):
                if not forward.any():
                    # No position reads an earlier position's write:
                    # the whole round is one wave.
                    old = values[frontier].copy()
                    new = algorithm.recalculate_batch(
                        frontier, cv, values, rows=(seg, nbr, nwt)
                    )
                    if pin_pos >= 0:
                        # The source keeps its pinned value: old ==
                        # new, so it never triggers (matching the
                        # scalar closure).
                        new[pin_pos] = values[pinned]
                    values[frontier] = new
                    changed = np.abs(old - new) > epsilon
                else:
                    anti = in_front & (writer > seg)
                    lvl = dependency_levels(
                        k, writer[forward], seg[forward], seg[anti], writer[anti]
                    )
                    order = np.argsort(lvl, kind="stable")
                    levels, pos_counts = np.unique(lvl, return_counts=True)
                    pos_ends = np.cumsum(pos_counts)
                    row_lvl = lvl[seg]
                    row_order = np.argsort(row_lvl, kind="stable")
                    row_ends = np.searchsorted(
                        row_lvl[row_order], levels, side="right"
                    )
                    changed = np.zeros(k, dtype=bool)
                    pa = ra = 0
                    for w in range(levels.size):
                        pb, rb = int(pos_ends[w]), int(row_ends[w])
                        # Stable sorts keep both slices ascending, so
                        # the wave's vertices stay in frontier order
                        # and each vertex's rows keep their edge order.
                        wave_pos = order[pa:pb]
                        rows = row_order[ra:rb]
                        ids = frontier[wave_pos]
                        old = values[ids].copy()
                        new = algorithm.recalculate_batch(
                            ids,
                            cv,
                            values,
                            rows=(
                                np.searchsorted(wave_pos, seg[rows]),
                                nbr[rows],
                                nwt[rows],
                            ),
                        )
                        if pin_pos >= 0 and lvl[pin_pos] == levels[w]:
                            new[
                                int(np.searchsorted(wave_pos, pin_pos))
                            ] = values[pinned]
                        values[ids] = new
                        changed[wave_pos] = np.abs(old - new) > epsilon
                        pa, ra = pb, rb
            triggered = frontier[changed]
            _, targets, _ = expand_frontier(cv.out_csr, triggered)
            next_frontier = np.unique(targets)
            run.iterations.append(
                IterationStats.make(
                    pull=frontier,
                    push=triggered,
                    pushes=int(next_frontier.size),
                    cas_ops=int(targets.size),
                )
            )
            frontier = next_frontier
    return run


def invalidate_frontier(
    view,
    values: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray,
    supports_batch: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    init_fn,
    pinned=(),
    compute_view: Optional[ComputeView] = None,
) -> np.ndarray:
    """Vectorized KickStarter-style invalidation (see ``incremental``).

    Flags every deletion target whose value the algorithm's vectorized
    derivation test ``supports_batch(src_values, weights, dst_values)``
    says could rest on the deleted edge, then takes the forward closure
    over the out-CSR with boolean masks.  Returns the tainted vertex
    ids ascending, after resetting their values to ``init_fn``.
    """
    cv = resolve_view(view, compute_view)
    n = cv.num_nodes
    pinned_mask = np.zeros(n, dtype=bool)
    for p in pinned:
        if 0 <= p < n:
            pinned_mask[p] = True
    tainted = np.zeros(n, dtype=bool)
    if len(src):
        eligible = (dst < n) & ~pinned_mask[np.minimum(dst, n - 1)] if n else dst < n
        if eligible.any():
            es, ed, ew = src[eligible], dst[eligible], weight[eligible]
            supported = supports_batch(values[es], ew, values[ed])
            tainted[ed[supported]] = True
    frontier = np.nonzero(tainted)[0]
    while frontier.size:
        _, targets, _ = expand_frontier(cv.out_csr, frontier)
        fresh = targets[~(tainted[targets] | pinned_mask[targets])]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        tainted[fresh] = True
        frontier = fresh
    ids = np.nonzero(tainted)[0]
    if ids.size:
        values[ids] = init_fn(ids)
    return ids


# ----------------------------------------------------------------------
# FS: push-style relaxation kernels (BFS, SSWP, SSSP passes)
# ----------------------------------------------------------------------


def relax_pass(
    cv: ComputeView,
    values: np.ndarray,
    frontier: np.ndarray,
    relax: Callable[[np.ndarray, np.ndarray], np.ndarray],
    optimize: str,
    edge_mask: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One sequential-order relaxation pass over ``frontier``.

    Expands the frontier's out-edges (optionally filtered by
    ``edge_mask`` over the weights -- delta-stepping's light/heavy
    split), schedules prefix waves so each relaxer's *base* value
    reflects exactly the in-round updates the sequential loop would
    have applied, and scatter-min/maxes the candidates into ``values``.

    Returns ``(candidates, targets, start_values)`` per row in
    sequential relaxation order; the final values are already applied
    (min/max scatter equals the sequential conditional update), and the
    row arrays let callers reconstruct order-dependent bookkeeping
    (first improvements, relaxation events) exactly.
    """
    seg, tgt, wts = expand_frontier(cv.out_csr, frontier)
    if edge_mask is not None and seg.size:
        keep = edge_mask(wts)
        seg, tgt, wts = seg[keep], tgt[keep], wts[keep]
    start_values = values[tgt]  # gathered before any in-pass write
    candidates = np.empty(seg.size, dtype=np.float64)
    dep_src, dep_dst = writer_reader_deps(frontier, seg, tgt, len(frontier))
    scatter = np.minimum if optimize == "min" else np.maximum
    for a, b in prefix_waves(len(frontier), dep_src, dep_dst):
        lo = int(np.searchsorted(seg, a, side="left"))
        hi = int(np.searchsorted(seg, b, side="left"))
        if lo == hi:
            continue
        base = values[frontier[seg[lo:hi]]]
        cand = relax(base, wts[lo:hi])
        candidates[lo:hi] = cand
        scatter.at(values, tgt[lo:hi], cand)
    return candidates, tgt, start_values


def first_improvements(
    candidates: np.ndarray,
    targets: np.ndarray,
    start_values: np.ndarray,
    better: Callable[[np.ndarray, np.ndarray], np.ndarray],
) -> np.ndarray:
    """Rows where a target first improves, in sequential order.

    In a monotone pass a target's value stays at its start value until
    the first candidate strictly better than it, so the legacy "append
    on first improvement" frontier is exactly: per target, the earliest
    row whose candidate beats the start value; rows sorted ascending
    reproduce the append order.
    """
    improving = np.nonzero(better(candidates, start_values))[0]
    if improving.size == 0:
        return _EMPTY_I64
    order = np.argsort(targets[improving], kind="stable")
    tgt_sorted = targets[improving][order]
    rows_sorted = improving[order]
    first = np.ones(tgt_sorted.size, dtype=bool)
    first[1:] = tgt_sorted[1:] != tgt_sorted[:-1]
    return np.sort(rows_sorted[first])


def relaxation_events(
    candidates: np.ndarray,
    targets: np.ndarray,
    start_values: np.ndarray,
    minimize: bool = True,
) -> np.ndarray:
    """Rows that would win a sequential compare-and-update, in order.

    The legacy loop counts a push whenever ``candidate`` beats the
    target's *current* value, which during a pass equals the best of
    its start value and all earlier candidates.  Computed exactly with
    a target-grouped exclusive running min/max: group rows by target
    (stable, preserving sequential order), seed each group with the
    start value, and scan with Hillis-Steele doubling (min/max are
    idempotent, so the shifted-inclusive scan is exact).
    """
    m = candidates.size
    if m == 0:
        return _EMPTY_I64
    order = np.argsort(targets, kind="stable")
    cand = candidates[order]
    tgt = targets[order]
    seed = start_values[order]
    new_group = np.ones(m, dtype=bool)
    new_group[1:] = tgt[1:] != tgt[:-1]
    group = np.cumsum(new_group) - 1
    combine = np.minimum if minimize else np.maximum
    identity = np.inf if minimize else -np.inf
    # Exclusive scan: each row sees the best of the group's earlier
    # candidates (identity at group starts), then fold in the seed.
    shifted = np.empty(m, dtype=np.float64)
    shifted[0] = identity
    shifted[1:] = np.where(new_group[1:], identity, cand[:-1])
    step = 1
    while step < m:
        same = group[step:] == group[:-step]
        shifted[step:] = combine(
            shifted[step:], np.where(same, shifted[:-step], identity)
        )
        step *= 2
    running = combine(seed, shifted)
    wins = cand < running if minimize else cand > running
    return np.sort(order[np.nonzero(wins)[0]])


def frontier_relaxation_kernel(
    view,
    values: np.ndarray,
    source: int,
    relax: Callable[[np.ndarray, np.ndarray], np.ndarray],
    better: Callable[[np.ndarray, np.ndarray], np.ndarray],
    optimize: str,
    algorithm: str,
    compute_view: Optional[ComputeView] = None,
    relax_op: Optional[int] = None,
) -> ComputeRun:
    """Vectorized :func:`repro.algorithms.base.frontier_relaxation`.

    ``relax_op`` is the compiled twin of ``relax`` (a
    ``ckernels.RELAX_*`` code); when given and the compute kernels
    built, each round is one sequential C pass -- relaxation, update,
    and first-improvement discovery fused, in the exact order the
    legacy per-edge loop runs.
    """
    cv = resolve_view(view, compute_view)
    run = ComputeRun(algorithm=algorithm, model="FS", values=values, source=source)
    run.linear_scans = 1
    if source >= cv.num_nodes:
        return run
    frontier = np.array([source], dtype=np.int64)
    ck = ckernels.get("relax_round") if relax_op is not None else None
    improved = np.zeros(cv.num_nodes, dtype=np.uint8) if ck is not None else None
    with TRACER.span("compute.kernel", args={"algorithm": algorithm, "model": "FS"}):
        while frontier.size:
            _observe_frontier(run, frontier.size)
            if ck is not None:
                next_frontier = ck.relax_round(
                    cv.out_csr, frontier, values, relax_op, optimize == "max", improved
                )
            else:
                candidates, targets, start_values = relax_pass(
                    cv, values, frontier, relax, optimize
                )
                _observe_expansion(run, candidates.size)
                rows = first_improvements(candidates, targets, start_values, better)
                next_frontier = targets[rows]
            run.iterations.append(
                IterationStats.make(
                    push=frontier,
                    pushes=int(next_frontier.size),
                    cas_ops=int(next_frontier.size),
                )
            )
            frontier = next_frontier
    return run

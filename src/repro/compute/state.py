"""Persistent per-algorithm state carried across batches.

The incremental model's *processing amortization* starts each compute
phase from the values the previous batch produced (Algorithm 1 lines
2-4), so the driver keeps one :class:`AlgorithmState` per (algorithm,
dataset) stream and hands it to every INC run.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import StructureError


class AlgorithmState:
    """Vertex values plus bookkeeping for new-vertex initialization.

    ``init_value`` produces the initial value of a vertex id (e.g.
    ``inf`` for distances, the id itself for CC labels).  Vertices that
    appear for the first time in a batch are initialized lazily via
    :meth:`ensure_initialized` -- the paper's "if v is a new vertex"
    branch.
    """

    def __init__(
        self,
        max_nodes: int,
        init_value: Callable[[np.ndarray], np.ndarray],
        name: str = "",
    ) -> None:
        if max_nodes < 1:
            raise StructureError(f"max_nodes must be >= 1, got {max_nodes}")
        self.max_nodes = max_nodes
        self.name = name
        self.init_fn = init_value
        ids = np.arange(max_nodes)
        self.values = np.asarray(init_value(ids), dtype=np.float64)
        self.initialized_up_to = 0

    def ensure_initialized(self, num_nodes: int) -> int:
        """Initialize values of vertices ``[initialized_up_to, num_nodes)``.

        Returns how many vertices were newly initialized.  Values of
        already-initialized vertices are left untouched (amortization).
        """
        if num_nodes <= self.initialized_up_to:
            return 0
        if num_nodes > self.max_nodes:
            raise StructureError(
                f"num_nodes {num_nodes} exceeds state capacity {self.max_nodes}"
            )
        ids = np.arange(self.initialized_up_to, num_nodes)
        self.values[ids] = self.init_fn(ids)
        fresh = num_nodes - self.initialized_up_to
        self.initialized_up_to = num_nodes
        return fresh

    def reinitialize(self, num_nodes: Optional[int] = None) -> None:
        """Reset all values (the FS model's per-batch reset)."""
        n = self.max_nodes if num_nodes is None else num_nodes
        ids = np.arange(n)
        self.values[ids] = self.init_fn(ids)
        self.initialized_up_to = n

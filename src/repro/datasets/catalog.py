"""The five evaluation datasets (Table II), as calibrated stand-ins.

Each spec records the paper's real statistics (for Tables II and IV)
alongside the parameters of its synthetic stand-in.  The stand-ins are
scaled down ~1000x in edge count but preserve the one structural
variable the paper's conclusions rest on: the hottest vertex's share
of the edge stream, and hence the per-batch degree tail.

=======  ==========  =========================  =======================
 Name     Direction   Paper signature            Stand-in target
=======  ==========  =========================  =======================
 LJ       directed    short-tailed social        top shares ~3e-4
 Orkut    undirected  short-tailed social        top shares ~3e-4
 RMAT     directed    short-tailed synthetic     R-MAT(0.55,...)
 Wiki     directed    heavy **in**-tail          top in-share 0.83%
 Talk     directed    heavy **out**-tail         top out-share 2.0%
=======  ==========  =========================  =======================
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.datasets.rmat import rmat_edge_chunks, rmat_edges, rmat_edges_mmap
from repro.datasets.synthetic import calibrate_alpha, power_law_edges
from repro.errors import DatasetError
from repro.graph.edge import EdgeBatch

#: Batch size of the scaled-down streams (paper: 500K).  Chosen so a
#: batch touches a comparable *fraction* of the graph as the paper's
#: 500K batches do, which is what the incremental model's benefit and
#: the update tail behavior scale with.
DEFAULT_BATCH_SIZE = 2500


@dataclass(frozen=True)
class PaperStats:
    """What the paper reports for the real dataset (Tables II & IV)."""

    vertices: int
    edges: int
    batch_count: int
    max_in_degree: int
    max_out_degree: int
    batch_max_in_degree: int
    batch_max_out_degree: int


@dataclass(frozen=True)
class DatasetSpec:
    """Generator recipe plus the paper's reference statistics."""

    name: str
    directed: bool
    num_nodes: int
    num_edges: int
    kind: str  # "power_law" or "rmat"
    top_out_share: float = 0.0
    top_in_share: float = 0.0
    rmat_scale: int = 0
    heavy_tailed: bool = False
    description: str = ""
    paper: Optional[PaperStats] = None

    def generate(self, seed: int = 0, size_factor: float = 1.0) -> EdgeBatch:
        """Generate the full edge stream for this dataset.

        ``size_factor`` scales both vertex and edge counts (used by the
        test suite to run miniature streams).
        """
        if size_factor <= 0:
            raise DatasetError(f"size_factor must be > 0, got {size_factor}")
        nodes = max(int(self.num_nodes * size_factor), 16)
        edges = max(int(self.num_edges * size_factor), 32)
        if self.kind == "rmat":
            scale = self.rmat_scale
            while size_factor < 1.0 and scale > 5 and (1 << (scale - 1)) >= nodes:
                scale -= 1
            return rmat_edges(scale=scale, num_edges=edges, seed=seed)
        alpha_out = calibrate_alpha(nodes, self.top_out_share)
        alpha_in = calibrate_alpha(nodes, self.top_in_share)
        return power_law_edges(
            num_nodes=nodes,
            num_edges=edges,
            alpha_out=alpha_out,
            alpha_in=alpha_in,
            seed=seed,
        )

    def max_nodes(self, size_factor: float = 1.0) -> int:
        """Vertex-id capacity needed by structures for this dataset."""
        if self.kind == "rmat":
            scale = self.rmat_scale
            nodes = max(int(self.num_nodes * size_factor), 16)
            while size_factor < 1.0 and scale > 5 and (1 << (scale - 1)) >= nodes:
                scale -= 1
            return 1 << scale
        return max(int(self.num_nodes * size_factor), 16)


@dataclass
class Dataset:
    """A generated stream ready to feed the driver."""

    spec: DatasetSpec
    edges: EdgeBatch
    max_nodes: int
    seed: int

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def directed(self) -> bool:
        return self.spec.directed

    def batch_count(self, batch_size: int = DEFAULT_BATCH_SIZE) -> int:
        return (len(self.edges) + batch_size - 1) // batch_size


#: Top-share targets derived from Table IV: a vertex's expected share
#: of a shuffled batch equals its share of the full stream, so
#: ``batch max degree / batch size`` is the calibration target.
DATASETS: Dict[str, DatasetSpec] = {
    "LJ": DatasetSpec(
        name="LJ",
        directed=True,
        num_nodes=24_000,
        num_edges=65_000,
        kind="power_law",
        top_out_share=147 / 500_000,
        top_in_share=106 / 500_000,
        heavy_tailed=False,
        description="LiveJournal online social network (SNAP soc-LiveJournal1)",
        paper=PaperStats(4_847_571, 68_993_773, 138, 13906, 20293, 106, 147),
    ),
    "Orkut": DatasetSpec(
        name="Orkut",
        directed=False,
        num_nodes=16_000,
        num_edges=80_000,
        kind="power_law",
        top_out_share=144 / 500_000,
        top_in_share=144 / 500_000,
        heavy_tailed=False,
        description="Orkut online social network (SNAP com-Orkut, undirected)",
        paper=PaperStats(3_072_441, 117_185_083, 235, 33313, 33313, 144, 144),
    ),
    "RMAT": DatasetSpec(
        name="RMAT",
        directed=True,
        num_nodes=65_536,
        num_edges=150_000,
        kind="rmat",
        rmat_scale=16,
        heavy_tailed=False,
        description="Synthetic R-MAT graph, a=0.55 b=0.15 c=0.15 d=0.25",
        paper=PaperStats(33_554_432, 500_000_000, 1000, 8016, 7997, 10, 10),
    ),
    "Wiki": DatasetSpec(
        name="Wiki",
        directed=True,
        num_nodes=9_000,
        num_edges=55_000,
        kind="power_law",
        top_out_share=70 / 500_000,
        top_in_share=4174 / 500_000,
        heavy_tailed=True,
        description="Wikipedia hyperlink graph (SNAP wiki-topcats); heavy in-tail",
        paper=PaperStats(1_791_489, 28_511_807, 58, 238040, 3907, 4174, 70),
    ),
    "Talk": DatasetSpec(
        name="Talk",
        directed=True,
        num_nodes=8_000,
        num_edges=45_000,
        kind="power_law",
        top_out_share=9957 / 500_000,
        top_in_share=330 / 500_000,
        heavy_tailed=True,
        description="Wikipedia communication network (SNAP wiki-Talk); heavy out-tail",
        paper=PaperStats(2_394_385, 5_021_410, 11, 3311, 100022, 330, 9957),
    ),
}

#: The paper's grouping used throughout Section VI.
SHORT_TAILED = ("LJ", "Orkut", "RMAT")
HEAVY_TAILED = ("Wiki", "Talk")


def dataset_names() -> Tuple[str, ...]:
    """All dataset names, in the paper's table order."""
    return tuple(DATASETS)


def load_dataset(name: str, seed: int = 0, size_factor: float = 1.0) -> Dataset:
    """Generate dataset ``name``'s edge stream.

    The stream is *not* shuffled here; the driver shuffles per
    repetition (Section IV-B), so different repetitions see different
    edge orders of the same graph.
    """
    spec = DATASETS.get(name)
    if spec is None:
        raise DatasetError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}"
        )
    edges = spec.generate(seed=seed, size_factor=size_factor)
    return Dataset(
        spec=spec,
        edges=edges,
        max_nodes=spec.max_nodes(size_factor),
        seed=seed,
    )


def make_rmat_dataset(
    scale: int,
    num_edges: int,
    seed: int = 0,
    mmap_dir: Optional[Union[str, Path]] = None,
    chunk_edges: Optional[int] = None,
) -> Dataset:
    """An ad-hoc R-MAT stream at arbitrary scale, ready for the driver.

    Unlike the calibrated Table II stand-ins, this is the raw generator
    -- the entry point for paper-scale runs (``repro scale`` and
    ``scripts/bench_scale.py``).  With ``mmap_dir`` the stream lives in
    a memory-mapped directory (written chunk-at-a-time when
    ``chunk_edges`` is set, and reused on a recipe match instead of
    regenerated); without it the stream is in RAM as before.
    """
    import numpy as np

    spec = DatasetSpec(
        name=f"RMAT-s{scale}",
        directed=True,
        num_nodes=1 << scale,
        num_edges=num_edges,
        kind="rmat",
        rmat_scale=scale,
        description=f"Ad-hoc R-MAT scale-{scale} stream ({num_edges} edges)",
    )
    if mmap_dir is not None:
        edges = rmat_edges_mmap(
            mmap_dir, scale, num_edges, seed=seed, chunk_edges=chunk_edges
        )
    elif chunk_edges is not None:
        # Same edge sequence as the chunked mmap stream, held in RAM.
        parts = list(
            rmat_edge_chunks(
                scale, num_edges, seed=seed, chunk_edges=chunk_edges
            )
        )
        edges = EdgeBatch(
            src=np.concatenate([p.src for p in parts]),
            dst=np.concatenate([p.dst for p in parts]),
            weight=np.concatenate([p.weight for p in parts]),
        )
    else:
        edges = rmat_edges(scale=scale, num_edges=num_edges, seed=seed)
    return Dataset(spec=spec, edges=edges, max_nodes=1 << scale, seed=seed)

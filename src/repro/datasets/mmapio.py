"""Memory-mapped edge-stream storage (the out-of-core data plane).

The paper streams up to 500M RMAT edges; holding such a stream as
in-RAM Python objects is what capped this reproduction ~1000x below
that.  This module stores an edge stream as three flat binary columns
on disk --

::

    <dir>/meta.json    {"version", "edges", "columns", "source"}
    <dir>/src.bin      edges x int64, little-endian
    <dir>/dst.bin      edges x int64
    <dir>/weight.bin   edges x float64

-- written append-only by :class:`EdgeStreamWriter` (so generators and
parsers never materialize more than one chunk) and re-opened zero-copy
by :func:`open_edge_mmap` as ``np.memmap``-backed
:class:`~repro.graph.edge.EdgeBatch` arrays.  The OS page cache is the
only "loader": touching a batch faults in exactly the pages the batch's
permutation indices cover.

The ``source`` record in ``meta.json`` is the generator recipe (e.g.
the RMAT parameters) -- the *content identity* of the stream.  It is
what lets mmap-backed and in-RAM runs share RunStore fingerprints:
transport is not part of the key, the recipe is.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro.errors import DatasetError
from repro.graph.edge import EdgeBatch
from repro.obs.metrics import METRICS

#: Version of the on-disk layout; bumped on incompatible change.
MMAP_LAYOUT_VERSION = 1

#: Metadata file name inside a stream directory.
META_FILE = "meta.json"

#: The three columns of a stream, with their fixed little-endian dtypes.
COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("src", "<i8"),
    ("dst", "<i8"),
    ("weight", "<f8"),
)


def _column_path(directory: Path, name: str) -> Path:
    return directory / f"{name}.bin"


class EdgeStreamWriter:
    """Append-only writer of one mmap edge-stream directory.

    Chunks are appended with :meth:`append` (each chunk is flushed
    straight to the column files, so peak memory is one chunk) and the
    stream is finalized with :meth:`close`, which writes ``meta.json``
    last -- a directory without a valid meta file is an unfinished
    write and is rejected by :func:`open_edge_mmap`.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        meta = self.directory / META_FILE
        if meta.exists():
            meta.unlink()
        self._handles = {
            name: open(_column_path(self.directory, name), "wb")
            for name, _ in COLUMNS
        }
        self._edges = 0
        self._closed = False

    @property
    def edges(self) -> int:
        """Edges appended so far."""
        return self._edges

    def append(
        self, src: np.ndarray, dst: np.ndarray, weight: np.ndarray
    ) -> None:
        """Append one chunk of parallel (src, dst, weight) arrays."""
        if self._closed:
            raise DatasetError("cannot append to a closed EdgeStreamWriter")
        if not (len(src) == len(dst) == len(weight)):
            raise DatasetError("edge stream chunk arrays must have equal length")
        for (name, dtype), column in zip(COLUMNS, (src, dst, weight)):
            np.ascontiguousarray(column, dtype=dtype).tofile(self._handles[name])
        self._edges += len(src)

    def append_batch(self, batch: EdgeBatch) -> None:
        """Append an :class:`EdgeBatch` chunk."""
        self.append(batch.src, batch.dst, batch.weight)

    def close(self, source: Optional[dict] = None) -> Path:
        """Flush, write ``meta.json``, and return the stream directory.

        ``source`` records the stream's content identity (generator
        recipe or input-file description); it is stored verbatim and
        surfaced by :func:`mmap_source` for fingerprinting.
        """
        if self._closed:
            return self.directory
        for handle in self._handles.values():
            handle.close()
        meta = {
            "version": MMAP_LAYOUT_VERSION,
            "edges": self._edges,
            "columns": {name: dtype for name, dtype in COLUMNS},
            "source": source,
        }
        (self.directory / META_FILE).write_text(
            json.dumps(meta, sort_keys=True, indent=1) + "\n"
        )
        self._closed = True
        return self.directory

    def abort(self) -> None:
        """Close handles without writing meta (leaves dir unfinished)."""
        if not self._closed:
            for handle in self._handles.values():
                handle.close()
            self._closed = True

    def __enter__(self) -> "EdgeStreamWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_edge_mmap(
    directory: Union[str, Path],
    batch_or_chunks: Union[EdgeBatch, Iterable[EdgeBatch]],
    source: Optional[dict] = None,
) -> Path:
    """Write a batch (or an iterable of chunk batches) as a stream dir."""
    chunks: Iterable[EdgeBatch]
    if isinstance(batch_or_chunks, EdgeBatch):
        chunks = (batch_or_chunks,)
    else:
        chunks = batch_or_chunks
    with EdgeStreamWriter(directory) as writer:
        for chunk in chunks:
            writer.append_batch(chunk)
        return writer.close(source=source)


def read_meta(directory: Union[str, Path]) -> dict:
    """The validated ``meta.json`` of a stream directory."""
    directory = Path(directory)
    meta_path = directory / META_FILE
    if not directory.exists():
        raise DatasetError(f"edge stream directory not found: {directory}")
    if not meta_path.exists():
        raise DatasetError(
            f"no {META_FILE} in {directory}: not an edge stream "
            f"(or an unfinished write)"
        )
    try:
        meta = json.loads(meta_path.read_text())
    except (ValueError, OSError) as error:
        raise DatasetError(f"corrupt {meta_path}: {error}") from error
    version = meta.get("version")
    if version != MMAP_LAYOUT_VERSION:
        raise DatasetError(
            f"unsupported edge stream layout version {version!r} in "
            f"{directory} (this build reads version {MMAP_LAYOUT_VERSION})"
        )
    edges = meta.get("edges")
    if not isinstance(edges, int) or edges < 0:
        raise DatasetError(f"invalid edge count {edges!r} in {meta_path}")
    return meta


def mmap_source(directory: Union[str, Path]) -> Optional[dict]:
    """The recorded content-identity recipe of a stream, if any."""
    return read_meta(directory).get("source")


def set_source(directory: Union[str, Path], source: Optional[dict]) -> None:
    """Replace the recorded recipe of a finished stream directory.

    Used by writers that post-process columns after the append pass
    (e.g. the SNAP relabel rewrite): the recipe is attached only once
    the content actually matches it, so an interrupted post-pass can
    never be mistaken for a finished stream on reuse.
    """
    directory = Path(directory)
    meta = read_meta(directory)
    meta["source"] = source
    (directory / META_FILE).write_text(
        json.dumps(meta, sort_keys=True, indent=1) + "\n"
    )


def open_edge_mmap(
    directory: Union[str, Path], mode: str = "r"
) -> EdgeBatch:
    """Open a stream directory as a zero-copy mmap-backed EdgeBatch.

    Column files are validated against the meta record: a missing or
    short (truncated) file raises :class:`~repro.errors.DatasetError`
    instead of returning silently-garbled arrays.  The mapped byte
    total is recorded in the ``stream_bytes_mapped`` metric.
    """
    directory = Path(directory)
    meta = read_meta(directory)
    edges = meta["edges"]
    arrays: Dict[str, np.ndarray] = {}
    total_bytes = 0
    for name, dtype in COLUMNS:
        recorded = meta["columns"].get(name)
        if recorded != dtype:
            raise DatasetError(
                f"column {name!r} in {directory} has dtype {recorded!r}, "
                f"expected {dtype!r}"
            )
        path = _column_path(directory, name)
        if not path.exists():
            raise DatasetError(f"missing column file {path}")
        expected = edges * np.dtype(dtype).itemsize
        actual = path.stat().st_size
        if actual < expected:
            raise DatasetError(
                f"truncated column file {path}: {actual} bytes for "
                f"{edges} edges (expected {expected})"
            )
        if edges == 0:
            arrays[name] = np.empty(0, dtype=dtype)
        else:
            arrays[name] = np.memmap(
                path, dtype=dtype, mode=mode, shape=(edges,)
            )
        total_bytes += expected
    if METRICS.enabled:
        METRICS.counter(
            "stream_bytes_mapped",
            "bytes of edge-stream columns memory-mapped",
        ).inc(total_bytes)
    return EdgeBatch(
        src=arrays["src"], dst=arrays["dst"], weight=arrays["weight"]
    )

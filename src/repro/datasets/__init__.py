"""Datasets of the paper's evaluation (Section IV-C, Table II).

The paper streams four SNAP graphs (LiveJournal, Orkut, wiki-topcats,
wiki-Talk) and one synthetic RMAT graph.  The SNAP files are not
redistributable here, so :mod:`repro.datasets.synthetic` generates
calibrated stand-ins reproducing each graph's *structural signature* --
the per-node edge shares that determine the per-batch degree
distribution, which is the variable all of the paper's data-structure
conclusions hinge on.  Real SNAP files can be loaded with
:mod:`repro.datasets.snap` instead.

For paper-scale streams, :mod:`repro.datasets.mmapio` stores edges as
memory-mapped columns written chunk-at-a-time by the chunked RMAT
generator and SNAP parser; :func:`make_rmat_dataset` is the front door
for ad-hoc scale runs.
"""

from repro.datasets.catalog import (
    DATASETS,
    Dataset,
    DatasetSpec,
    dataset_names,
    load_dataset,
    make_rmat_dataset,
)
from repro.datasets.mmapio import (
    EdgeStreamWriter,
    open_edge_mmap,
    write_edge_mmap,
)
from repro.datasets.rmat import rmat_edge_chunks, rmat_edges, rmat_edges_mmap
from repro.datasets.snap import load_snap_edges
from repro.datasets.synthetic import calibrate_alpha, power_law_edges

__all__ = [
    "DATASETS",
    "Dataset",
    "DatasetSpec",
    "EdgeStreamWriter",
    "calibrate_alpha",
    "dataset_names",
    "load_dataset",
    "load_snap_edges",
    "make_rmat_dataset",
    "open_edge_mmap",
    "power_law_edges",
    "rmat_edge_chunks",
    "rmat_edges",
    "rmat_edges_mmap",
    "write_edge_mmap",
]

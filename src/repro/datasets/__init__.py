"""Datasets of the paper's evaluation (Section IV-C, Table II).

The paper streams four SNAP graphs (LiveJournal, Orkut, wiki-topcats,
wiki-Talk) and one synthetic RMAT graph.  The SNAP files are not
redistributable here, so :mod:`repro.datasets.synthetic` generates
calibrated stand-ins reproducing each graph's *structural signature* --
the per-node edge shares that determine the per-batch degree
distribution, which is the variable all of the paper's data-structure
conclusions hinge on.  Real SNAP files can be loaded with
:mod:`repro.datasets.snap` instead.
"""

from repro.datasets.catalog import (
    DATASETS,
    Dataset,
    DatasetSpec,
    dataset_names,
    load_dataset,
)
from repro.datasets.rmat import rmat_edges
from repro.datasets.snap import load_snap_edges
from repro.datasets.synthetic import calibrate_alpha, power_law_edges

__all__ = [
    "DATASETS",
    "Dataset",
    "DatasetSpec",
    "calibrate_alpha",
    "dataset_names",
    "load_dataset",
    "load_snap_edges",
    "power_law_edges",
    "rmat_edges",
]

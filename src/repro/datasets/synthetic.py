"""Calibrated power-law graph generators.

The paper's data-structure findings are driven by one structural
variable: the share of a batch's edges concentrated on the hottest
vertex (Table IV; "short-tailed" vs "heavy-tailed").  Because batches
are random shuffles of the whole stream, a vertex's expected share of
any batch equals its share of the full edge list -- so a stand-in graph
only needs the right *per-node edge shares*.

:func:`power_law_edges` samples edge endpoints from truncated power
laws ``p_i ~ (i + 1) ** -alpha`` whose exponents are calibrated with
:func:`calibrate_alpha` so the hottest vertex's share matches the real
dataset's (e.g. wiki-Talk's hottest source emits 2.0% of all edges;
LiveJournal's hottest emits 0.03%).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.graph.edge import EdgeBatch


def _top_share(alpha: float, num_nodes: int) -> float:
    """Share of probability mass on rank-0 under ``(i+1)^-alpha``."""
    weights = np.power(np.arange(1, num_nodes + 1, dtype=np.float64), -alpha)
    return float(weights[0] / weights.sum())


def calibrate_alpha(
    num_nodes: int,
    target_top_share: float,
    tolerance: float = 1e-4,
    max_iterations: int = 100,
) -> float:
    """Power-law exponent giving the hottest node ``target_top_share``.

    Bisects ``alpha`` in [0, 4]; ``alpha = 0`` is uniform (top share
    ``1/num_nodes``), larger exponents concentrate mass on the head.
    """
    if num_nodes < 2:
        raise DatasetError("calibration needs at least 2 nodes")
    uniform = 1.0 / num_nodes
    if target_top_share <= uniform:
        return 0.0
    if target_top_share >= 1.0:
        raise DatasetError(f"target share {target_top_share} must be < 1")
    low, high = 0.0, 4.0
    if _top_share(high, num_nodes) < target_top_share:
        raise DatasetError(
            f"target share {target_top_share} unreachable with alpha <= {high}"
        )
    for _ in range(max_iterations):
        mid = (low + high) / 2.0
        share = _top_share(mid, num_nodes)
        if abs(share - target_top_share) <= tolerance * target_top_share:
            return mid
        if share < target_top_share:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def power_law_edges(
    num_nodes: int,
    num_edges: int,
    alpha_out: float,
    alpha_in: float,
    seed: int = 0,
    max_weight: int = 8,
) -> EdgeBatch:
    """Sample edges with power-law out- and in-degree distributions.

    Sources are drawn from ``(rank+1)^-alpha_out`` and destinations
    independently from ``(rank+1)^-alpha_in``.  The two rankings are
    decorrelated by a random vertex permutation per side, so the
    hottest source and hottest destination are (almost surely)
    different vertices -- as in wiki-Talk, where the top talker and the
    top talked-to differ.  Self-loops are re-drawn.
    """
    if num_nodes < 2:
        raise DatasetError(f"num_nodes must be >= 2, got {num_nodes}")
    if num_edges < 1:
        raise DatasetError(f"num_edges must be >= 1, got {num_edges}")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)

    def side_distribution(alpha: float):
        weights = np.power(ranks, -alpha)
        probabilities = weights / weights.sum()
        permutation = rng.permutation(num_nodes)
        return probabilities, permutation

    p_out, perm_out = side_distribution(alpha_out)
    p_in, perm_in = side_distribution(alpha_in)

    src = perm_out[rng.choice(num_nodes, size=num_edges, p=p_out)]
    dst = perm_in[rng.choice(num_nodes, size=num_edges, p=p_in)]
    # Re-draw self-loops (a handful at most).
    for _ in range(100):
        loops = src == dst
        count = int(loops.sum())
        if not count:
            break
        dst[loops] = perm_in[rng.choice(num_nodes, size=count, p=p_in)]
    else:
        dst[src == dst] = (dst[src == dst] + 1) % num_nodes
    weight = rng.integers(1, max_weight + 1, size=num_edges).astype(np.float64)
    return EdgeBatch(src=src.astype(np.int64), dst=dst.astype(np.int64), weight=weight)

"""R-MAT recursive-matrix graph generator (Chakrabarti et al., 2004).

The paper's RMAT dataset uses parameters a=0.55, b=0.15, c=0.15,
d=0.25 (Section IV-C).  Each edge picks one quadrant of the adjacency
matrix per bit of the vertex id, recursively:

    +-------+-------+
    |   a   |   b   |     a: (0, 0)   b: (0, 1)
    +-------+-------+
    |   c   |   d   |     c: (1, 0)   d: (1, 1)
    +-------+-------+

The implementation is fully vectorized: one random draw per (edge,
bit).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional, Union

import numpy as np

from repro.errors import DatasetError
from repro.graph.edge import EdgeBatch

#: The paper's R-MAT parameters.
PAPER_RMAT_PARAMS = (0.55, 0.15, 0.15, 0.25)


def rmat_edges(
    scale: int,
    num_edges: int,
    a: float = 0.55,
    b: float = 0.15,
    c: float = 0.15,
    d: float = 0.25,
    seed: int = 0,
    max_weight: int = 8,
    allow_self_loops: bool = False,
) -> EdgeBatch:
    """Generate ``num_edges`` R-MAT edges over ``2**scale`` vertices.

    Weights are uniform integers in ``[1, max_weight]``.  Self-loops
    are re-targeted to the next vertex unless ``allow_self_loops``.

    The quadrant probabilities are normalized by their sum: the paper's
    stated parameters (0.55, 0.15, 0.15, 0.25) add up to 1.10 -- an
    apparent typo -- so we follow the stated ratios rather than reject
    them.
    """
    if scale < 1 or scale > 30:
        raise DatasetError(f"scale must be in [1, 30], got {scale}")
    if num_edges < 1:
        raise DatasetError(f"num_edges must be >= 1, got {num_edges}")
    total = a + b + c + d
    if total <= 0 or min(a, b, c, d) < 0:
        raise DatasetError(f"RMAT parameters must be non-negative, got {(a, b, c, d)}")
    a, b, c, d = a / total, b / total, c / total, d / total
    rng = np.random.default_rng(seed)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    thresholds = np.cumsum([a, b, c])
    for _ in range(scale):
        draw = rng.random(num_edges)
        quadrant = np.searchsorted(thresholds, draw)
        src = (src << 1) | (quadrant >> 1)
        dst = (dst << 1) | (quadrant & 1)
    if not allow_self_loops:
        loops = src == dst
        dst[loops] = (dst[loops] + 1) % (1 << scale)
    weight = rng.integers(1, max_weight + 1, size=num_edges).astype(np.float64)
    return EdgeBatch(src=src, dst=dst, weight=weight)


def rmat_edge_chunks(
    scale: int,
    num_edges: int,
    a: float = 0.55,
    b: float = 0.15,
    c: float = 0.15,
    d: float = 0.25,
    seed: int = 0,
    max_weight: int = 8,
    allow_self_loops: bool = False,
    chunk_edges: int = 1_000_000,
) -> Iterator[EdgeBatch]:
    """Generate an R-MAT stream one bounded chunk at a time.

    Chunk ``i`` is drawn from ``default_rng([seed, i])``, so the stream
    is a deterministic function of ``(seed, chunk_edges)`` and any
    chunk can be regenerated independently.  Peak memory is one chunk
    regardless of ``num_edges``, which is what lets the data plane
    write paper-scale streams straight to mmap.

    Note a chunked stream is *not* the same edge sequence as one
    ``rmat_edges`` call with the same seed (the rng is consumed per
    chunk); ``chunk_edges`` is therefore part of the stream's identity
    and is recorded in the mmap recipe.
    """
    if chunk_edges < 1:
        raise DatasetError(f"chunk_edges must be >= 1, got {chunk_edges}")
    if num_edges < 1:
        raise DatasetError(f"num_edges must be >= 1, got {num_edges}")
    produced = 0
    index = 0
    while produced < num_edges:
        count = min(chunk_edges, num_edges - produced)
        yield rmat_edges(
            scale=scale,
            num_edges=count,
            a=a,
            b=b,
            c=c,
            d=d,
            seed=[seed, index],
            max_weight=max_weight,
            allow_self_loops=allow_self_loops,
        )
        produced += count
        index += 1


def rmat_recipe(
    scale: int,
    num_edges: int,
    a: float = 0.55,
    b: float = 0.15,
    c: float = 0.15,
    d: float = 0.25,
    seed: int = 0,
    max_weight: int = 8,
    allow_self_loops: bool = False,
    chunk_edges: Optional[int] = None,
) -> dict:
    """The content-identity recipe of an R-MAT stream (for mmap meta)."""
    return {
        "kind": "rmat",
        "scale": scale,
        "num_edges": num_edges,
        "params": [a, b, c, d],
        "seed": seed,
        "max_weight": max_weight,
        "allow_self_loops": allow_self_loops,
        "chunk_edges": chunk_edges,
    }


def rmat_edges_mmap(
    directory: Union[str, Path],
    scale: int,
    num_edges: int,
    a: float = 0.55,
    b: float = 0.15,
    c: float = 0.15,
    d: float = 0.25,
    seed: int = 0,
    max_weight: int = 8,
    allow_self_loops: bool = False,
    chunk_edges: Optional[int] = None,
) -> EdgeBatch:
    """Generate an R-MAT stream into ``directory`` and mmap it back.

    With ``chunk_edges=None`` the stream is exactly the legacy
    ``rmat_edges`` output (single rng draw); with a chunk size the
    stream is the :func:`rmat_edge_chunks` sequence and never exceeds
    one chunk of RAM while being written.  The generator recipe is
    recorded in the stream's ``meta.json``, so an existing directory
    with a matching recipe is reused without regeneration.
    """
    from repro.datasets import mmapio

    directory = Path(directory)
    recipe = rmat_recipe(
        scale, num_edges, a, b, c, d, seed, max_weight, allow_self_loops,
        chunk_edges,
    )
    if (directory / mmapio.META_FILE).exists():
        try:
            if mmapio.mmap_source(directory) == recipe:
                return mmapio.open_edge_mmap(directory)
        except DatasetError:
            pass  # unreadable/stale stream: regenerate below
    if chunk_edges is None:
        chunks = iter(
            [
                rmat_edges(
                    scale=scale,
                    num_edges=num_edges,
                    a=a,
                    b=b,
                    c=c,
                    d=d,
                    seed=seed,
                    max_weight=max_weight,
                    allow_self_loops=allow_self_loops,
                )
            ]
        )
    else:
        chunks = rmat_edge_chunks(
            scale=scale,
            num_edges=num_edges,
            a=a,
            b=b,
            c=c,
            d=d,
            seed=seed,
            max_weight=max_weight,
            allow_self_loops=allow_self_loops,
            chunk_edges=chunk_edges,
        )
    mmapio.write_edge_mmap(directory, chunks, source=recipe)
    return mmapio.open_edge_mmap(directory)

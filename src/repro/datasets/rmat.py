"""R-MAT recursive-matrix graph generator (Chakrabarti et al., 2004).

The paper's RMAT dataset uses parameters a=0.55, b=0.15, c=0.15,
d=0.25 (Section IV-C).  Each edge picks one quadrant of the adjacency
matrix per bit of the vertex id, recursively:

    +-------+-------+
    |   a   |   b   |     a: (0, 0)   b: (0, 1)
    +-------+-------+
    |   c   |   d   |     c: (1, 0)   d: (1, 1)
    +-------+-------+

The implementation is fully vectorized: one random draw per (edge,
bit).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.graph.edge import EdgeBatch

#: The paper's R-MAT parameters.
PAPER_RMAT_PARAMS = (0.55, 0.15, 0.15, 0.25)


def rmat_edges(
    scale: int,
    num_edges: int,
    a: float = 0.55,
    b: float = 0.15,
    c: float = 0.15,
    d: float = 0.25,
    seed: int = 0,
    max_weight: int = 8,
    allow_self_loops: bool = False,
) -> EdgeBatch:
    """Generate ``num_edges`` R-MAT edges over ``2**scale`` vertices.

    Weights are uniform integers in ``[1, max_weight]``.  Self-loops
    are re-targeted to the next vertex unless ``allow_self_loops``.

    The quadrant probabilities are normalized by their sum: the paper's
    stated parameters (0.55, 0.15, 0.15, 0.25) add up to 1.10 -- an
    apparent typo -- so we follow the stated ratios rather than reject
    them.
    """
    if scale < 1 or scale > 30:
        raise DatasetError(f"scale must be in [1, 30], got {scale}")
    if num_edges < 1:
        raise DatasetError(f"num_edges must be >= 1, got {num_edges}")
    total = a + b + c + d
    if total <= 0 or min(a, b, c, d) < 0:
        raise DatasetError(f"RMAT parameters must be non-negative, got {(a, b, c, d)}")
    a, b, c, d = a / total, b / total, c / total, d / total
    rng = np.random.default_rng(seed)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    thresholds = np.cumsum([a, b, c])
    for _ in range(scale):
        draw = rng.random(num_edges)
        quadrant = np.searchsorted(thresholds, draw)
        src = (src << 1) | (quadrant >> 1)
        dst = (dst << 1) | (quadrant & 1)
    if not allow_self_loops:
        loops = src == dst
        dst[loops] = (dst[loops] + 1) % (1 << scale)
    weight = rng.integers(1, max_weight + 1, size=num_edges).astype(np.float64)
    return EdgeBatch(src=src, dst=dst, weight=weight)

"""Loader for SNAP edge-list files.

The paper's four real datasets come from the SNAP collection
(https://snap.stanford.edu/data): whitespace-separated ``src dst``
pairs, ``#``-prefixed comment lines.  Users who have the real files can
stream them through the benchmark instead of the synthetic stand-ins.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import DatasetError
from repro.graph.edge import EdgeBatch


def load_snap_edges(
    path: Union[str, Path],
    max_weight: int = 8,
    weight_seed: int = 0,
    relabel: bool = True,
    limit: Optional[int] = None,
) -> EdgeBatch:
    """Parse a SNAP edge list (optionally gzipped) into an EdgeBatch.

    SNAP graphs are unweighted; weights are drawn uniformly from
    ``[1, max_weight]`` (deterministically from ``weight_seed``) so the
    weighted algorithms (SSSP, SSWP) have something to chew on.  With
    ``relabel``, vertex ids are compacted to ``0..V-1`` in first-seen
    order.  ``limit`` truncates to the first N edges.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"SNAP file not found: {path}")
    opener = gzip.open if path.suffix == ".gz" else open
    srcs, dsts = [], []
    with opener(path, "rt") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise DatasetError(f"malformed SNAP line: {line!r}")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if limit is not None and len(srcs) >= limit:
                break
    if not srcs:
        raise DatasetError(f"no edges found in {path}")
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    if relabel:
        ids, inverse = np.unique(np.concatenate([src, dst]), return_inverse=True)
        src = inverse[: len(src)].astype(np.int64)
        dst = inverse[len(src):].astype(np.int64)
    rng = np.random.default_rng(weight_seed)
    weight = rng.integers(1, max_weight + 1, size=len(src)).astype(np.float64)
    return EdgeBatch(src=src, dst=dst, weight=weight)

"""Loader for SNAP edge-list files.

The paper's four real datasets come from the SNAP collection
(https://snap.stanford.edu/data): whitespace-separated ``src dst``
pairs, ``#``-prefixed comment lines.  Users who have the real files can
stream them through the benchmark instead of the synthetic stand-ins.

The parser works in bounded chunks that land directly in preallocated
numpy buffers -- no intermediate Python lists -- and can spill the
parsed stream to a memory-mapped directory (``mmap_dir``) so a
paper-scale file never materializes in RAM.  Relabeling in the mmap
path is two-pass: chunk-wise vertex-id collection, then a chunk-wise
in-place rewrite of the mapped columns.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from repro.errors import DatasetError
from repro.graph.edge import EdgeBatch

#: Chunk size (edges) used when spilling to mmap without an explicit
#: ``chunk_edges``; also the growth unit of the in-RAM parse buffers.
DEFAULT_SNAP_CHUNK = 1 << 20


def _iter_snap_chunks(
    path: Path, chunk_edges: int, limit: Optional[int]
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(src, dst)`` int64 chunk arrays parsed from ``path``.

    Each yielded pair is freshly allocated (safe to keep); the parse
    itself fills one reused preallocated buffer per column, so peak
    memory is one chunk no matter the file size.
    """
    opener = gzip.open if path.suffix == ".gz" else open
    src_buf = np.empty(chunk_edges, dtype=np.int64)
    dst_buf = np.empty(chunk_edges, dtype=np.int64)
    fill = 0
    total = 0
    with opener(path, "rt") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise DatasetError(f"malformed SNAP line: {line!r}")
            try:
                src_buf[fill] = int(parts[0])
                dst_buf[fill] = int(parts[1])
            except ValueError as error:
                raise DatasetError(
                    f"malformed SNAP line: {line!r} ({error})"
                ) from error
            fill += 1
            total += 1
            if fill == chunk_edges:
                yield src_buf[:fill].copy(), dst_buf[:fill].copy()
                fill = 0
            if limit is not None and total >= limit:
                break
    if fill:
        yield src_buf[:fill].copy(), dst_buf[:fill].copy()


def snap_recipe(
    path: Path,
    max_weight: int,
    weight_seed: int,
    relabel: bool,
    limit: Optional[int],
    chunk_edges: Optional[int],
) -> dict:
    """Content-identity recipe of a parsed SNAP stream (for mmap meta)."""
    stat = path.stat()
    return {
        "kind": "snap",
        "path": str(path),
        "bytes": stat.st_size,
        "max_weight": max_weight,
        "weight_seed": weight_seed,
        "relabel": relabel,
        "limit": limit,
        "chunk_edges": chunk_edges,
    }


def _chunk_weights(
    weight_seed: int, chunk_index: int, count: int, max_weight: int
) -> np.ndarray:
    rng = np.random.default_rng([weight_seed, chunk_index])
    return rng.integers(1, max_weight + 1, size=count).astype(np.float64)


def load_snap_edges(
    path: Union[str, Path],
    max_weight: int = 8,
    weight_seed: int = 0,
    relabel: bool = True,
    limit: Optional[int] = None,
    chunk_edges: Optional[int] = None,
    mmap_dir: Optional[Union[str, Path]] = None,
) -> EdgeBatch:
    """Parse a SNAP edge list (optionally gzipped) into an EdgeBatch.

    SNAP graphs are unweighted; weights are drawn uniformly from
    ``[1, max_weight]`` (deterministically from ``weight_seed``) so the
    weighted algorithms (SSSP, SSWP) have something to chew on.  With
    ``relabel``, vertex ids are compacted to ``0..V-1`` (sorted order).
    ``limit`` truncates to the first N edges.

    With ``mmap_dir`` the parsed stream is written to a memory-mapped
    directory and the returned batch is a zero-copy view of it; a
    directory already holding a stream with the same recipe (file,
    size, and parse options) is reused without re-parsing.  With
    ``chunk_edges`` the parse holds at most one chunk of edges in RAM;
    note chunking changes which rng draw each edge's weight comes from
    (per-chunk streams ``[weight_seed, chunk]`` instead of one stream),
    so ``chunk_edges`` is part of the stream's identity.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"SNAP file not found: {path}")
    if chunk_edges is not None and chunk_edges < 1:
        raise DatasetError(f"chunk_edges must be >= 1, got {chunk_edges}")
    if mmap_dir is not None:
        return _load_snap_mmap(
            path, max_weight, weight_seed, relabel, limit, chunk_edges,
            Path(mmap_dir),
        )

    parse_chunk = chunk_edges if chunk_edges is not None else DEFAULT_SNAP_CHUNK
    src_parts, dst_parts = [], []
    for s, d in _iter_snap_chunks(path, parse_chunk, limit):
        src_parts.append(s)
        dst_parts.append(d)
    if not src_parts:
        raise DatasetError(f"no edges found in {path}")
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    del src_parts, dst_parts
    if relabel:
        ids, inverse = np.unique(np.concatenate([src, dst]), return_inverse=True)
        src = inverse[: len(src)].astype(np.int64)
        dst = inverse[len(src):].astype(np.int64)
    if chunk_edges is None:
        rng = np.random.default_rng(weight_seed)
        weight = rng.integers(1, max_weight + 1, size=len(src)).astype(np.float64)
    else:
        parts = []
        for index, start in enumerate(range(0, len(src), chunk_edges)):
            count = min(chunk_edges, len(src) - start)
            parts.append(_chunk_weights(weight_seed, index, count, max_weight))
        weight = np.concatenate(parts)
    return EdgeBatch(src=src, dst=dst, weight=weight)


def _load_snap_mmap(
    path: Path,
    max_weight: int,
    weight_seed: int,
    relabel: bool,
    limit: Optional[int],
    chunk_edges: Optional[int],
    mmap_dir: Path,
) -> EdgeBatch:
    """Parse ``path`` into (or reuse from) a mmap stream directory."""
    from repro.datasets import mmapio

    recipe = snap_recipe(path, max_weight, weight_seed, relabel, limit,
                         chunk_edges)
    if (mmap_dir / mmapio.META_FILE).exists():
        try:
            if mmapio.mmap_source(mmap_dir) == recipe:
                return mmapio.open_edge_mmap(mmap_dir)
        except DatasetError:
            pass  # unreadable/stale stream: re-parse below

    parse_chunk = chunk_edges if chunk_edges is not None else DEFAULT_SNAP_CHUNK
    ids = np.empty(0, dtype=np.int64)
    with mmapio.EdgeStreamWriter(mmap_dir) as writer:
        for index, (src, dst) in enumerate(
            _iter_snap_chunks(path, parse_chunk, limit)
        ):
            if chunk_edges is None:
                # Weights come after the parse in one legacy-identical
                # draw; append a placeholder column for now.
                weight = np.zeros(len(src), dtype=np.float64)
            else:
                weight = _chunk_weights(weight_seed, index, len(src), max_weight)
            writer.append(src, dst, weight)
            if relabel:
                ids = np.union1d(ids, np.union1d(src, dst))
        if writer.edges == 0:
            writer.abort()
            raise DatasetError(f"no edges found in {path}")
        total = writer.edges
        # Meta goes out without the recipe; it is attached only after
        # the post-pass below completes, making reuse crash-safe.
        writer.close(source=None)

    batch = mmapio.open_edge_mmap(mmap_dir, mode="r+")
    if relabel:
        # np.unique's inverse is the searchsorted rank in the sorted id
        # table, so a chunk-wise rewrite reproduces the in-RAM relabel
        # bit for bit.
        for start in range(0, total, parse_chunk):
            stop = min(start + parse_chunk, total)
            batch.src[start:stop] = np.searchsorted(ids, batch.src[start:stop])
            batch.dst[start:stop] = np.searchsorted(ids, batch.dst[start:stop])
    if chunk_edges is None:
        rng = np.random.default_rng(weight_seed)
        for start in range(0, total, parse_chunk):
            stop = min(start + parse_chunk, total)
            batch.weight[start:stop] = rng.integers(
                1, max_weight + 1, size=stop - start
            ).astype(np.float64)
    for column in (batch.src, batch.dst, batch.weight):
        if isinstance(column, np.memmap):
            column.flush()
    mmapio.set_source(mmap_dir, recipe)
    return mmapio.open_edge_mmap(mmap_dir)

"""Content-addressed on-disk cache of experiment results.

A :class:`RunStore` maps a fingerprint (see
:mod:`repro.engine.fingerprint`) to one ``.npz`` file holding the
result's columnar arrays plus a JSON metadata record.  Because the
simulation is deterministic, a hit is bit-identical to re-running the
sweep, so repeated artifact generation (CLI invocations, benchmark
sessions, conformance checks) skips the expensive simulation entirely.

Writes are atomic (temp file + ``os.replace``) so a store shared
between parallel workers or interrupted runs never holds a torn entry.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.obs.metrics import METRICS
from repro.streaming.results import StreamResult

#: Environment variable naming a default cache directory; honored by
#: the CLI and the benchmark harness when no explicit path is given.
CACHE_DIR_ENV = "SAGA_BENCH_CACHE_DIR"


class RunStore:
    """A directory of fingerprint-keyed ``.npz`` result files."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunStore({str(self.root)!r}, hits={self.hits}, misses={self.misses})"

    def path(self, key: str) -> Path:
        """Path of the entry for ``key`` (whether or not it exists)."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ConfigError(f"malformed cache key {key!r}")
        return self.root / f"{key}.npz"

    def contains(self, key: str) -> bool:
        return self.path(key).exists()

    # -- generic array payloads ----------------------------------------

    def save_arrays(
        self, key: str, meta: dict, arrays: Dict[str, np.ndarray]
    ) -> Path:
        """Atomically persist one ``meta + arrays`` payload under ``key``."""
        if "__meta__" in arrays:
            raise ConfigError("'__meta__' is a reserved array name")
        final = self.path(key)
        tmp = final.with_name(f".{key}.{os.getpid()}.tmp.npz")
        with open(tmp, "wb") as handle:
            np.savez_compressed(
                handle,
                __meta__=np.asarray(json.dumps(meta, sort_keys=True)),
                **arrays,
            )
        os.replace(tmp, final)
        if METRICS.enabled:
            METRICS.counter(
                "engine_cache_writes_total", "RunStore entries written"
            ).inc()
        return final

    def load_arrays(
        self, key: str
    ) -> Optional[Tuple[dict, Dict[str, np.ndarray]]]:
        """The payload stored under ``key``, or None on a miss.

        Unreadable entries (truncated file, foreign format) count as
        misses rather than raising: the cache must never be able to
        make a run fail that would succeed without it.
        """
        path = self.path(key)
        if not path.exists():
            self._count_miss()
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["__meta__"]))
                arrays = {
                    name: data[name] for name in data.files if name != "__meta__"
                }
        except Exception:
            self._count_miss()
            return None
        self.hits += 1
        if METRICS.enabled:
            METRICS.counter(
                "engine_cache_hits_total", "RunStore lookups served from disk"
            ).inc()
        return meta, arrays

    def _count_miss(self) -> None:
        self.misses += 1
        if METRICS.enabled:
            METRICS.counter(
                "engine_cache_misses_total", "RunStore lookups that simulated"
            ).inc()

    # -- stream results -------------------------------------------------

    def save_stream_result(self, key: str, result: StreamResult) -> Path:
        meta, arrays = result.to_payload()
        return self.save_arrays(key, meta, arrays)

    def load_stream_result(self, key: str) -> Optional[StreamResult]:
        payload = self.load_arrays(key)
        if payload is None:
            return None
        meta, arrays = payload
        try:
            return StreamResult.from_payload(meta, arrays)
        except Exception:
            # Entry from an incompatible schema: treat as a miss.
            self.hits -= 1
            if METRICS.enabled:
                METRICS.counter("engine_cache_hits_total").inc(-1)
            self._count_miss()
            return None


def default_store(cache_dir=None, no_cache: bool = False) -> Optional[RunStore]:
    """Resolve the store from an explicit path or :data:`CACHE_DIR_ENV`.

    Returns None (caching disabled) when ``no_cache`` is set or neither
    an explicit directory nor the environment variable provides one.
    """
    if no_cache:
        return None
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV) or None
    return RunStore(cache_dir) if cache_dir else None

"""Stable content fingerprints for experiment runs.

Every cacheable unit of work (a streaming sweep over one dataset, one
hardware-profiling cell) is keyed by the SHA-256 of a canonical JSON
description of *everything that determines its output*: the dataset
generator spec and seed, the :class:`~repro.streaming.driver.StreamConfig`
(including its :class:`~repro.sim.cost_model.CostModel` and
:class:`~repro.sim.machine.MachineConfig`), and the result schema
version.  Because the simulation is deterministic (DESIGN.md decision
#2), equal fingerprints imply bit-identical results — which is what
lets the :class:`~repro.engine.store.RunStore` substitute a cached
result for a fresh run.

Changing any constant of the cost model, any field of the machine, the
batch size, the shuffle seed, or the schema version changes the
fingerprint and therefore misses the cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping

from repro.datasets.catalog import DATASETS
from repro.errors import ConfigError
from repro.streaming.driver import StreamConfig
from repro.streaming.results import RESULT_SCHEMA_VERSION

#: Version of the *keying* scheme itself.  Bump when the meaning of a
#: fingerprint changes (e.g. a new field starts to matter); combined
#: with :data:`RESULT_SCHEMA_VERSION` so either bump invalidates.
#: v2: columnar task kernels became the default emission/scheduling
#: path.  Results are bit-identical to v1 by design, but the guarantee
#: is now enforced by a different code path, so cached v1 entries are
#: deliberately retired rather than trusted across the rewrite.
KEY_SCHEMA_VERSION = 2


def canonical(value: Any) -> Any:
    """Reduce ``value`` to JSON-serializable primitives, recursively.

    Dataclasses become ``{class-name, field dict}`` so that two
    different config types with coincidentally equal fields cannot
    collide.  Callables are rejected: they have no stable content
    identity, so anything carrying one must be described explicitly
    (see :func:`describe_stream_config`, which drops ``progress``).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                f.name: canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, Mapping):
        return {str(k): canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if callable(value):
        raise ConfigError(
            f"cannot fingerprint callable {value!r}; describe it explicitly"
        )
    raise ConfigError(f"cannot fingerprint value of type {type(value).__name__}")


def fingerprint(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    body = json.dumps(
        canonical(dict(payload)), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def describe_stream_config(config: StreamConfig) -> dict:
    """Content description of a :class:`StreamConfig`.

    The ``progress`` callback is presentation, not content: it cannot
    change any simulated number, so it is excluded from the key.

    Transport (in-RAM vs mmap vs shared memory) never appears here:
    the edge content is identical either way, so all three share cache
    entries.  ``shards`` does change update latencies, so it is keyed
    -- but only when not 1, keeping every pre-sharding fingerprint
    (and its cached results) stable.
    """
    description = {
        "batch_size": config.batch_size,
        "structures": list(config.structures),
        "algorithms": list(config.algorithms),
        "models": list(config.models),
        "repetitions": config.repetitions,
        "machine": canonical(config.machine),
        "threads": config.threads,
        "cost_model": canonical(config.cost_model),
        "shuffle_seed": config.shuffle_seed,
        "source": config.source,
        "churn_fraction": config.churn_fraction,
    }
    if config.shards != 1:
        description["shards"] = config.shards
    # Adaptive-mode fields follow the shards rule: keyed only when set,
    # so every pre-autotuner fingerprint stays stable.  (The CLI runs
    # adaptive streams uncached -- the online tuner is stateful -- but
    # the key must still be well-defined for any caller that caches.)
    if config.batch_schedule is not None:
        description["batch_schedule"] = list(config.batch_schedule)
    if config.candidate_structures is not None:
        description["candidate_structures"] = list(config.candidate_structures)
    if config.candidate_models is not None:
        description["candidate_models"] = list(config.candidate_models)
    if config.autotune is not None:
        description["autotune"] = canonical(config.autotune)
    return description


def describe_dataset(name: str, seed: int, size_factor: float) -> dict:
    """Content description of one generated dataset stream."""
    spec = DATASETS.get(name)
    if spec is None:
        raise ConfigError(f"unknown dataset {name!r}")
    return {
        "spec": canonical(spec),
        "seed": seed,
        "size_factor": size_factor,
    }


def stream_run_key(
    dataset: str, config: StreamConfig, seed: int = 0, size_factor: float = 1.0
) -> str:
    """Cache key of one dataset's streaming sweep under ``config``."""
    return fingerprint(
        {
            "kind": "stream-result",
            "key_schema": KEY_SCHEMA_VERSION,
            "result_schema": RESULT_SCHEMA_VERSION,
            "dataset": describe_dataset(dataset, seed, size_factor),
            "config": describe_stream_config(config),
        }
    )

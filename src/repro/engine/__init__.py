"""The experiment engine shared by every artifact harness.

- :mod:`repro.engine.fingerprint` -- stable content keys over (dataset
  spec, stream config, cost model, machine, schema version);
- :mod:`repro.engine.store` -- the content-addressed ``.npz``
  :class:`RunStore` cache;
- :mod:`repro.engine.sweep` -- cached, optionally process-parallel
  streaming sweeps with deterministic merge order.
"""

from repro.engine.fingerprint import (
    KEY_SCHEMA_VERSION,
    describe_dataset,
    describe_stream_config,
    fingerprint,
    stream_run_key,
)
from repro.engine.store import CACHE_DIR_ENV, RunStore, default_store
from repro.engine.sweep import StreamRequest, run_many, run_stream

__all__ = [
    "CACHE_DIR_ENV",
    "KEY_SCHEMA_VERSION",
    "RunStore",
    "StreamRequest",
    "default_store",
    "describe_dataset",
    "describe_stream_config",
    "fingerprint",
    "run_many",
    "run_stream",
    "stream_run_key",
]

"""The shared experiment engine: cached, parallel streaming sweeps.

Every harness that needs a :class:`~repro.streaming.results.StreamResult`
(the software profile, the batch-size sensitivity study, the CLI's
``stream`` subcommand, the benchmark fixtures) goes through
:func:`run_stream` / :func:`run_many` instead of driving a private
:class:`~repro.streaming.driver.StreamDriver` loop:

1. each request is fingerprinted and looked up in the
   :class:`~repro.engine.store.RunStore` (when one is supplied) —
   a hit returns the cached result without simulating anything;
2. misses are expanded into independent **(dataset × repetition)
   cells** — a repetition's shuffle seed is ``base + stride * rep``,
   so a cell reproduces exactly the batches the monolithic loop would
   have produced;
3. cells execute serially or fan out over a
   :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs`` > 1),
   and are merged back **in request/repetition order**, so the result
   is bit-identical regardless of worker scheduling;
4. fresh results are written back to the store.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.catalog import Dataset, load_dataset
from repro.engine.fingerprint import stream_run_key
from repro.engine.store import RunStore
from repro.errors import ConfigError
from repro.obs.features import FEATURES
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.streaming import shm
from repro.streaming.driver import REP_SEED_STRIDE, StreamConfig, make_driver
from repro.streaming.results import StreamResult


@dataclass(frozen=True)
class StreamRequest:
    """One dataset's sweep under one configuration."""

    dataset: str
    config: StreamConfig
    seed: int = 0
    size_factor: float = 1.0

    @property
    def key(self) -> str:
        return stream_run_key(
            self.dataset, self.config, seed=self.seed, size_factor=self.size_factor
        )


def _cell_config(config: StreamConfig, rep: int, keep_progress: bool) -> StreamConfig:
    """The single-repetition config equivalent to repetition ``rep``."""
    return replace(
        config,
        repetitions=1,
        shuffle_seed=config.shuffle_seed + REP_SEED_STRIDE * rep,
        progress=config.progress if keep_progress else None,
    )


def _obs_flags() -> Optional[dict]:
    """The parent's observability configuration, for worker re-creation.

    None when observability is off; pool workers then skip the
    reset/enable dance entirely and return no payload.
    """
    if not (TRACER.enabled or METRICS.enabled or FEATURES.enabled):
        return None
    return {
        "trace": TRACER.enabled,
        "keep_events": TRACER.keep_events,
        "sim_timeline": TRACER.sim_timeline,
        "metrics": METRICS.enabled,
        "features": FEATURES.enabled,
    }


def _run_stream_cell(
    payload: Tuple[str, int, float, StreamConfig, Optional[dict], Optional[tuple]]
) -> Tuple[StreamResult, float, Optional[dict]]:
    """Execute one (dataset × repetition) cell; must stay picklable.

    Returns ``(result, wall_seconds, obs_payload)``.  When ``obs`` is
    set (parallel workers under an observability-enabled parent), the
    worker resets its fork-inherited global tracer/registry -- they
    carry the parent's already-collected data -- re-enables them per the
    parent's flags, and ships its own collection back as a payload for
    the parent to merge.  Serial cells (``obs`` None) record directly
    into the parent's live globals.

    ``source`` selects the edge transport: ``None`` regenerates the
    dataset from the catalog (serial path, or shm disabled);
    ``("shm", handle, spec, max_nodes)`` attaches the parent's
    published shared-memory stream zero-copy.  Either way the edges are
    bit-identical, so the transport never shows up in results or
    fingerprints.
    """
    dataset_name, seed, size_factor, config, obs, source = payload
    if obs is not None:
        TRACER.disable()
        TRACER.reset()
        METRICS.reset()
        FEATURES.reset()
        if obs["trace"]:
            TRACER.enable(
                keep_events=obs["keep_events"], sim_timeline=obs["sim_timeline"]
            )
        METRICS.enabled = bool(obs["metrics"])
        FEATURES.enabled = bool(obs.get("features", False))
    started = time.perf_counter()
    if source is not None and source[0] == "shm":
        _, handle, spec, max_nodes = source
        dataset = Dataset(
            spec=spec, edges=shm.attach(handle), max_nodes=max_nodes, seed=seed
        )
    else:
        dataset = load_dataset(dataset_name, seed=seed, size_factor=size_factor)
    result = make_driver(config).run(dataset)
    wall = time.perf_counter() - started
    obs_payload = None
    if obs is not None and (obs["trace"] or obs["metrics"] or obs.get("features")):
        obs_payload = {
            "trace": TRACER.to_payload(),
            "metrics": METRICS.to_payload(),
            "features": FEATURES.to_payload(),
        }
    return result, wall, obs_payload


def run_many(
    requests: Sequence[StreamRequest],
    store: Optional[RunStore] = None,
    jobs: Optional[int] = None,
) -> List[StreamResult]:
    """Resolve every request, in order, through cache then execution."""
    if jobs is not None and jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    results: List[Optional[StreamResult]] = [None] * len(requests)
    keys: List[Optional[str]] = [None] * len(requests)
    cells: List[Tuple[int, int, Tuple[str, int, float, StreamConfig]]] = []
    parallel = bool(jobs and jobs > 1)
    for index, request in enumerate(requests):
        if store is not None:
            keys[index] = request.key
            cached = store.load_stream_result(keys[index])
            if cached is not None:
                results[index] = cached
                if METRICS.enabled:
                    METRICS.counter(
                        "sweep_cells_total",
                        "sweep requests/cells by resolution",
                        status="cached",
                    ).inc()
                continue
        for rep in range(request.config.repetitions):
            cells.append(
                (
                    index,
                    rep,
                    (
                        request.dataset,
                        request.seed,
                        request.size_factor,
                        _cell_config(request.config, rep, keep_progress=not parallel),
                    ),
                )
            )
    if cells:
        published: Dict[Tuple[str, int, float], tuple] = {}
        try:
            if parallel and len(cells) > 1:
                # Workers re-create the parent's obs configuration locally
                # and return their collection as a payload; anything that
                # runs in-process instead gets obs=None and records into
                # the parent's live tracer/registry directly.
                obs = _obs_flags()
                use_shm = shm.shm_enabled()
                payloads = []
                for _, _, payload in cells:
                    dataset_name, seed, size_factor, _config = payload
                    source = None
                    if use_shm:
                        # One published segment per unique stream; every
                        # repetition cell of it attaches instead of
                        # regenerating.
                        stream_key = (dataset_name, seed, size_factor)
                        entry = published.get(stream_key)
                        if entry is None:
                            dataset = load_dataset(
                                dataset_name, seed=seed, size_factor=size_factor
                            )
                            entry = (
                                shm.SharedEdgeStream.publish(dataset.edges),
                                dataset.spec,
                                dataset.max_nodes,
                            )
                            published[stream_key] = entry
                        stream, spec, max_nodes = entry
                        source = ("shm", stream.handle, spec, max_nodes)
                    payloads.append(payload + (obs, source))
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    cell_results = list(pool.map(_run_stream_cell, payloads))
            else:
                cell_results = [
                    _run_stream_cell(payload + (None, None))
                    for _, _, payload in cells
                ]
        finally:
            # The parent owns every published segment: tear them down
            # after the pool is gone, whatever the workers did.
            for stream, _, _ in published.values():
                stream.close()
                stream.unlink()
        by_request: Dict[int, List[StreamResult]] = {}
        for (index, rep, payload), (result, wall, obs_payload) in zip(
            cells, cell_results
        ):
            by_request.setdefault(index, []).append(result)
            if obs_payload is not None:
                METRICS.merge_payload(obs_payload["metrics"])
                TRACER.absorb(
                    obs_payload["trace"],
                    origin=f"{payload[0]}-r{rep}" if rep else None,
                )
                if "features" in obs_payload:
                    FEATURES.absorb(obs_payload["features"])
            if METRICS.enabled:
                METRICS.histogram(
                    "sweep_cell_seconds",
                    "wall time per (dataset x repetition) cell",
                    dataset=payload[0],
                ).observe(wall)
                METRICS.counter(
                    "sweep_cells_total",
                    "sweep requests/cells by resolution",
                    status="computed",
                ).inc()
            progress = requests[index].config.progress
            if parallel and progress is not None:
                progress(
                    f"cell {payload[0]} rep {rep}: {wall:.2f}s wall"
                )
        for index, parts in by_request.items():
            merged = StreamResult.merge(parts)
            results[index] = merged
            if store is not None:
                store.save_stream_result(keys[index], merged)
    missing = [i for i, result in enumerate(results) if result is None]
    if missing:
        raise ConfigError(f"requests {missing} produced no result")
    return results  # type: ignore[return-value]


def run_stream(
    dataset: str,
    config: Optional[StreamConfig] = None,
    *,
    seed: int = 0,
    size_factor: float = 1.0,
    store: Optional[RunStore] = None,
    jobs: Optional[int] = None,
) -> StreamResult:
    """Cached, optionally parallel equivalent of ``StreamDriver.run``."""
    request = StreamRequest(
        dataset=dataset,
        config=config if config is not None else StreamConfig(),
        seed=seed,
        size_factor=size_factor,
    )
    return run_many([request], store=store, jobs=jobs)[0]

"""Set-associative LRU cache hierarchy.

Models the paper's testbed memory hierarchy: a private L1D and L2 per
physical core and a shared LLC per socket.  The hierarchy replays a
:class:`~repro.sim.trace.MemoryTrace` using the task-to-thread mapping
produced by the scheduler, so accesses from tasks that ran on the same
core share that core's private caches while all cores of a socket share
its LLC -- exactly the structure behind the paper's Fig. 10 findings
(update reuse captured by the private L2; compute reuse of
freshly-updated edge data captured by the shared LLC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.sim.machine import MachineConfig
from repro.sim.trace import MemoryTrace


class SetAssociativeCache:
    """One set-associative, write-allocate, LRU cache level."""

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64) -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ConfigError("cache geometry values must be positive")
        if size_bytes % (ways * line_bytes):
            raise ConfigError(
                f"cache size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_bytes})"
            )
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = size_bytes // (ways * line_bytes)
        # One insertion-ordered dict per set: key = tag, order = LRU->MRU.
        self._sets: List[Dict[int, None]] = [dict() for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def access(self, line_addr: int) -> bool:
        """Access one cache line (line-granular address); True on hit."""
        index = line_addr % self.sets
        tag = line_addr // self.sets
        cache_set = self._sets[index]
        if tag in cache_set:
            # Refresh LRU position.
            del cache_set[tag]
            cache_set[tag] = None
            self.hits += 1
            return True
        self.misses += 1
        if len(cache_set) >= self.ways:
            # Evict the least recently used line (first key).
            cache_set.pop(next(iter(cache_set)))
        cache_set[tag] = None
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def reset_stats(self) -> None:
        """Zero the hit/miss counters, keeping cache contents."""
        self.hits = 0
        self.misses = 0


@dataclass
class CacheStats:
    """Aggregate hierarchy statistics for one replayed phase."""

    accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    local_memory_accesses: int = 0
    remote_memory_accesses: int = 0

    @property
    def l2_hit_ratio(self) -> float:
        """L2 hits over L2 accesses (i.e. over L1 misses)."""
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0

    @property
    def llc_hit_ratio(self) -> float:
        """LLC hits over LLC accesses (i.e. over L2 misses)."""
        total = self.llc_hits + self.llc_misses
        return self.llc_hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum of two stats records."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            l1_hits=self.l1_hits + other.l1_hits,
            l1_misses=self.l1_misses + other.l1_misses,
            l2_hits=self.l2_hits + other.l2_hits,
            l2_misses=self.l2_misses + other.l2_misses,
            llc_hits=self.llc_hits + other.llc_hits,
            llc_misses=self.llc_misses + other.llc_misses,
            local_memory_accesses=self.local_memory_accesses + other.local_memory_accesses,
            remote_memory_accesses=self.remote_memory_accesses + other.remote_memory_accesses,
        )


class CacheHierarchy:
    """Private L1/L2 per core plus a shared LLC per socket.

    The hierarchy is persistent across phases: replaying the update
    phase warms the caches that the subsequent compute-phase replay
    then sees, reproducing the cross-phase data-reuse relationship the
    paper identifies (Section VI-C).
    """

    def __init__(
        self,
        machine: MachineConfig,
        threads: Optional[int] = None,
        prefetch: bool = False,
    ) -> None:
        #: Next-line L2 prefetcher (Skylake's L2 streamer, simplified):
        #: an L2 miss also fills the successor line into the L2.
        self.prefetch = prefetch
        self.machine = machine
        self.threads = threads if threads is not None else machine.hardware_threads
        cores = machine.physical_cores
        self._l1 = [
            SetAssociativeCache(machine.l1d_bytes, machine.l1_ways, machine.line_bytes)
            for _ in range(cores)
        ]
        self._l2 = [
            SetAssociativeCache(machine.l2_bytes, machine.l2_ways, machine.line_bytes)
            for _ in range(cores)
        ]
        self._llc = [
            SetAssociativeCache(
                machine.llc_bytes_per_socket, machine.llc_ways, machine.line_bytes
            )
            for _ in range(machine.sockets)
        ]

    def core_of_thread(self, thread: int) -> int:
        """Core hosting ``thread``; threads wrap around the cores."""
        return thread % self.machine.physical_cores

    def replay(self, trace: MemoryTrace, task_thread: np.ndarray) -> CacheStats:
        """Replay ``trace`` through the hierarchy and return statistics.

        ``task_thread`` maps each task id in the trace to the thread
        that executed it (from a :class:`~repro.sim.scheduler.ScheduleResult`).
        """
        with TRACER.span("cache-replay"):
            stats = self._replay(trace, task_thread)
        if METRICS.enabled:
            self._record_metrics(stats)
        return stats

    def _record_metrics(self, stats: CacheStats) -> None:
        """Fold one replay's statistics into the metrics registry."""
        METRICS.counter(
            "sim_cache_replays_total", "memory traces replayed"
        ).inc()
        METRICS.counter(
            "sim_cache_accesses_total", "line accesses replayed"
        ).inc(stats.accesses)
        for level, hits, misses in (
            ("l1", stats.l1_hits, stats.l1_misses),
            ("l2", stats.l2_hits, stats.l2_misses),
            ("llc", stats.llc_hits, stats.llc_misses),
        ):
            METRICS.counter(
                "sim_cache_hits_total", "cache hits per level", level=level
            ).inc(hits)
            METRICS.counter(
                "sim_cache_misses_total", "cache misses per level", level=level
            ).inc(misses)

    def _replay(self, trace: MemoryTrace, task_thread: np.ndarray) -> CacheStats:
        machine = self.machine
        lines_per_page = machine.page_bytes // machine.line_bytes
        sockets = machine.sockets
        cores_per_socket = machine.cores_per_socket
        stats = CacheStats()
        l1s, l2s, llcs = self._l1, self._l2, self._llc

        # Address translation and core assignment are stateless, so
        # they vectorize; the sequential loop below only keeps the
        # stateful LRU replay itself.
        line_list = (trace.addresses // machine.line_bytes).tolist()
        threads = np.asarray(task_thread, dtype=np.int64)[trace.task_ids]
        core_list = (threads % machine.physical_cores).tolist()
        n = len(trace)
        stats.accesses = n
        for i in range(n):
            line_addr = line_list[i]
            core = core_list[i]
            if l1s[core].access(line_addr):
                stats.l1_hits += 1
                continue
            stats.l1_misses += 1
            if l2s[core].access(line_addr):
                stats.l2_hits += 1
                continue
            stats.l2_misses += 1
            if self.prefetch:
                # Streamer: pull the next line into L2 off the books
                # (the fill does not count as a demand access).
                l2 = l2s[core]
                hits, misses = l2.hits, l2.misses
                l2.access(line_addr + 1)
                l2.hits, l2.misses = hits, misses
            socket = core // cores_per_socket
            if llcs[socket].access(line_addr):
                stats.llc_hits += 1
                continue
            stats.llc_misses += 1
            home = (line_addr // lines_per_page) % sockets
            if home == socket:
                stats.local_memory_accesses += 1
            else:
                stats.remote_memory_accesses += 1
        return stats

"""Deterministic parallel-execution model.

The graph data structures translate one batch update (or one compute
phase) into tasks -- "insert edge (u, v)", "evaluate the vertex
function of v" -- each carrying its cycle cost and, where relevant, the
lock it must hold and the chunk it is pinned to.  This module turns
such tasks into a *makespan*: the simulated parallel latency of the
phase on a given thread count.

Three execution models mirror the three multithreading styles in the
paper (Section III-A):

- :class:`DynamicScheduler` -- OpenMP-style dynamic scheduling with
  shared-memory locks (used by AS and Stinger).  A discrete-event
  greedy list scheduler: tasks are dispatched in order to the
  earliest-free thread; a task that needs a lock waits until the lock
  frees, and a contended acquire pays the cache-line ping-pong penalty.
- :class:`ChunkedScheduler` -- chunked-style multithreading (used by AC
  and DAH).  Each chunk is single-threaded and lockless; chunks map
  round-robin onto threads and a thread's time is the sum of its
  chunks' work.
- :func:`parallel_for_makespan` -- a lock-free OpenMP ``parallel for``
  (the compute phase).  Uses the greedy list-scheduling bound, which is
  exact for dynamic scheduling of independent tasks up to dispatch
  granularity.

Tasks arrive either as a columnar :class:`~repro.sim.tasks.TaskArray`
(the default hot path: the schedulers run as array kernels -- a
``np.bincount`` reduction for the chunked style, vectorized fast paths
plus an array-indexed event loop for the dynamic style) or as a legacy
``Sequence[Task]`` (per-object loops, selected structure-side by
``SAGA_BENCH_LEGACY_TASKS=1``).  Both representations produce
**bit-identical** :class:`ScheduleResult` fields; the differential
tests in ``tests/test_task_kernels.py`` enforce this.

All three report a :class:`ScheduleResult` with the makespan, total
work, and per-thread busy time, plus the task-to-thread assignment that
the cache model uses to replay memory traces through private caches.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import SimulationError
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.sim import ckernel
from repro.sim.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.sim.tasks import (  # noqa: F401 - Task is re-exported
    NO_CHUNK,
    NO_LOCK,
    Task,
    TaskArray,
    use_legacy_tasks,
)

#: Either representation of a task batch.
Tasks = Union[TaskArray, Sequence[Task]]


@dataclass
class ScheduleResult:
    """Outcome of scheduling one phase on ``threads`` threads."""

    makespan_cycles: float
    total_work_cycles: float
    threads: int
    task_count: int
    thread_busy_cycles: np.ndarray
    task_thread: np.ndarray
    lock_wait_cycles: float = 0.0
    contended_acquires: int = 0
    extra: dict = field(default_factory=dict)
    #: Threads that can actually receive work.  ``None`` means all of
    #: them; the chunked scheduler sets it to the number of distinct
    #: target threads so that ``utilization`` is not diluted by threads
    #: that no chunk maps to (``threads`` > number of chunks).
    active_threads: Optional[int] = None

    @property
    def utilization(self) -> float:
        """Fraction of *eligible* thread-cycles spent doing useful work."""
        eligible = self.threads if self.active_threads is None else self.active_threads
        capacity = self.makespan_cycles * eligible
        if capacity <= 0:
            return 0.0
        return float(self.total_work_cycles / capacity)

    @property
    def speedup(self) -> float:
        """Achieved speedup over serial execution of the same work."""
        if self.makespan_cycles <= 0:
            return 0.0
        return float(self.total_work_cycles / self.makespan_cycles)


def _work_scale(threads: int, physical_cores: int, cost: CostModel) -> float:
    """Per-thread work dilation when SMT siblings share cores."""
    if physical_cores <= 0:
        raise SimulationError(f"physical_cores must be positive, got {physical_cores}")
    if threads <= physical_cores:
        return 1.0
    return cost.smt_work_scale


def _empty_result(threads: int) -> ScheduleResult:
    return ScheduleResult(
        makespan_cycles=0.0,
        total_work_cycles=0.0,
        threads=threads,
        task_count=0,
        thread_busy_cycles=np.zeros(threads),
        task_thread=np.empty(0, dtype=np.int32),
    )


def _chunked_timeline(tid, scaled_work) -> tuple:
    """Per-task (start, end) cycles for chunk-pinned serial execution.

    A thread executes its tasks serially in task order, so a task's
    start is the running occupancy of its thread.  Used only when the
    tracer's simulated-timeline capture is on.
    """
    n = len(tid)
    starts = np.empty(n)
    ends = np.empty(n)
    offsets: dict = {}
    tid_list = tid.tolist() if hasattr(tid, "tolist") else list(tid)
    work_list = (
        scaled_work.tolist() if hasattr(scaled_work, "tolist") else list(scaled_work)
    )
    for i in range(n):
        t = tid_list[i]
        start = offsets.get(t, 0.0)
        end = start + work_list[i]
        offsets[t] = end
        starts[i] = start
        ends[i] = end
    return starts, ends


def _sequential_sum(values: np.ndarray) -> float:
    """Left-to-right float64 sum, bit-identical to a Python ``+=`` loop.

    ``np.sum`` uses pairwise summation, which rounds differently from
    the legacy per-task accumulation; ``np.cumsum`` accumulates
    strictly left to right, so its last element matches the loop.
    """
    if len(values) == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


class DynamicScheduler:
    """OpenMP-style dynamic scheduling with shared locks.

    Tasks are dispatched in list order: whenever a thread becomes free
    it grabs the next undispatched task.  A task runs its unlocked
    portion immediately, then waits for its lock (if any).  This greedy
    event-driven model captures the two phenomena the paper attributes
    to the update phase's low thread-level parallelism: serialization
    behind hot per-vertex locks, and threads idling while blocked.
    """

    def __init__(
        self,
        threads: int,
        physical_cores: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        dispatch_chunk: int = 1,
    ) -> None:
        if threads < 1:
            raise SimulationError(f"threads must be >= 1, got {threads}")
        if dispatch_chunk < 1:
            raise SimulationError(f"dispatch_chunk must be >= 1, got {dispatch_chunk}")
        self.threads = threads
        self.physical_cores = physical_cores if physical_cores is not None else threads
        self.cost = cost_model
        self.dispatch_chunk = dispatch_chunk

    def run(self, tasks: Tasks) -> ScheduleResult:
        """Schedule ``tasks`` and return the resulting makespan."""
        if isinstance(tasks, TaskArray):
            return self._run_array(tasks)
        return self._run_objects(tasks)

    # -- columnar kernels ----------------------------------------------

    def _run_array(self, tasks: TaskArray) -> ScheduleResult:
        n = len(tasks)
        if n == 0:
            return _empty_result(self.threads)
        scale = _work_scale(self.threads, self.physical_cores, self.cost)
        # Timeline capture (``--trace-out``) needs per-task start/end
        # times, which only the explicit event loop produces; the
        # closed forms and the compiled kernel are bypassed.  The
        # resulting ScheduleResult fields are bit-identical either way.
        if TRACER.sim_timeline:
            return self._run_array_event_loop_timeline(tasks, scale)
        if not tasks.has_locks:
            result = self._run_array_lockfree(tasks, scale)
            if result is not None:
                return result
            if METRICS.enabled:
                METRICS.counter(
                    "sim_scheduler_fastpath_retries_total",
                    "lock-free closed-form bailed; stream replayed "
                    "through the event loop",
                ).inc()
        return self._run_array_event_loop(tasks, scale)

    def _run_array_lockfree(
        self, tasks: TaskArray, scale: float
    ) -> Optional[ScheduleResult]:
        """Fully vectorized greedy dispatch for lock-free task streams.

        Exactness of the closed forms requires strictly positive,
        strictly increasing completion times (otherwise the legacy
        heap's tie-breaking deviates from round-robin); when that does
        not hold the caller falls back to the event loop, which
        replicates the heap exactly.
        """
        n = len(tasks)
        threads = self.threads
        dispatch = (self.cost.task_dispatch / self.dispatch_chunk) * scale
        unlocked = tasks.unlocked_work
        locked = tasks.locked_work
        # Grouping mirrors the event loop: ((free + d) + u*s) + l*s.
        ends = (dispatch + unlocked * scale) + locked * scale
        total_work = _sequential_sum(unlocked + locked)

        if n <= threads:
            # Every task starts at time zero on its own thread -- but
            # only when completion times are positive, else the heap
            # re-pops the zero-time thread it just pushed back.
            if not bool((ends > 0.0).all()):
                return None
            thread_busy = np.zeros(threads)
            thread_busy[:n] = ends
            makespan = float(ends.max())
            if n < threads:
                makespan = max(makespan, 0.0)
            return ScheduleResult(
                makespan_cycles=makespan,
                total_work_cycles=total_work,
                threads=threads,
                task_count=n,
                thread_busy_cycles=thread_busy,
                task_thread=np.arange(n, dtype=np.int32),
            )

        u0 = float(unlocked[0])
        l0 = float(locked[0])
        if not (
            bool((unlocked == u0).all())
            and bool((locked == l0).all())
            and u0 >= 0.0
            and l0 >= 0.0
            and dispatch >= 0.0
        ):
            return None
        # Uniform-cost stream: dispatch is provably round-robin, and
        # every thread walks the same completion-time ladder
        # E_r = ((E_{r-1} + d) + u*s) + l*s.
        u0s = u0 * scale
        l0s = l0 * scale
        rounds = -(-n // threads)
        ends_per_round = np.empty(rounds)
        end = 0.0
        for r in range(rounds):
            end = ((end + dispatch) + u0s) + l0s
            ends_per_round[r] = end
        if ends_per_round[0] <= 0.0 or not bool(
            (np.diff(ends_per_round) > 0.0).all()
        ):
            return None  # ties possible: the heap would not round-robin
        # The legacy loop accumulates busy time as (end - previous end)
        # per round; replicate that rounding exactly via cumsum of the
        # per-round differences.
        diffs = np.empty(rounds)
        diffs[0] = ends_per_round[0] - 0.0
        diffs[1:] = ends_per_round[1:] - ends_per_round[:-1]
        busy_ladder = np.cumsum(diffs)
        rounds_per_thread = (n - 1 - np.arange(threads)) // threads + 1
        return ScheduleResult(
            makespan_cycles=float(ends_per_round[-1]),
            total_work_cycles=total_work,
            threads=threads,
            task_count=n,
            thread_busy_cycles=busy_ladder[rounds_per_thread - 1],
            task_thread=(np.arange(n) % threads).astype(np.int32),
        )

    def _run_array_event_loop(self, tasks: TaskArray, scale: float) -> ScheduleResult:
        """Array-indexed discrete-event loop (locked / irregular streams).

        Reads primitive columns hoisted into local lists -- no per-task
        attribute access, no Task boxing -- while replicating the legacy
        loop's arithmetic operation-for-operation.
        """
        n = len(tasks)
        threads = self.threads
        cost = self.cost
        dispatch = (cost.task_dispatch / self.dispatch_chunk) * scale
        acquire_base = cost.lock_acquire + cost.lock_release
        # Per-task increments precomputed for every outcome of the lock
        # branch.  Each expression replicates the scalar term grouping
        # elementwise (IEEE float64 ops are identical either way):
        # uncontended end += (locked + base) * s, contended end +=
        # (locked + (base + penalty)) * s, lock-free end += locked * s.
        unlocked = tasks.unlocked_work
        locked = tasks.locked_work
        penalty = np.where(
            tasks.fine_lock,
            cost.fine_lock_contended_penalty,
            cost.lock_contended_penalty,
        )
        work = unlocked + locked
        all_locked = bool((tasks.lock >= 0).all())
        if n and threads <= ckernel.MAX_KERNEL_THREADS:
            kernel = ckernel.get_kernel()
            if kernel is not None:
                return self._run_array_event_loop_compiled(
                    kernel,
                    tasks,
                    scale,
                    dispatch,
                    acquire_base,
                    penalty,
                    work,
                    all_locked,
                )
        unlocked_scaled = (unlocked * scale).tolist()
        locked_uncont = ((locked + acquire_base) * scale).tolist()
        locked_cont = ((locked + (acquire_base + penalty)) * scale).tolist()
        locks = tasks.lock.tolist()

        free_at = [(0.0, t) for t in range(threads)]
        heapq.heapify(free_at)
        # One heapreplace per task instead of heappop + heappush: the
        # heap's internal layout may differ, but pops of a totally
        # ordered set always yield the minimum, so the (end, thread)
        # pop sequence -- and hence the schedule -- is unchanged.
        heapreplace = heapq.heapreplace
        lock_free: dict = {}
        lock_get = lock_free.get
        busy = [0.0] * threads
        assignment = []
        append_assignment = assignment.append
        contended_idx: list = []
        append_contended = contended_idx.append
        waits: list = []
        append_wait = waits.append

        if all_locked:
            # Streams where every task locks (the common case for the
            # fig9 graph workloads): the lock test and the lock-free
            # increment drop out of the inner loop entirely.
            for i, u, lock, l_unc, l_con in zip(
                range(n), unlocked_scaled, locks, locked_uncont, locked_cont
            ):
                t_free, tid = free_at[0]
                unlocked_end = (t_free + dispatch) + u
                acquire_ready = lock_get(lock, 0.0)
                if acquire_ready > unlocked_end:
                    append_contended(i)
                    append_wait(acquire_ready - unlocked_end)
                    end = acquire_ready + l_con
                else:
                    end = unlocked_end + l_unc
                lock_free[lock] = end
                append_assignment(tid)
                busy[tid] += end - t_free
                heapreplace(free_at, (end, tid))
        else:
            locked_scaled = (locked * scale).tolist()
            for i, u, lock, l_plain, l_unc, l_con in zip(
                range(n),
                unlocked_scaled,
                locks,
                locked_scaled,
                locked_uncont,
                locked_cont,
            ):
                t_free, tid = free_at[0]
                unlocked_end = (t_free + dispatch) + u
                if lock >= 0:
                    acquire_ready = lock_get(lock, 0.0)
                    if acquire_ready > unlocked_end:
                        append_contended(i)
                        append_wait(acquire_ready - unlocked_end)
                        end = acquire_ready + l_con
                    else:
                        end = unlocked_end + l_unc
                    lock_free[lock] = end
                else:
                    end = unlocked_end + l_plain
                append_assignment(tid)
                busy[tid] += end - t_free
                heapreplace(free_at, (end, tid))

        makespan = max(t for t, _ in free_at)
        # The legacy loop accumulates total_work and lock_wait with a
        # scalar += in task order; a cumsum over per-task contributions
        # assembled post-hoc replays the identical left-to-right
        # rounding (see _sequential_sum).
        if all_locked:
            work_values = work + acquire_base
        else:
            work_values = np.where(tasks.lock >= 0, work + acquire_base, work)
        if contended_idx:
            idx = np.asarray(contended_idx)
            work_values[idx] = (work + (acquire_base + penalty))[idx]
        total_work = _sequential_sum(work_values)
        lock_wait = _sequential_sum(np.asarray(waits)) if waits else 0.0
        contended = len(contended_idx)
        return ScheduleResult(
            makespan_cycles=makespan,
            total_work_cycles=total_work,
            threads=threads,
            task_count=n,
            thread_busy_cycles=np.asarray(busy),
            task_thread=np.asarray(assignment, dtype=np.int32),
            lock_wait_cycles=lock_wait,
            contended_acquires=contended,
        )

    def _run_array_event_loop_compiled(
        self,
        kernel,
        tasks: TaskArray,
        scale: float,
        dispatch: float,
        acquire_base: float,
        penalty: np.ndarray,
        work: np.ndarray,
        all_locked: bool,
    ) -> ScheduleResult:
        """Drive the :mod:`repro.sim.ckernel` loop; bit-identical output.

        The per-task increments are the same precomputed columns the
        Python loop boxes into lists, handed to the compiled loop as
        raw float64/int64 buffers instead.  Lock ids are densified so
        the kernel's lock table is a flat zero-initialised array
        (matching the Python dict's ``get(lock, 0.0)`` default);
        negative ids (lock-free tasks) pass through unchanged.
        """
        n = len(tasks)
        threads = self.threads
        unlocked = tasks.unlocked_work
        locked = tasks.locked_work
        unlocked_scaled = unlocked * scale
        locked_scaled = locked * scale
        locked_uncont = (locked + acquire_base) * scale
        locked_cont = (locked + (acquire_base + penalty)) * scale
        uniq, inverse = np.unique(tasks.lock, return_inverse=True)
        negatives = int(np.searchsorted(uniq, 0))
        dense = np.ascontiguousarray(inverse.astype(np.int64) - negatives)
        lock_free = np.zeros(max(len(uniq) - negatives, 1))
        busy = np.zeros(threads)
        assignment = np.empty(n, dtype=np.int32)
        contended_idx = np.empty(n, dtype=np.int64)
        waits = np.empty(n)
        makespan_out = np.zeros(1)
        contended = int(
            kernel(
                n,
                threads,
                dispatch,
                unlocked_scaled.ctypes.data,
                dense.ctypes.data,
                locked_scaled.ctypes.data,
                locked_uncont.ctypes.data,
                locked_cont.ctypes.data,
                lock_free.ctypes.data,
                busy.ctypes.data,
                assignment.ctypes.data,
                contended_idx.ctypes.data,
                waits.ctypes.data,
                makespan_out.ctypes.data,
            )
        )
        if contended < 0:
            raise SimulationError(
                f"event-loop kernel rejected thread count {threads}"
            )
        if all_locked:
            work_values = work + acquire_base
        else:
            work_values = np.where(tasks.lock >= 0, work + acquire_base, work)
        if contended:
            idx = contended_idx[:contended]
            work_values[idx] = (work + (acquire_base + penalty))[idx]
        total_work = _sequential_sum(work_values)
        lock_wait = _sequential_sum(waits[:contended]) if contended else 0.0
        return ScheduleResult(
            makespan_cycles=float(makespan_out[0]),
            total_work_cycles=total_work,
            threads=threads,
            task_count=n,
            thread_busy_cycles=busy,
            task_thread=assignment,
            lock_wait_cycles=lock_wait,
            contended_acquires=contended,
        )

    def _run_array_event_loop_timeline(
        self, tasks: TaskArray, scale: float
    ) -> ScheduleResult:
        """Event loop with per-task (start, end) capture for tracing.

        Replicates :meth:`_run_array_event_loop`'s general branch
        operation-for-operation (same term grouping, same heap
        discipline), additionally recording when each task's thread
        picks it up and when it completes.  The timeline lands in
        ``result.extra["timeline"]`` as ``(starts, ends)`` cycle
        arrays; the driver converts them to simulated microseconds.
        """
        n = len(tasks)
        threads = self.threads
        cost = self.cost
        dispatch = (cost.task_dispatch / self.dispatch_chunk) * scale
        acquire_base = cost.lock_acquire + cost.lock_release
        unlocked = tasks.unlocked_work
        locked = tasks.locked_work
        penalty = np.where(
            tasks.fine_lock,
            cost.fine_lock_contended_penalty,
            cost.lock_contended_penalty,
        )
        work = unlocked + locked
        unlocked_scaled = (unlocked * scale).tolist()
        locked_scaled = (locked * scale).tolist()
        locked_uncont = ((locked + acquire_base) * scale).tolist()
        locked_cont = ((locked + (acquire_base + penalty)) * scale).tolist()
        locks = tasks.lock.tolist()

        free_at = [(0.0, t) for t in range(threads)]
        heapq.heapify(free_at)
        heapreplace = heapq.heapreplace
        lock_free: dict = {}
        lock_get = lock_free.get
        busy = [0.0] * threads
        assignment = np.empty(n, dtype=np.int32)
        starts = np.empty(n)
        ends = np.empty(n)
        contended_idx: list = []
        append_contended = contended_idx.append
        waits: list = []
        append_wait = waits.append

        for i in range(n):
            u = unlocked_scaled[i]
            lock = locks[i]
            t_free, tid = free_at[0]
            unlocked_end = (t_free + dispatch) + u
            if lock >= 0:
                acquire_ready = lock_get(lock, 0.0)
                if acquire_ready > unlocked_end:
                    append_contended(i)
                    append_wait(acquire_ready - unlocked_end)
                    end = acquire_ready + locked_cont[i]
                else:
                    end = unlocked_end + locked_uncont[i]
                lock_free[lock] = end
            else:
                end = unlocked_end + locked_scaled[i]
            assignment[i] = tid
            starts[i] = t_free
            ends[i] = end
            busy[tid] += end - t_free
            heapreplace(free_at, (end, tid))

        makespan = max(t for t, _ in free_at)
        work_values = np.where(tasks.lock >= 0, work + acquire_base, work)
        if contended_idx:
            idx = np.asarray(contended_idx)
            work_values[idx] = (work + (acquire_base + penalty))[idx]
        total_work = _sequential_sum(work_values)
        lock_wait = _sequential_sum(np.asarray(waits)) if waits else 0.0
        return ScheduleResult(
            makespan_cycles=makespan,
            total_work_cycles=total_work,
            threads=threads,
            task_count=n,
            thread_busy_cycles=np.asarray(busy),
            task_thread=assignment,
            lock_wait_cycles=lock_wait,
            contended_acquires=len(contended_idx),
            extra={"timeline": (starts, ends)},
        )

    # -- legacy object loop --------------------------------------------

    def _run_objects(self, tasks: Sequence[Task]) -> ScheduleResult:
        """The original per-object event loop (legacy task path)."""
        n = len(tasks)
        threads = self.threads
        cost = self.cost
        scale = _work_scale(threads, self.physical_cores, cost)
        thread_busy = np.zeros(threads)
        task_thread = np.empty(n, dtype=np.int32)
        if n == 0:
            return _empty_result(threads)
        timeline = TRACER.sim_timeline
        starts = np.empty(n) if timeline else None
        ends = np.empty(n) if timeline else None

        # Min-heap of (free_time, thread_id): the next free thread pulls
        # the next task (the essence of dynamic scheduling).
        free_at = [(0.0, t) for t in range(threads)]
        heapq.heapify(free_at)
        lock_free: dict = {}
        total_work = 0.0
        lock_wait = 0.0
        contended = 0
        dispatch_cost = cost.task_dispatch / self.dispatch_chunk

        for i, task in enumerate(tasks):
            t_free, tid = heapq.heappop(free_at)
            start = t_free + dispatch_cost * scale
            unlocked_end = start + task.unlocked_work * scale
            if task.lock is not None:
                acquire_ready = lock_free.get(task.lock, 0.0)
                acquire_at = max(unlocked_end, acquire_ready)
                waited = acquire_at - unlocked_end
                lock_cycles = cost.lock_acquire + cost.lock_release
                if waited > 0.0:
                    contended += 1
                    lock_wait += waited
                    lock_cycles += (
                        cost.fine_lock_contended_penalty
                        if task.fine_lock
                        else cost.lock_contended_penalty
                    )
                end = acquire_at + (task.locked_work + lock_cycles) * scale
                lock_free[task.lock] = end
                total_work += task.total_work + lock_cycles
            else:
                end = unlocked_end + task.locked_work * scale
                total_work += task.total_work
            task_thread[i] = tid
            thread_busy[tid] += end - t_free
            if timeline:
                starts[i] = t_free
                ends[i] = end
            heapq.heappush(free_at, (end, tid))

        makespan = max(t for t, _ in free_at)
        return ScheduleResult(
            makespan_cycles=makespan,
            total_work_cycles=total_work,
            threads=threads,
            task_count=n,
            thread_busy_cycles=thread_busy,
            task_thread=task_thread,
            lock_wait_cycles=lock_wait,
            contended_acquires=contended,
            extra={"timeline": (starts, ends)} if timeline else {},
        )


class ChunkedScheduler:
    """Chunked-style multithreading: lockless single-threaded chunks.

    Every task must carry a ``chunk``; chunk ``c`` executes serially and
    chunks map to threads round-robin (``c % threads``).  The makespan
    is the longest per-thread sum -- workload imbalance across chunks
    (the paper's explanation for DAH's poor scaling on heavy-tailed
    graphs) shows up directly.

    When the thread count exceeds the number of distinct target
    threads, the surplus threads can never receive work; the result's
    ``active_threads`` records the reachable count so ``utilization``
    reflects the threads that could participate.
    """

    def __init__(
        self,
        threads: int,
        physical_cores: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        if threads < 1:
            raise SimulationError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self.physical_cores = physical_cores if physical_cores is not None else threads
        self.cost = cost_model

    def run(self, tasks: Tasks) -> ScheduleResult:
        """Schedule chunk-pinned ``tasks`` and return the makespan."""
        if isinstance(tasks, TaskArray):
            return self._run_array(tasks)
        return self._run_objects(tasks)

    def _run_array(self, tasks: TaskArray) -> ScheduleResult:
        """Bincount kernel: one weighted reduction per batch."""
        threads = self.threads
        n = len(tasks)
        if n == 0:
            return _empty_result(threads)
        chunk = tasks.chunk
        if bool((chunk < 0).any()):
            raise SimulationError("ChunkedScheduler requires tasks with a chunk")
        scale = _work_scale(threads, self.physical_cores, self.cost)
        tid = chunk % threads
        work = tasks.unlocked_work + tasks.locked_work
        thread_busy = np.bincount(tid, weights=work * scale, minlength=threads)
        extra = (
            {"timeline": _chunked_timeline(tid, work * scale)}
            if TRACER.sim_timeline
            else {}
        )
        return ScheduleResult(
            makespan_cycles=float(thread_busy.max()),
            total_work_cycles=_sequential_sum(work),
            threads=threads,
            task_count=n,
            thread_busy_cycles=thread_busy,
            task_thread=tid.astype(np.int32),
            active_threads=int(np.count_nonzero(np.bincount(tid, minlength=1))),
            extra=extra,
        )

    def _run_objects(self, tasks: Sequence[Task]) -> ScheduleResult:
        """The original per-object loop (legacy task path)."""
        threads = self.threads
        scale = _work_scale(threads, self.physical_cores, self.cost)
        thread_busy = np.zeros(threads)
        n = len(tasks)
        task_thread = np.empty(n, dtype=np.int32)
        total_work = 0.0
        for i, task in enumerate(tasks):
            if task.chunk is None:
                raise SimulationError("ChunkedScheduler requires tasks with a chunk")
            tid = task.chunk % threads
            work = task.total_work
            thread_busy[tid] += work * scale
            total_work += work
            task_thread[i] = tid
        makespan = float(thread_busy.max()) if n else 0.0
        extra = {}
        if TRACER.sim_timeline and n:
            scaled = [task.total_work * scale for task in tasks]
            extra["timeline"] = _chunked_timeline(task_thread, scaled)
        return ScheduleResult(
            makespan_cycles=makespan,
            total_work_cycles=total_work,
            threads=threads,
            task_count=n,
            thread_busy_cycles=thread_busy,
            task_thread=task_thread,
            active_threads=len(set(task_thread.tolist())) if n else None,
            extra=extra,
        )


def parallel_for_makespan(
    costs: np.ndarray,
    threads: int,
    physical_cores: Optional[int] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    dispatch_chunk: int = 64,
) -> ScheduleResult:
    """Makespan of a lock-free OpenMP ``parallel for`` over ``costs``.

    Uses the greedy list-scheduling bound
    ``makespan = total/T + (1 - 1/T) * max_task`` (Graham), which is a
    tight model for dynamic scheduling of independent iterations, plus
    per-dispatch overhead amortized over ``dispatch_chunk`` iterations.
    """
    if threads < 1:
        raise SimulationError(f"threads must be >= 1, got {threads}")
    cost = cost_model
    cores = physical_cores if physical_cores is not None else threads
    scale = _work_scale(threads, cores, cost)
    costs = np.asarray(costs, dtype=np.float64)
    n = int(costs.size)
    task_thread = (np.arange(n, dtype=np.int32) % threads) if n else np.empty(0, np.int32)
    if n == 0:
        return ScheduleResult(
            makespan_cycles=0.0,
            total_work_cycles=0.0,
            threads=threads,
            task_count=0,
            thread_busy_cycles=np.zeros(threads),
            task_thread=task_thread,
        )
    dispatch = cost.task_dispatch * n / dispatch_chunk
    total = float(costs.sum()) + dispatch
    longest = float(costs.max())
    makespan = (total / threads + (1.0 - 1.0 / threads) * longest) * scale
    busy = np.bincount(task_thread, weights=costs, minlength=threads)
    return ScheduleResult(
        makespan_cycles=makespan,
        total_work_cycles=total,
        threads=threads,
        task_count=n,
        thread_busy_cycles=busy * scale,
        task_thread=task_thread,
    )

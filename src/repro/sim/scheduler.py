"""Deterministic parallel-execution model.

The graph data structures translate one batch update (or one compute
phase) into a list of :class:`Task` objects -- "insert edge (u, v)",
"evaluate the vertex function of v" -- each carrying its cycle cost and,
where relevant, the lock it must hold and the chunk it is pinned to.
This module turns such task lists into a *makespan*: the simulated
parallel latency of the phase on a given thread count.

Three execution models mirror the three multithreading styles in the
paper (Section III-A):

- :class:`DynamicScheduler` -- OpenMP-style dynamic scheduling with
  shared-memory locks (used by AS and Stinger).  A discrete-event
  greedy list scheduler: tasks are dispatched in order to the
  earliest-free thread; a task that needs a lock waits until the lock
  frees, and a contended acquire pays the cache-line ping-pong penalty.
- :class:`ChunkedScheduler` -- chunked-style multithreading (used by AC
  and DAH).  Each chunk is single-threaded and lockless; chunks map
  round-robin onto threads and a thread's time is the sum of its
  chunks' work.
- :func:`parallel_for_makespan` -- a lock-free OpenMP ``parallel for``
  (the compute phase).  Uses the greedy list-scheduling bound, which is
  exact for dynamic scheduling of independent tasks up to dispatch
  granularity.

All three report a :class:`ScheduleResult` with the makespan, total
work, and per-thread busy time, plus the task-to-thread assignment that
the cache model uses to replay memory traces through private caches.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.sim.cost_model import CostModel, DEFAULT_COST_MODEL


@dataclass
class Task:
    """One schedulable unit of work.

    Attributes
    ----------
    unlocked_work:
        Cycles executed before any lock is taken (e.g. Stinger's search
        scans, which read edge blocks without locking).
    locked_work:
        Cycles executed while holding :attr:`lock`.  Zero for lockless
        tasks.
    lock:
        Identifier of the lock the task must hold for its locked
        portion, or ``None``.  AS uses the source-vertex id; Stinger
        uses a per-edge-block id.
    chunk:
        For chunked-style structures, the chunk this task is pinned to.
    fine_lock:
        True when :attr:`lock` is a fine-grained lock (tiny critical
        section); contended acquires then pay the smaller
        ``fine_lock_contended_penalty``.
    """

    unlocked_work: float
    locked_work: float = 0.0
    lock: Optional[int] = None
    chunk: Optional[int] = None
    fine_lock: bool = False
    #: Fixed per-batch overhead (e.g. chunk routing) rather than
    #: per-edge work; analysis code may separate the two.
    overhead: bool = False

    @property
    def total_work(self) -> float:
        return self.unlocked_work + self.locked_work


@dataclass
class ScheduleResult:
    """Outcome of scheduling one phase on ``threads`` threads."""

    makespan_cycles: float
    total_work_cycles: float
    threads: int
    task_count: int
    thread_busy_cycles: np.ndarray
    task_thread: np.ndarray
    lock_wait_cycles: float = 0.0
    contended_acquires: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Fraction of thread-cycles spent doing useful work."""
        capacity = self.makespan_cycles * self.threads
        if capacity <= 0:
            return 0.0
        return float(self.total_work_cycles / capacity)

    @property
    def speedup(self) -> float:
        """Achieved speedup over serial execution of the same work."""
        if self.makespan_cycles <= 0:
            return 0.0
        return float(self.total_work_cycles / self.makespan_cycles)


def _work_scale(threads: int, physical_cores: int, cost: CostModel) -> float:
    """Per-thread work dilation when SMT siblings share cores."""
    if physical_cores <= 0:
        raise SimulationError(f"physical_cores must be positive, got {physical_cores}")
    if threads <= physical_cores:
        return 1.0
    return cost.smt_work_scale


class DynamicScheduler:
    """OpenMP-style dynamic scheduling with shared locks.

    Tasks are dispatched in list order: whenever a thread becomes free
    it grabs the next undispatched task.  A task runs its unlocked
    portion immediately, then waits for its lock (if any).  This greedy
    event-driven model captures the two phenomena the paper attributes
    to the update phase's low thread-level parallelism: serialization
    behind hot per-vertex locks, and threads idling while blocked.
    """

    def __init__(
        self,
        threads: int,
        physical_cores: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        dispatch_chunk: int = 1,
    ) -> None:
        if threads < 1:
            raise SimulationError(f"threads must be >= 1, got {threads}")
        if dispatch_chunk < 1:
            raise SimulationError(f"dispatch_chunk must be >= 1, got {dispatch_chunk}")
        self.threads = threads
        self.physical_cores = physical_cores if physical_cores is not None else threads
        self.cost = cost_model
        self.dispatch_chunk = dispatch_chunk

    def run(self, tasks: Sequence[Task]) -> ScheduleResult:
        """Schedule ``tasks`` and return the resulting makespan."""
        n = len(tasks)
        threads = self.threads
        cost = self.cost
        scale = _work_scale(threads, self.physical_cores, cost)
        thread_busy = np.zeros(threads)
        task_thread = np.empty(n, dtype=np.int32)
        if n == 0:
            return ScheduleResult(
                makespan_cycles=0.0,
                total_work_cycles=0.0,
                threads=threads,
                task_count=0,
                thread_busy_cycles=thread_busy,
                task_thread=task_thread,
            )

        # Min-heap of (free_time, thread_id): the next free thread pulls
        # the next task (the essence of dynamic scheduling).
        free_at = [(0.0, t) for t in range(threads)]
        heapq.heapify(free_at)
        lock_free: dict = {}
        total_work = 0.0
        lock_wait = 0.0
        contended = 0
        dispatch_cost = cost.task_dispatch / self.dispatch_chunk

        for i, task in enumerate(tasks):
            t_free, tid = heapq.heappop(free_at)
            start = t_free + dispatch_cost * scale
            unlocked_end = start + task.unlocked_work * scale
            if task.lock is not None:
                acquire_ready = lock_free.get(task.lock, 0.0)
                acquire_at = max(unlocked_end, acquire_ready)
                waited = acquire_at - unlocked_end
                lock_cycles = cost.lock_acquire + cost.lock_release
                if waited > 0.0:
                    contended += 1
                    lock_wait += waited
                    lock_cycles += (
                        cost.fine_lock_contended_penalty
                        if task.fine_lock
                        else cost.lock_contended_penalty
                    )
                end = acquire_at + (task.locked_work + lock_cycles) * scale
                lock_free[task.lock] = end
                total_work += task.total_work + lock_cycles
            else:
                end = unlocked_end + task.locked_work * scale
                total_work += task.total_work
            task_thread[i] = tid
            thread_busy[tid] += end - t_free
            heapq.heappush(free_at, (end, tid))

        makespan = max(t for t, _ in free_at)
        return ScheduleResult(
            makespan_cycles=makespan,
            total_work_cycles=total_work,
            threads=threads,
            task_count=n,
            thread_busy_cycles=thread_busy,
            task_thread=task_thread,
            lock_wait_cycles=lock_wait,
            contended_acquires=contended,
        )


class ChunkedScheduler:
    """Chunked-style multithreading: lockless single-threaded chunks.

    Every task must carry a ``chunk``; chunk ``c`` executes serially and
    chunks map to threads round-robin (``c % threads``).  The makespan
    is the longest per-thread sum -- workload imbalance across chunks
    (the paper's explanation for DAH's poor scaling on heavy-tailed
    graphs) shows up directly.
    """

    def __init__(
        self,
        threads: int,
        physical_cores: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        if threads < 1:
            raise SimulationError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self.physical_cores = physical_cores if physical_cores is not None else threads
        self.cost = cost_model

    def run(self, tasks: Sequence[Task]) -> ScheduleResult:
        """Schedule chunk-pinned ``tasks`` and return the makespan."""
        threads = self.threads
        scale = _work_scale(threads, self.physical_cores, self.cost)
        thread_busy = np.zeros(threads)
        n = len(tasks)
        task_thread = np.empty(n, dtype=np.int32)
        total_work = 0.0
        for i, task in enumerate(tasks):
            if task.chunk is None:
                raise SimulationError("ChunkedScheduler requires tasks with a chunk")
            tid = task.chunk % threads
            work = task.total_work
            thread_busy[tid] += work * scale
            total_work += work
            task_thread[i] = tid
        makespan = float(thread_busy.max()) if n else 0.0
        return ScheduleResult(
            makespan_cycles=makespan,
            total_work_cycles=total_work,
            threads=threads,
            task_count=n,
            thread_busy_cycles=thread_busy,
            task_thread=task_thread,
        )


def parallel_for_makespan(
    costs: np.ndarray,
    threads: int,
    physical_cores: Optional[int] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    dispatch_chunk: int = 64,
) -> ScheduleResult:
    """Makespan of a lock-free OpenMP ``parallel for`` over ``costs``.

    Uses the greedy list-scheduling bound
    ``makespan = total/T + (1 - 1/T) * max_task`` (Graham), which is a
    tight model for dynamic scheduling of independent iterations, plus
    per-dispatch overhead amortized over ``dispatch_chunk`` iterations.
    """
    if threads < 1:
        raise SimulationError(f"threads must be >= 1, got {threads}")
    cost = cost_model
    cores = physical_cores if physical_cores is not None else threads
    scale = _work_scale(threads, cores, cost)
    costs = np.asarray(costs, dtype=np.float64)
    n = int(costs.size)
    task_thread = (np.arange(n, dtype=np.int32) % threads) if n else np.empty(0, np.int32)
    if n == 0:
        return ScheduleResult(
            makespan_cycles=0.0,
            total_work_cycles=0.0,
            threads=threads,
            task_count=0,
            thread_busy_cycles=np.zeros(threads),
            task_thread=task_thread,
        )
    dispatch = cost.task_dispatch * n / dispatch_chunk
    total = float(costs.sum()) + dispatch
    longest = float(costs.max())
    makespan = (total / threads + (1.0 - 1.0 / threads) * longest) * scale
    busy = np.bincount(task_thread, weights=costs, minlength=threads)
    return ScheduleResult(
        makespan_cycles=makespan,
        total_work_cycles=total,
        threads=threads,
        task_count=n,
        thread_busy_cycles=busy * scale,
        task_thread=task_thread,
    )

"""Synthetic address space for the simulated machine.

The data structures allocate their storage (neighbor vectors, edge
blocks, hash tables, property arrays) from an :class:`AddressSpace` so
that the memory trace they emit has realistic spatial structure: a
vector occupies a contiguous range, separate allocations land on
separate cache lines, and page interleaving determines each address's
home socket for the QPI traffic model.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SimulationError
from repro.sim.machine import CACHE_LINE_BYTES


class Region:
    """A contiguous allocation: ``[base, base + size)``.

    A plain ``__slots__`` class rather than a dataclass: regions are
    created on every block/vector/table allocation, so construction is
    on the simulator's hot path.  Treat instances as immutable.
    """

    __slots__ = ("base", "size", "label")

    def __init__(self, base: int, size: int, label: str) -> None:
        self.base = base
        self.size = size
        self.label = label

    def __repr__(self) -> str:
        return f"Region(base={self.base}, size={self.size}, label={self.label!r})"

    @property
    def end(self) -> int:
        return self.base + self.size

    def element(self, index: int, element_bytes: int) -> int:
        """Address of the ``index``-th element of ``element_bytes`` each."""
        addr = self.base + index * element_bytes
        if addr + element_bytes > self.end:
            raise SimulationError(
                f"element {index} x {element_bytes}B overruns region "
                f"{self.label!r} of {self.size}B"
            )
        return addr


class AddressSpace:
    """A bump allocator handing out cache-line-aligned regions.

    Allocations never overlap and are never reused, which keeps the
    model simple and makes traces reproducible.  ``free`` exists only to
    keep accounting of live bytes honest (e.g. when a vector doubles and
    the old storage is discarded).
    """

    def __init__(self, base: int = 1 << 20) -> None:
        self._next = _align_up(base, CACHE_LINE_BYTES)
        self._live_bytes = 0
        self._allocated_bytes = 0
        self._region_count = 0
        self._live_by_label: Dict[str, int] = {}

    def alloc(self, size: int, label: str = "") -> Region:
        """Allocate ``size`` bytes; returns the new :class:`Region`."""
        if size <= 0:
            raise SimulationError(f"allocation size must be positive, got {size}")
        base = self._next
        end = base + size
        self._next = (end + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES * CACHE_LINE_BYTES
        self._region_count += 1
        self._live_bytes += size
        self._allocated_bytes += size
        live = self._live_by_label
        live[label] = live.get(label, 0) + size
        return Region(base, size, label)

    def free(self, region: Region) -> None:
        """Mark ``region`` dead (addresses are never recycled)."""
        self._live_bytes -= region.size
        self._live_by_label[region.label] = (
            self._live_by_label.get(region.label, 0) - region.size
        )
        if self._live_bytes < 0:
            raise SimulationError("double free detected in AddressSpace")

    @property
    def live_bytes(self) -> int:
        """Bytes currently allocated and not freed."""
        return self._live_bytes

    @property
    def allocated_bytes(self) -> int:
        """Total bytes ever allocated (freed or not)."""
        return self._allocated_bytes

    def live_bytes_for(self, label: str) -> int:
        """Live bytes attributed to allocations labeled ``label``."""
        return self._live_by_label.get(label, 0)

    @property
    def region_count(self) -> int:
        return self._region_count


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment

"""Simulated dual-socket multicore machine.

The paper characterizes SAGA-Bench on a dual-socket Intel Xeon Gold 6142
(Skylake) with Intel PCM hardware counters.  Pure Python cannot reproduce
native multithreaded latency or hardware-counter measurements (GIL,
interpreter overhead), so this subpackage provides a deterministic
*simulated* machine instead:

- :mod:`repro.sim.machine` -- the machine description (sockets, cores,
  SMT, cache sizes, DRAM and QPI bandwidths), defaulting to the paper's
  testbed.
- :mod:`repro.sim.cost_model` -- abstract per-operation cycle costs that
  data structures charge while executing.
- :mod:`repro.sim.scheduler` -- a discrete-event, lock-aware thread
  scheduler that turns per-operation task lists into a parallel
  makespan (the simulated phase latency).
- :mod:`repro.sim.memory` / :mod:`repro.sim.trace` -- a synthetic
  address space and a memory-access trace recorder.
- :mod:`repro.sim.cache` -- a set-associative LRU cache hierarchy
  (private L1/L2 per core, shared LLC per socket).
- :mod:`repro.sim.counters` -- PCM-like derived counters: hit ratios,
  MPKI, memory bandwidth, and QPI-link utilization.
"""

from repro.sim.cache import CacheHierarchy, CacheStats, SetAssociativeCache
from repro.sim.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.sim.counters import PhaseCounters, derive_counters
from repro.sim.machine import MachineConfig, SKYLAKE_GOLD_6142
from repro.sim.memory import AddressSpace, Region
from repro.sim.profiling import PROFILER, PhaseTimer
from repro.sim.scheduler import (
    ChunkedScheduler,
    DynamicScheduler,
    ScheduleResult,
    Task,
    TaskArray,
    use_legacy_tasks,
)
from repro.sim.trace import MemoryTrace, TraceRecorder

__all__ = [
    "AddressSpace",
    "CacheHierarchy",
    "CacheStats",
    "ChunkedScheduler",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DynamicScheduler",
    "MachineConfig",
    "MemoryTrace",
    "PhaseCounters",
    "PhaseTimer",
    "PROFILER",
    "Region",
    "ScheduleResult",
    "SetAssociativeCache",
    "SKYLAKE_GOLD_6142",
    "Task",
    "TaskArray",
    "TraceRecorder",
    "derive_counters",
    "use_legacy_tasks",
]

"""Compatibility shim: ``PhaseTimer`` over the :mod:`repro.obs` tracer.

Historically this module owned a flat, process-global phase timer with
a documented no-nesting limitation (re-entering a phase double-counted
the inner interval).  The timing engine now lives in
:class:`repro.obs.tracer.SpanTracer`, which tracks nesting per thread
and aggregates **self-time** (a span's duration minus its children's),
so nested or re-entered phases attribute correctly.

:class:`PhaseTimer` survives as a thin facade so existing callers -- and
the ``--profile`` report format -- keep working:

- ``PROFILER`` is bound to the process-global :data:`repro.obs.TRACER`,
  the same tracer the ``--trace-out`` exporters read;
- a standalone ``PhaseTimer()`` gets its own private tracer (useful in
  tests);
- ``phase`` / ``add`` / ``totals`` / ``report`` behave as before,
  except that ``totals`` now reports self-time.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.obs.tracer import SpanTracer, TRACER


class PhaseTimer:
    """Accumulates wall seconds and entry counts per named phase.

    A facade over a :class:`~repro.obs.tracer.SpanTracer`; see the
    module docstring for the semantics change (self-time attribution).
    """

    __slots__ = ("_tracer",)

    def __init__(self, tracer: Optional[SpanTracer] = None) -> None:
        self._tracer = tracer if tracer is not None else SpanTracer()

    @property
    def enabled(self) -> bool:
        return self._tracer.enabled

    @property
    def tracer(self) -> SpanTracer:
        """The underlying span tracer."""
        return self._tracer

    def enable(self) -> None:
        self._tracer.enable()

    def disable(self) -> None:
        self._tracer.disable()

    def reset(self) -> None:
        self._tracer.reset()

    def phase(self, name: str):
        """Attribute the enclosed wall time to ``name`` (if enabled).

        Returns a reusable context manager; nested phases attribute
        self-time to each level instead of double-counting.
        """
        return self._tracer.span(name)

    def add(self, name: str, seconds: float) -> None:
        """Attribute ``seconds`` to ``name`` directly (no timing)."""
        self._tracer.add_seconds(name, seconds)

    def totals(self) -> Dict[str, Tuple[float, int]]:
        """{phase: (self seconds, entries)} accumulated so far."""
        return self._tracer.phase_totals()

    def report(self) -> str:
        """Plain-text breakdown, phases sorted by descending time."""
        totals = self.totals()
        if not totals:
            return "[profile] no instrumented phases ran"
        grand = sum(seconds for seconds, _ in totals.values())
        lines = ["[profile] per-phase wall time"]
        for name, (seconds, count) in sorted(
            totals.items(), key=lambda item: -item[1][0]
        ):
            share = 100.0 * seconds / grand if grand else 0.0
            lines.append(
                f"  {name:<14s} {seconds:>9.3f}s {share:>5.1f}%  ({count} calls)"
            )
        lines.append(f"  {'total':<14s} {grand:>9.3f}s")
        return "\n".join(lines)


#: The process-global timer used by the instrumented layers; bound to
#: the observability tracer so ``--profile`` and ``--trace-out`` read
#: one consistent record.
PROFILER = PhaseTimer(tracer=TRACER)

"""Lightweight per-phase wall-time profiling for harness runs.

The CLI's ``--profile`` flag enables a process-global
:class:`PhaseTimer`; the hot layers then attribute wall time to four
coarse phases so perf work has a baseline to compare against:

- ``emission`` -- turning a batch into tasks inside a data structure;
- ``schedule`` -- turning tasks into a makespan;
- ``cache-replay`` -- replaying memory traces through the hierarchy;
- ``compute`` -- the algorithm runs plus compute-phase pricing.

The timer is disabled by default and, when disabled, the ``phase``
context manager short-circuits without touching the clock, so
instrumented code pays one attribute check in the common case.
Phases never nest in the instrumented call graph; re-entering a phase
(or entering another phase) while one is open simply attributes the
inner span to the inner phase as an independent interval.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple


class PhaseTimer:
    """Accumulates wall seconds and entry counts per named phase."""

    __slots__ = ("enabled", "_totals", "_counts")

    def __init__(self) -> None:
        self.enabled = False
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._totals.clear()
        self._counts.clear()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute the enclosed wall time to ``name`` (if enabled)."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Attribute ``seconds`` to ``name`` directly (no timing)."""
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def totals(self) -> Dict[str, Tuple[float, int]]:
        """{phase: (seconds, entries)} accumulated so far."""
        return {
            name: (self._totals[name], self._counts[name])
            for name in self._totals
        }

    def report(self) -> str:
        """Plain-text breakdown, phases sorted by descending time."""
        totals = self.totals()
        if not totals:
            return "[profile] no instrumented phases ran"
        grand = sum(seconds for seconds, _ in totals.values())
        lines = ["[profile] per-phase wall time"]
        for name, (seconds, count) in sorted(
            totals.items(), key=lambda item: -item[1][0]
        ):
            share = 100.0 * seconds / grand if grand else 0.0
            lines.append(
                f"  {name:<14s} {seconds:>9.3f}s {share:>5.1f}%  ({count} calls)"
            )
        lines.append(f"  {'total':<14s} {grand:>9.3f}s")
        return "\n".join(lines)


#: The process-global timer used by the instrumented layers.
PROFILER = PhaseTimer()

"""Shared build-and-load helper for optional ctypes C kernels.

Two modules compile tiny C sources at runtime -- the scheduler event
loop (:mod:`repro.sim.ckernel`) and the compute kernels
(:mod:`repro.compute.ckernels`).  Both follow the same contract, so the
mechanics live here once:

- the shared object is cached under a filename containing the sha256 of
  the source, the compiler flags, and the compiler's identity string
  (``cc --version``), in ``SAGA_BENCH_CKERNEL_DIR`` or the system temp
  dir, so the compiler runs at most once per source revision per
  machine -- and a toolchain upgrade can never serve a stale object;
- the build goes to a private temp name and is moved into place with
  ``os.replace`` (atomic), so concurrent builders never load a
  half-written object;
- ``-ffp-contract=off`` forbids fused multiply-adds, keeping every IEEE
  float64 intermediate bit-identical to the Python/numpy twin.

Callers handle failures themselves (no compiler, broken toolchain):
:func:`load_library` raises and the caller decides between silent
numpy fallback and a hard error.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile

#: Environment variable overriding the build cache directory (shared
#: with the scheduler kernel of PR 2).
CACHE_DIR_ENV = "SAGA_BENCH_CKERNEL_DIR"

#: Compiler invocation shared by every kernel build.
CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

_COMPILER_IDENTITY: str | None = None


def cache_dir() -> str:
    """The directory compiled objects are cached in (created on demand)."""
    path = os.environ.get(CACHE_DIR_ENV)
    if not path:
        path = os.path.join(tempfile.gettempdir(), "saga_bench_ckernel")
    os.makedirs(path, exist_ok=True)
    return path


def compiler_identity() -> str:
    """First line of ``cc --version``, cached per process.

    Folded into the cache digest so upgrading the toolchain invalidates
    every previously compiled object.  An unavailable compiler yields a
    sentinel; the subsequent compile then fails with the real error.
    """
    global _COMPILER_IDENTITY
    if _COMPILER_IDENTITY is None:
        try:
            probe = subprocess.run(
                ["cc", "--version"], check=True, capture_output=True, text=True
            )
            _COMPILER_IDENTITY = probe.stdout.splitlines()[0].strip()
        except Exception:
            _COMPILER_IDENTITY = "cc-unavailable"
    return _COMPILER_IDENTITY


def source_digest(source: str, extra_flags: tuple[str, ...] = ()) -> str:
    """Cache digest: source text + flags + compiler identity."""
    fingerprint = "\0".join(
        [compiler_identity(), " ".join(CFLAGS + tuple(extra_flags)), source]
    )
    return hashlib.sha256(fingerprint.encode()).hexdigest()[:16]


def load_library(
    source: str, stem: str, extra_flags: tuple[str, ...] = ()
) -> ctypes.CDLL:
    """Compile ``source`` (or reuse the cached object) and dlopen it.

    ``stem`` names the cached artifact (``<stem>_<hash>.so``) and
    ``extra_flags`` extends :data:`CFLAGS` (e.g. ``("-pthread",)`` for
    the threaded compute kernels).  Raises on any failure -- missing
    compiler, compile error, unloadable object; callers choose the
    fallback policy.
    """
    digest = source_digest(source, tuple(extra_flags))
    so_path = os.path.join(cache_dir(), f"{stem}_{digest}.so")
    if not os.path.exists(so_path):
        c_path = so_path[:-3] + ".c"
        with open(c_path, "w") as handle:
            handle.write(source)
        tmp_path = f"{so_path}.tmp{os.getpid()}"
        subprocess.run(
            ["cc", *CFLAGS, *extra_flags, "-o", tmp_path, c_path],
            check=True,
            capture_output=True,
        )
        os.replace(tmp_path, so_path)
    return ctypes.CDLL(so_path)

"""Abstract per-operation cycle costs charged by the data structures.

Every graph data structure in :mod:`repro.graph` is written against this
cost model: each primitive it executes (probing a vector slot, computing
a hash, chasing an edge-block pointer, acquiring a lock, ...) charges a
named constant.  The discrete-event scheduler then turns the charged
work into a parallel makespan.

The constants are calibrated so that the *relative* behavior the paper
reports emerges from the mechanisms (e.g. DAH's O(1) hashed insert vs
AS's O(degree) locked scan), not from per-structure fudge factors: the
same constant is charged for the same primitive no matter which
structure executes it.  Absolute values are loosely based on Skylake
latencies (L1 hit ~4 cycles, LLC hit ~40, contended cache-line transfer
~500).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of the primitives used by the streaming structures.

    Attributes
    ----------
    probe_element:
        Reading and comparing one neighbor entry during a linear scan
        of a contiguous vector (cache-friendly: mostly L1 hits).
    probe_block_element:
        Reading and comparing one neighbor entry inside a Stinger
        edge block (same cost as a vector probe; the block pointer
        chase is charged separately).
    pointer_chase:
        Following a ``next`` pointer to another edge block (a dependent
        load that typically misses the L1).
    hash_compute:
        Computing a hash of an edge key.
    hash_probe:
        Inspecting one bucket during open-address / Robin Hood probing.
    insert_slot:
        Writing a new edge into a free slot (vector push-back, block
        slot, or hash bucket).
    vector_grow_per_element:
        Amortized cost per moved element when a vector doubles.
    lock_acquire / lock_release:
        Uncontended lock acquire / release (atomic RMW on a warm line).
    lock_contended_penalty:
        Extra cycles for an acquire of a *coarse* lock that had to
        wait: threads spin on the long critical section and the lock
        line storms between cores (AS's per-vertex vector locks).
    fine_lock_contended_penalty:
        The same for *fine-grained* locks guarding tiny critical
        sections (Stinger's per-edge-block locks): the spin window is
        a few cycles, so the coherence penalty is far smaller.
    cas:
        One compare-and-swap (used by INC's visited bitvector).
    degree_query:
        DAH meta-operation: querying a table's stored degree to decide
        where an edge lives (Section III-A4).
    flush_per_edge:
        DAH meta-operation: migrating one edge from the low-degree to
        the high-degree table during a periodic flush.
    route_edge:
        Chunked-style multithreading overhead: one thread inspecting
        one batch edge to decide whether it belongs to its chunk
        (every chunk scans the whole batch).
    task_dispatch:
        OpenMP dynamic-scheduling overhead per dispatched work unit.
    vertex_task_base:
        Fixed per-vertex overhead of one vertex-function evaluation
        (loop control, loading the vertex's property).
    neighbor_visit:
        Traversing to one neighbor and reading its property value
        during the compute phase.
    property_write:
        Writing one vertex property value.
    queue_push:
        Pushing one vertex onto the INC frontier queue.
    hash_iterate_slot:
        Enumerating one occupied slot while traversing a hash table's
        neighbor set (slots are sparse, so this exceeds a contiguous
        vector probe).
    rehash_per_element:
        Re-inserting one element when a hash table resizes.
    smt_work_scale:
        Multiplier on per-thread work when both SMT siblings of a core
        are active (two hyperthreads share one core's pipelines; 1.35
        means a core runs ~1.48x faster with SMT than one thread).
    """

    probe_element: float = 4.0
    probe_block_element: float = 4.0
    pointer_chase: float = 38.0
    hash_compute: float = 12.0
    hash_probe: float = 7.0
    insert_slot: float = 10.0
    vector_grow_per_element: float = 2.0
    lock_acquire: float = 25.0
    lock_release: float = 8.0
    lock_contended_penalty: float = 4000.0
    fine_lock_contended_penalty: float = 900.0
    cas: float = 30.0
    degree_query: float = 25.0
    flush_per_edge: float = 22.0
    route_edge: float = 3.0
    task_dispatch: float = 12.0
    vertex_task_base: float = 35.0
    neighbor_visit: float = 7.0
    property_write: float = 12.0
    queue_push: float = 15.0
    hash_iterate_slot: float = 16.0
    rehash_per_element: float = 20.0
    smt_work_scale: float = 1.35

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"cost {name} must be non-negative, got {value}")
        if self.smt_work_scale < 1.0:
            raise ConfigError(
                f"smt_work_scale must be >= 1 (it dilates work), got {self.smt_work_scale}"
            )


#: Default calibration used throughout the package.
DEFAULT_COST_MODEL = CostModel()

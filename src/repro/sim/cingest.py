"""Compiled C batch-ingest kernels for the update phase.

PR 2 made the update phase columnar: the five data structures ingest a
whole batch in one fused Python loop (``bulk_ingest`` and friends)
instead of one ``Task`` object per edge.  That loop is still
interpreted; this module compiles it.  Each structure family gets one C
kernel that runs the *entire* batch -- duplicate scans, slot writes,
segment relocations, block chases, hash probes -- over numpy-backed
store state, returning the same per-operation count columns the Python
loop appends (scanned/hit/aux...), which the emitters then price with
the existing vectorized arithmetic.  Results are bit-identical to both
the fused numpy path and the legacy object path.

The kernels mutate raw arrays, but simulated-memory accounting
(``AddressSpace`` regions, segment pools, table regions) stays in
Python: any operation that would allocate or free simulated memory
appends a compact *event* to an event log, and the store replays the
log after the C call in the exact order the allocations happened, so
the bump-allocated address space is laid out identically to the
per-edge path.  When a kernel runs out of backing storage (a growth
needs more pool than preallocated) it *stalls*: it returns mid-batch
with a resume cursor, Python grows the numpy pool, and the kernel is
re-entered at the stalled operation.

Environment gates (mirroring :mod:`repro.compute.ckernels`):

- ``SAGA_BENCH_NO_CINGEST=1`` (or ``all``) disables every structure;
  a comma list (``SAGA_BENCH_NO_CINGEST=DAH,Stinger``) disables only
  those structures, which then construct the plain Python stores.
- ``SAGA_BENCH_REQUIRE_CINGEST=1`` turns a failed build into a hard
  error instead of a silent fallback.
"""

from __future__ import annotations

import ctypes
import os
from typing import FrozenSet, Optional

import numpy as np

from repro.sim.cbuild import load_library

#: Disable env var: "1"/"all" for everything, or a comma list of
#: structure names (see :data:`STRUCTURE_NAMES`).
DISABLE_ENV = "SAGA_BENCH_NO_CINGEST"

#: When set, a failed build raises instead of falling back to Python.
REQUIRE_ENV = "SAGA_BENCH_REQUIRE_CINGEST"

#: Structures with a compiled ingest kernel.
STRUCTURE_NAMES = frozenset({"AS", "AC", "BA", "Stinger", "DAH"})

#: Kernel return codes.
OK = 0
STALL = 1

_SOURCE = r"""
#include <stdint.h>

/* ------------------------------------------------------------------ *
 * Vector-family ingest (AS, AC, BA).
 *
 * Store state: one flat (neighbor, weight) pool per store plus
 * per-vertex (offset, length, capacity) arrays.  A vertex's vector is
 * pool[off .. off+len); growth bump-allocates a doubled span at the
 * pool cursor (state[0]) and copies -- mirroring the alloc-then-free
 * (AS/AC) or pool-acquire-then-release (BA) of the Python stores,
 * which is replayed from the event log: one (mirror, vertex, newcap)
 * triple per growth.
 *
 * Control block ctl[8]: resume edge index, resume half (0 = out op
 * next, 1 = mirror op next), output row cursor, positive count, event
 * count, stall store flag, stall pool need.  Returns 0 when the batch
 * is complete, 1 on a pool stall (re-enter after growing the numpy
 * pool of the store named by ctl[5]: 0 = out, 1 = mirror).
 * ------------------------------------------------------------------ */

#define VEC_MIN_CAPACITY 4

typedef struct {
    int64_t *off;
    int64_t *len;
    int64_t *cap;
    int64_t *nbr;
    double  *wgt;
    int64_t *state;     /* [0] = pool cursor */
    int64_t  pool_cap;
} VecStore;

/* One search-then-insert; returns 0 ok, -1 stall (need in *need). */
static int vec_insert_op(
    VecStore *s, int64_t u, int64_t v, double w, int64_t mirror,
    int64_t *scanned, uint8_t *hit, int64_t *aux, int64_t row,
    int64_t *events, int64_t *ec, int64_t *positive, int64_t *need)
{
    int64_t off = s->off[u];
    int64_t len = s->len[u];
    int64_t pos = -1;
    const int64_t *nbr = s->nbr + off;
    for (int64_t k = 0; k < len; k++) {
        if (nbr[k] == v) { pos = k; break; }
    }
    if (pos >= 0) {
        scanned[row] = pos + 1;
        hit[row] = 0;
        aux[row] = 0;
        return 0;
    }
    int64_t grew = 0;
    if (len == s->cap[u]) {
        int64_t newcap = s->cap[u] ? s->cap[u] * 2 : VEC_MIN_CAPACITY;
        if (s->state[0] + newcap > s->pool_cap) {
            *need = newcap;
            return -1;
        }
        int64_t noff = s->state[0];
        for (int64_t k = 0; k < len; k++) {
            s->nbr[noff + k] = s->nbr[off + k];
            s->wgt[noff + k] = s->wgt[off + k];
        }
        s->state[0] += newcap;
        s->off[u] = noff;
        s->cap[u] = newcap;
        off = noff;
        grew = len;
        events[3 * *ec] = mirror;
        events[3 * *ec + 1] = u;
        events[3 * *ec + 2] = newcap;
        (*ec)++;
    }
    s->nbr[off + len] = v;
    s->wgt[off + len] = w;
    s->len[u] = len + 1;
    scanned[row] = len;
    hit[row] = 1;
    aux[row] = grew;
    if (!mirror) (*positive)++;
    return 0;
}

static void vec_delete_op(
    VecStore *s, int64_t u, int64_t v, int64_t mirror, int64_t record_moved,
    int64_t *scanned, uint8_t *hit, int64_t *aux, int64_t row,
    int64_t *positive)
{
    int64_t off = s->off[u];
    int64_t len = s->len[u];
    int64_t pos = -1;
    const int64_t *nbr = s->nbr + off;
    for (int64_t k = 0; k < len; k++) {
        if (nbr[k] == v) { pos = k; break; }
    }
    if (pos < 0) {
        scanned[row] = len;
        hit[row] = 0;
        aux[row] = 0;
        return;
    }
    scanned[row] = pos + 1;
    int64_t moved = 0;
    if (pos != len - 1) {
        s->nbr[off + pos] = s->nbr[off + len - 1];
        s->wgt[off + pos] = s->wgt[off + len - 1];
        moved = 1;
    }
    s->len[u] = len - 1;
    hit[row] = 1;
    aux[row] = record_moved ? moved : 0;
    if (!mirror) (*positive)++;
}

int64_t saga_vec_ingest(
    int64_t n, const int64_t *src, const int64_t *dst, const double *wgt,
    int64_t directed, int64_t delete_mode, int64_t record_moved,
    int64_t *o_off, int64_t *o_len, int64_t *o_cap,
    int64_t *o_nbr, double *o_wgt, int64_t *o_state, int64_t o_pool_cap,
    int64_t *i_off, int64_t *i_len, int64_t *i_cap,
    int64_t *i_nbr, double *i_wgt, int64_t *i_state, int64_t i_pool_cap,
    int64_t *scanned, uint8_t *hit, int64_t *aux,
    int64_t *events, int64_t *ctl)
{
    VecStore out = {o_off, o_len, o_cap, o_nbr, o_wgt, o_state, o_pool_cap};
    VecStore in  = {i_off, i_len, i_cap, i_nbr, i_wgt, i_state, i_pool_cap};
    int64_t i = ctl[0];
    int64_t half = ctl[1];
    int64_t row = ctl[2];
    int64_t positive = ctl[3];
    int64_t ec = ctl[4];
    int64_t need = 0;
    for (; i < n; i++) {
        int64_t u = src[i];
        int64_t v = dst[i];
        double w = delete_mode ? 0.0 : wgt[i];
        if (half == 0) {
            if (delete_mode) {
                vec_delete_op(&out, u, v, 0, record_moved,
                              scanned, hit, aux, row, &positive);
            } else if (vec_insert_op(&out, u, v, w, 0,
                                     scanned, hit, aux, row,
                                     events, &ec, &positive, &need)) {
                ctl[0] = i; ctl[1] = 0; ctl[2] = row; ctl[3] = positive;
                ctl[4] = ec; ctl[5] = 0; ctl[6] = need;
                return 1;
            }
            row++;
            half = 1;
        }
        if (u != v || directed) {
            if (delete_mode) {
                vec_delete_op(&in, v, u, 1, record_moved,
                              scanned, hit, aux, row, &positive);
            } else if (vec_insert_op(&in, v, u, w, 1,
                                     scanned, hit, aux, row,
                                     events, &ec, &positive, &need)) {
                ctl[0] = i; ctl[1] = 1; ctl[2] = row; ctl[3] = positive;
                ctl[4] = ec; ctl[5] = 1; ctl[6] = need;
                return 1;
            }
            row++;
        }
        half = 0;
    }
    ctl[0] = n; ctl[1] = 0; ctl[2] = row; ctl[3] = positive; ctl[4] = ec;
    return 0;
}

/* ------------------------------------------------------------------ *
 * Stinger ingest: linked 16-entry edge blocks with fine locks.
 *
 * Store state: a block pool (16-slot neighbor/weight rows plus a fill
 * count, block id == pool slot, ids never reused so state[1] is both
 * the next id and the pool cursor), a flat block-id pool holding each
 * vertex's block list as a (offset, count, capacity) span, and a
 * per-vertex degree array.  Region accounting replays from events:
 * code = mirror*2 + (0 = block allocated, 1 = tail block freed).
 *
 * Stalls: ctl[5] = store, ctl[6] = resource (0 = block-id pool span of
 * ctl[7] slots, 1 = block pool), resume cursor as in the vec kernel.
 * ------------------------------------------------------------------ */

#define ST_BLOCK_CAPACITY 16
#define ST_MIN_LIST 4

typedef struct {
    int64_t  lock_base;
    int64_t *boff;
    int64_t *bcnt;
    int64_t *bcap;
    int64_t *deg;
    int64_t *bids;
    int64_t  bids_cap;
    int64_t *bnbr;
    double  *bwgt;
    int64_t *blen;
    int64_t  blk_cap;
    int64_t *state;   /* [0] = bid-pool cursor, [1] = next block id */
} StStore;

/* Search scan shared by insert and remove: finds (block index, slot)
 * of v and the probe count up to it; -1 block index when absent. */
static void st_find(const StStore *s, int64_t u, int64_t v,
                    int64_t *found_bi, int64_t *found_slot,
                    int64_t *probes_before)
{
    const int64_t *bids = s->bids + s->boff[u];
    int64_t bcnt = s->bcnt[u];
    int64_t acc = 0;
    for (int64_t bi = 0; bi < bcnt; bi++) {
        int64_t bid = bids[bi];
        int64_t len = s->blen[bid];
        const int64_t *nbr = s->bnbr + bid * ST_BLOCK_CAPACITY;
        for (int64_t slot = 0; slot < len; slot++) {
            if (nbr[slot] == v) {
                *found_bi = bi;
                *found_slot = slot;
                *probes_before = acc;
                return;
            }
        }
        acc += len;
    }
    *found_bi = -1;
    *found_slot = -1;
    *probes_before = acc;
}

/* One insert; returns 0 ok, -1 stall (resource/need already in ctl). */
static int st_insert_op(
    StStore *s, int64_t u, int64_t v, double w, int64_t mirror,
    int64_t no_lock, int64_t *chases, int64_t *probes, int64_t *space,
    uint8_t *hit, uint8_t *newblk, int64_t *lock, int64_t row,
    int64_t *events, int64_t *ec, int64_t *positive, int64_t *ctl)
{
    int64_t bi, slot, before;
    st_find(s, u, v, &bi, &slot, &before);
    if (bi >= 0) {
        chases[row] = bi + 1;
        probes[row] = before + slot + 1;
        space[row] = 0;
        hit[row] = 0;
        newblk[row] = 0;
        lock[row] = no_lock;
        return 0;
    }
    int64_t bcnt = s->bcnt[u];
    /* Space scan: first block with a free slot, else a new block. */
    int64_t target = -1;
    const int64_t *bids = s->bids + s->boff[u];
    for (int64_t k = 0; k < bcnt; k++) {
        if (s->blen[bids[k]] < ST_BLOCK_CAPACITY) { target = k; break; }
    }
    int64_t fresh = 0;
    if (target < 0) {
        /* Pre-check both allocations before mutating anything. */
        int64_t list_need = (bcnt == s->bcap[u])
            ? (s->bcap[u] ? s->bcap[u] * 2 : ST_MIN_LIST) : 0;
        if (list_need && s->state[0] + list_need > s->bids_cap) {
            ctl[6] = 0; ctl[7] = list_need;
            return -1;
        }
        if (s->state[1] >= s->blk_cap) {
            ctl[6] = 1; ctl[7] = 0;
            return -1;
        }
        if (list_need) {
            int64_t noff = s->state[0];
            for (int64_t k = 0; k < bcnt; k++)
                s->bids[noff + k] = s->bids[s->boff[u] + k];
            s->state[0] += list_need;
            s->boff[u] = noff;
            s->bcap[u] = list_need;
        }
        int64_t bid = s->state[1]++;
        s->blen[bid] = 0;
        s->bids[s->boff[u] + bcnt] = bid;
        s->bcnt[u] = bcnt + 1;
        events[3 * *ec] = mirror * 2;      /* block allocated */
        events[3 * *ec + 1] = bid;
        events[3 * *ec + 2] = 0;
        (*ec)++;
        target = bcnt;
        fresh = 1;
    }
    int64_t tb = s->bids[s->boff[u] + target];
    int64_t tslot = s->blen[tb];
    s->bnbr[tb * ST_BLOCK_CAPACITY + tslot] = v;
    s->bwgt[tb * ST_BLOCK_CAPACITY + tslot] = w;
    s->blen[tb] = tslot + 1;
    chases[row] = bcnt;
    probes[row] = s->deg[u];
    s->deg[u] += 1;
    space[row] = fresh ? bcnt : target + 1;
    hit[row] = 1;
    newblk[row] = (uint8_t)fresh;
    lock[row] = s->lock_base + tb;
    if (!mirror) (*positive)++;
    return 0;
}

static void st_delete_op(
    StStore *s, int64_t u, int64_t v, int64_t mirror, int64_t no_lock,
    int64_t *chases, int64_t *probes, int64_t *space, uint8_t *hit,
    uint8_t *newblk, int64_t *lock, int64_t row,
    int64_t *events, int64_t *ec, int64_t *positive)
{
    int64_t bi, slot, before;
    st_find(s, u, v, &bi, &slot, &before);
    space[row] = 0;
    if (bi < 0) {
        chases[row] = s->bcnt[u];
        probes[row] = s->deg[u];
        hit[row] = 0;
        newblk[row] = 0;
        lock[row] = no_lock;
        return;
    }
    int64_t tb = s->bids[s->boff[u] + bi];
    int64_t last = s->blen[tb] - 1;
    if (slot != last) {
        s->bnbr[tb * ST_BLOCK_CAPACITY + slot] =
            s->bnbr[tb * ST_BLOCK_CAPACITY + last];
        s->bwgt[tb * ST_BLOCK_CAPACITY + slot] =
            s->bwgt[tb * ST_BLOCK_CAPACITY + last];
    }
    s->blen[tb] = last;
    s->deg[u] -= 1;
    int64_t freed = 0;
    if (last == 0 && bi == s->bcnt[u] - 1) {
        s->bcnt[u] -= 1;
        freed = 1;
        events[3 * *ec] = mirror * 2 + 1;  /* tail block freed */
        events[3 * *ec + 1] = tb;
        events[3 * *ec + 2] = 0;
        (*ec)++;
    }
    chases[row] = bi + 1;
    probes[row] = before + slot + 1;
    hit[row] = 1;
    newblk[row] = (uint8_t)freed;
    lock[row] = s->lock_base + tb;
    if (!mirror) (*positive)++;
}

int64_t saga_stinger_ingest(
    int64_t n, const int64_t *src, const int64_t *dst, const double *wgt,
    int64_t directed, int64_t delete_mode, int64_t no_lock,
    int64_t o_lock_base,
    int64_t *o_boff, int64_t *o_bcnt, int64_t *o_bcap, int64_t *o_deg,
    int64_t *o_bids, int64_t o_bids_cap,
    int64_t *o_bnbr, double *o_bwgt, int64_t *o_blen, int64_t o_blk_cap,
    int64_t *o_state,
    int64_t i_lock_base,
    int64_t *i_boff, int64_t *i_bcnt, int64_t *i_bcap, int64_t *i_deg,
    int64_t *i_bids, int64_t i_bids_cap,
    int64_t *i_bnbr, double *i_bwgt, int64_t *i_blen, int64_t i_blk_cap,
    int64_t *i_state,
    int64_t *chases, int64_t *probes, int64_t *space, uint8_t *hit,
    uint8_t *newblk, int64_t *lock,
    int64_t *events, int64_t *ctl)
{
    StStore out = {o_lock_base, o_boff, o_bcnt, o_bcap, o_deg,
                   o_bids, o_bids_cap, o_bnbr, o_bwgt, o_blen, o_blk_cap,
                   o_state};
    StStore in  = {i_lock_base, i_boff, i_bcnt, i_bcap, i_deg,
                   i_bids, i_bids_cap, i_bnbr, i_bwgt, i_blen, i_blk_cap,
                   i_state};
    int64_t i = ctl[0];
    int64_t half = ctl[1];
    int64_t row = ctl[2];
    int64_t positive = ctl[3];
    int64_t ec = ctl[4];
    for (; i < n; i++) {
        int64_t u = src[i];
        int64_t v = dst[i];
        double w = delete_mode ? 0.0 : wgt[i];
        if (half == 0) {
            if (delete_mode) {
                st_delete_op(&out, u, v, 0, no_lock, chases, probes, space,
                             hit, newblk, lock, row, events, &ec, &positive);
            } else if (st_insert_op(&out, u, v, w, 0, no_lock,
                                    chases, probes, space, hit, newblk, lock,
                                    row, events, &ec, &positive, ctl)) {
                ctl[0] = i; ctl[1] = 0; ctl[2] = row; ctl[3] = positive;
                ctl[4] = ec; ctl[5] = 0;
                return 1;
            }
            row++;
            half = 1;
        }
        if (u != v || directed) {
            if (delete_mode) {
                st_delete_op(&in, v, u, 1, no_lock, chases, probes, space,
                             hit, newblk, lock, row, events, &ec, &positive);
            } else if (st_insert_op(&in, v, u, w, 1, no_lock,
                                    chases, probes, space, hit, newblk, lock,
                                    row, events, &ec, &positive, ctl)) {
                ctl[0] = i; ctl[1] = 1; ctl[2] = row; ctl[3] = positive;
                ctl[4] = ec; ctl[5] = 1;
                return 1;
            }
            row++;
        }
        half = 0;
    }
    ctl[0] = n; ctl[1] = 0; ctl[2] = row; ctl[3] = positive; ctl[4] = ec;
    return 0;
}

/* ------------------------------------------------------------------ *
 * DAH ingest (degree-aware hashing).
 *
 * Store state: per-chunk Robin Hood low tables (key arena + parallel
 * value arena of inline-array ids) and open-address high tables (value
 * arena of neighbor-set ids); neighbor sets are open-address tables in
 * a shared (key, weight) arena.  Table growth bump-allocates a doubled
 * span at the matching arena cursor (old spans are leaked -- arenas
 * are backing storage, not the simulated memory, which Python replays
 * from the event log: LOW_RESIZE / HIGH_RESIZE / SET_NEW / SET_RESIZE,
 * +4 when on the mirror store).
 *
 * Every operation pre-checks the worst-case arena space it could need
 * BEFORE mutating anything, so a stalled op re-runs cleanly after
 * Python grows the numpy arena named by ctl[6] (0 = low-key arena,
 * 1 = high-key arena, 2 = inline pool, 3 = set arena, 4 = set
 * metadata arrays), with the span need in ctl[7].
 * ------------------------------------------------------------------ */

#define DAH_EMPTY (-1)
#define DAH_TOMB  (-2)
#define DAH_INLINE_CAP 17   /* threshold 16 + the slot that triggers the flush */
#define DAH_SET_INIT 32

typedef struct {
    int64_t  chunks;
    int64_t *loff, *lcap, *lsize;   /* low tables: spans in lkeys/lval */
    int64_t *lkeys, *lval;
    int64_t  lkeys_cap;
    int64_t *hoff, *hcap, *hsize;   /* high tables: spans in hkeys/hval */
    int64_t *hkeys, *hval;
    int64_t  hkeys_cap;
    int64_t *inl_nbr;               /* [DAH_INLINE_CAP * inline_cap] */
    double  *inl_wgt;
    int64_t *inl_len;
    int64_t  inline_cap;
    int64_t *inl_free;              /* free-id stack, top in state[3] */
    int64_t *soff, *scap, *ssize;   /* per-set metadata, indexed by id */
    int64_t  set_meta_cap;
    int64_t *skeys;                 /* set arena (parallel swgt) */
    double  *swgt;
    int64_t  skeys_cap;
    int64_t *state;  /* [0]=lkeys cursor [1]=hkeys cursor [2]=inline next
                        [3]=inline free top [4]=set cursor [5]=set count */
} DahStore;

/* Pointers and capacities arrive packed in an int64 descriptor so the
 * ctypes signature stays flat; see NativeDAHStore._descriptor(). */
static void dah_unpack(const int64_t *d, DahStore *s)
{
    s->chunks = d[0];
    s->loff = (int64_t *)d[1]; s->lcap = (int64_t *)d[2];
    s->lsize = (int64_t *)d[3];
    s->lkeys = (int64_t *)d[4]; s->lval = (int64_t *)d[5];
    s->lkeys_cap = d[6];
    s->hoff = (int64_t *)d[7]; s->hcap = (int64_t *)d[8];
    s->hsize = (int64_t *)d[9];
    s->hkeys = (int64_t *)d[10]; s->hval = (int64_t *)d[11];
    s->hkeys_cap = d[12];
    s->inl_nbr = (int64_t *)d[13]; s->inl_wgt = (double *)d[14];
    s->inl_len = (int64_t *)d[15];
    s->inline_cap = d[16];
    s->inl_free = (int64_t *)d[17];
    s->soff = (int64_t *)d[18]; s->scap = (int64_t *)d[19];
    s->ssize = (int64_t *)d[20];
    s->set_meta_cap = d[21];
    s->skeys = (int64_t *)d[22]; s->swgt = (double *)d[23];
    s->skeys_cap = d[24];
    s->state = (int64_t *)d[25];
}

static int64_t dah_hash(int64_t key, int64_t mask)
{
    uint64_t h = (uint64_t)key * 0x9E3779B97F4A7C15ULL;
    return (int64_t)((h >> 17) & (uint64_t)mask);
}

/* (size + 1) / cap > 0.7 with cap a power of two: exact for every
 * reachable capacity (first divergence needs cap >= 2^52). */
static int dah_over_load(int64_t size, int64_t cap)
{
    return 10 * (size + 1) > 7 * cap;
}

/* Robin Hood probe; returns slot or -1, probe count in *probes. */
static int64_t rh_get(const int64_t *keys, int64_t cap, int64_t key,
                      int64_t *probes)
{
    int64_t mask = cap - 1;
    int64_t slot = dah_hash(key, mask);
    int64_t distance = 0, p = 0;
    for (;;) {
        p++;
        int64_t occ = keys[slot];
        if (occ == DAH_EMPTY) { *probes = p; return -1; }
        if (occ == key) { *probes = p; return slot; }
        if (((slot - dah_hash(occ, mask)) & mask) < distance) {
            *probes = p; return -1;
        }
        slot = (slot + 1) & mask;
        distance++;
    }
}

/* Rehash-time Robin Hood insert (unique keys, no counting). */
static void rh_raw_insert(int64_t *keys, int64_t *vals, int64_t cap,
                          int64_t key, int64_t val)
{
    int64_t mask = cap - 1;
    int64_t slot = dah_hash(key, mask);
    int64_t ck = key, cv = val, cd = 0;
    for (;;) {
        int64_t occ = keys[slot];
        if (occ == DAH_EMPTY) { keys[slot] = ck; vals[slot] = cv; return; }
        int64_t od = (slot - dah_hash(occ, mask)) & mask;
        if (od < cd) {
            int64_t t = keys[slot]; keys[slot] = ck; ck = t;
            t = vals[slot]; vals[slot] = cv; cv = t;
            cd = od;
        }
        slot = (slot + 1) & mask;
        cd++;
    }
}

/* Low-table put (space pre-checked by the caller); emits LOW_RESIZE. */
static int64_t low_put(DahStore *s, int64_t c, int64_t key, int64_t val,
                       int64_t mirror, int64_t *probes,
                       int64_t *events, int64_t *ec)
{
    int64_t moved = 0;
    if (dah_over_load(s->lsize[c], s->lcap[c])) {
        int64_t ocap = s->lcap[c], ooff = s->loff[c];
        int64_t ncap = ocap * 2, noff = s->state[0];
        for (int64_t i = 0; i < ncap; i++) s->lkeys[noff + i] = DAH_EMPTY;
        /* Slot-order rehash, as Python's _snapshot + _raw_insert. */
        for (int64_t i = 0; i < ocap; i++) {
            int64_t k = s->lkeys[ooff + i];
            if (k == DAH_EMPTY) continue;
            rh_raw_insert(s->lkeys + noff, s->lval + noff, ncap,
                          k, s->lval[ooff + i]);
            moved++;
        }
        s->state[0] += ncap;
        s->loff[c] = noff;
        s->lcap[c] = ncap;
        events[3 * *ec] = mirror * 4;        /* LOW_RESIZE */
        events[3 * *ec + 1] = c;
        events[3 * *ec + 2] = ncap;
        (*ec)++;
    }
    int64_t *keys = s->lkeys + s->loff[c];
    int64_t *vals = s->lval + s->loff[c];
    int64_t mask = s->lcap[c] - 1;
    int64_t slot = dah_hash(key, mask);
    int64_t p = 0;
    int64_t ck = key, cv = val, cd = 0;
    for (;;) {
        p++;
        int64_t occ = keys[slot];
        if (occ == DAH_EMPTY) {
            keys[slot] = ck; vals[slot] = cv;
            s->lsize[c] += 1;
            break;
        }
        /* Unique ingestion: the replace branch is unreachable (the
         * caller probed first), so only steal-and-continue remains. */
        int64_t od = (slot - dah_hash(occ, mask)) & mask;
        if (od < cd) {
            int64_t t = keys[slot]; keys[slot] = ck; ck = t;
            t = vals[slot]; vals[slot] = cv; cv = t;
            cd = od;
        }
        slot = (slot + 1) & mask;
        cd++;
    }
    *probes = p;
    return moved;
}

/* Robin Hood delete with backward shift; probe count in *probes. */
static void rh_delete(int64_t *keys, int64_t *vals, int64_t cap,
                      int64_t key, int64_t *probes)
{
    int64_t slot = rh_get(keys, cap, key, probes);
    if (slot < 0) return;
    int64_t mask = cap - 1;
    for (;;) {
        int64_t nxt = (slot + 1) & mask;
        int64_t occ = keys[nxt];
        if (occ == DAH_EMPTY || dah_hash(occ, mask) == nxt) break;
        keys[slot] = occ;
        vals[slot] = vals[nxt];
        slot = nxt;
    }
    keys[slot] = DAH_EMPTY;
    vals[slot] = 0;
}

/* Open-address probe; returns slot or -1, probe count in *probes. */
static int64_t oa_get(const int64_t *keys, int64_t cap, int64_t key,
                      int64_t *probes)
{
    int64_t mask = cap - 1;
    int64_t slot = dah_hash(key, mask);
    for (int64_t i = 0; i < cap; i++) {
        int64_t occ = keys[slot];
        if (occ == DAH_EMPTY) { *probes = i + 1; return -1; }
        if (occ != DAH_TOMB && occ == key) { *probes = i + 1; return slot; }
        slot = (slot + 1) & mask;
    }
    *probes = cap;
    return -1;
}

/* Rehash-time open-address insert: fresh table, first empty slot. */
static void oa_raw_insert_i(int64_t *keys, int64_t *vals, int64_t cap,
                            int64_t key, int64_t val)
{
    int64_t mask = cap - 1;
    int64_t slot = dah_hash(key, mask);
    while (keys[slot] != DAH_EMPTY) slot = (slot + 1) & mask;
    keys[slot] = key;
    vals[slot] = val;
}

static void oa_raw_insert_d(int64_t *keys, double *vals, int64_t cap,
                            int64_t key, double val)
{
    int64_t mask = cap - 1;
    int64_t slot = dah_hash(key, mask);
    while (keys[slot] != DAH_EMPTY) slot = (slot + 1) & mask;
    keys[slot] = key;
    vals[slot] = val;
}

/* Open-address put into a table with int64 values (the high tables);
 * space pre-checked by the caller; emits HIGH_RESIZE.  The caller
 * probed first, so the key is absent (tombstone reuse still applies). */
static int64_t high_put(DahStore *s, int64_t c, int64_t key, int64_t val,
                        int64_t mirror, int64_t *probes,
                        int64_t *events, int64_t *ec)
{
    int64_t moved = 0;
    if (dah_over_load(s->hsize[c], s->hcap[c])) {
        int64_t ocap = s->hcap[c], ooff = s->hoff[c];
        int64_t ncap = ocap * 2, noff = s->state[1];
        for (int64_t i = 0; i < ncap; i++) s->hkeys[noff + i] = DAH_EMPTY;
        for (int64_t i = 0; i < ocap; i++) {
            int64_t k = s->hkeys[ooff + i];
            if (k == DAH_EMPTY || k == DAH_TOMB) continue;
            oa_raw_insert_i(s->hkeys + noff, s->hval + noff, ncap,
                            k, s->hval[ooff + i]);
            moved++;
        }
        s->hsize[c] = moved;
        s->state[1] += ncap;
        s->hoff[c] = noff;
        s->hcap[c] = ncap;
        events[3 * *ec] = mirror * 4 + 1;    /* HIGH_RESIZE */
        events[3 * *ec + 1] = c;
        events[3 * *ec + 2] = ncap;
        (*ec)++;
    }
    int64_t *keys = s->hkeys + s->hoff[c];
    int64_t *vals = s->hval + s->hoff[c];
    int64_t mask = s->hcap[c] - 1;
    int64_t slot = dah_hash(key, mask);
    int64_t first_tomb = -1;
    int64_t p = 0;
    for (;;) {
        p++;
        int64_t occ = keys[slot];
        if (occ == DAH_EMPTY) {
            int64_t target = first_tomb >= 0 ? first_tomb : slot;
            keys[target] = key;
            vals[target] = val;
            s->hsize[c] += 1;
            break;
        }
        if (occ == DAH_TOMB && first_tomb < 0) first_tomb = slot;
        slot = (slot + 1) & mask;
    }
    *probes = p;
    return moved;
}

/* Neighbor-set put (key absent unless duplicate-checked by caller);
 * emits SET_RESIZE.  Space pre-checked by the caller. */
static int64_t set_put(DahStore *s, int64_t sid, int64_t key, double val,
                       int64_t mirror, int64_t *probes,
                       int64_t *events, int64_t *ec)
{
    int64_t moved = 0;
    if (dah_over_load(s->ssize[sid], s->scap[sid])) {
        int64_t ocap = s->scap[sid], ooff = s->soff[sid];
        int64_t ncap = ocap * 2, noff = s->state[4];
        for (int64_t i = 0; i < ncap; i++) s->skeys[noff + i] = DAH_EMPTY;
        for (int64_t i = 0; i < ocap; i++) {
            int64_t k = s->skeys[ooff + i];
            if (k == DAH_EMPTY || k == DAH_TOMB) continue;
            oa_raw_insert_d(s->skeys + noff, s->swgt + noff, ncap,
                            k, s->swgt[ooff + i]);
            moved++;
        }
        s->ssize[sid] = moved;
        s->state[4] += ncap;
        s->soff[sid] = noff;
        s->scap[sid] = ncap;
        events[3 * *ec] = mirror * 4 + 3;    /* SET_RESIZE */
        events[3 * *ec + 1] = sid;
        events[3 * *ec + 2] = ncap;
        (*ec)++;
    }
    int64_t *keys = s->skeys + s->soff[sid];
    double *vals = s->swgt + s->soff[sid];
    int64_t cap = s->scap[sid];
    int64_t mask = cap - 1;
    int64_t slot = dah_hash(key, mask);
    int64_t first_tomb = -1;
    int64_t p = 0;
    /* Bounded like Python's range(capacity + 1) loop; exhausting it
     * (all slots live or tombstoned) is the state where the reference
     * table raises -- settle for the first tombstone. */
    while (p <= cap) {
        p++;
        int64_t occ = keys[slot];
        if (occ == DAH_EMPTY) {
            int64_t target = first_tomb >= 0 ? first_tomb : slot;
            keys[target] = key;
            vals[target] = val;
            s->ssize[sid] += 1;
            *probes = p;
            return moved;
        }
        if (occ == DAH_TOMB && first_tomb < 0) first_tomb = slot;
        slot = (slot + 1) & mask;
    }
    keys[first_tomb] = key;
    vals[first_tomb] = val;
    s->ssize[sid] += 1;
    *probes = p;
    return moved;
}

/* Fresh neighbor set (space pre-checked); emits SET_NEW. */
static int64_t dah_new_set(DahStore *s, int64_t mirror,
                           int64_t *events, int64_t *ec)
{
    int64_t sid = s->state[5]++;
    int64_t off = s->state[4];
    s->state[4] += DAH_SET_INIT;
    s->soff[sid] = off;
    s->scap[sid] = DAH_SET_INIT;
    s->ssize[sid] = 0;
    for (int64_t i = 0; i < DAH_SET_INIT; i++)
        s->skeys[off + i] = DAH_EMPTY;
    events[3 * *ec] = mirror * 4 + 2;        /* SET_NEW */
    events[3 * *ec + 1] = sid;
    events[3 * *ec + 2] = DAH_SET_INIT;
    (*ec)++;
    return sid;
}

/* One insert; returns 0 ok, -1 stall (resource/need already in ctl). */
static int dah_insert_op(
    DahStore *s, int64_t u, int64_t v, double w, int64_t mirror,
    int64_t *o_probes, int64_t *o_ops, int64_t *o_inline, int64_t *o_degq,
    int64_t *o_flushed, int64_t *o_rehash, uint8_t *o_hit, int64_t *o_chunk,
    int64_t row, int64_t *events, int64_t *ec, int64_t *positive,
    int64_t *ctl)
{
    int64_t c = u % s->chunks;
    int64_t probes;
    int64_t hslot = oa_get(s->hkeys + s->hoff[c], s->hcap[c], u, &probes);
    int64_t hash_ops = 1, table_probes = probes;
    int64_t inline_scanned = 0, degq = 1, flushed = 0, rehash = 0, hit = 0;
    if (hslot >= 0) {
        int64_t sid = s->hval[s->hoff[c] + hslot];
        int64_t gslot = oa_get(s->skeys + s->soff[sid], s->scap[sid], v,
                               &probes);
        hash_ops = 2;
        table_probes += probes;
        if (gslot < 0) {
            int64_t need = dah_over_load(s->ssize[sid], s->scap[sid])
                ? 2 * s->scap[sid] : 0;
            if (need && s->state[4] + need > s->skeys_cap) {
                ctl[6] = 3; ctl[7] = need;
                return -1;
            }
            rehash = set_put(s, sid, v, w, mirror, &probes, events, ec);
            hash_ops = 3;
            table_probes += probes;
            hit = 1;
        }
    } else {
        degq = 2;
        int64_t lslot = rh_get(s->lkeys + s->loff[c], s->lcap[c], u,
                               &probes);
        hash_ops = 2;
        table_probes += probes;
        if (lslot < 0) {
            int64_t need = dah_over_load(s->lsize[c], s->lcap[c])
                ? 2 * s->lcap[c] : 0;
            if (need && s->state[0] + need > s->lkeys_cap) {
                ctl[6] = 0; ctl[7] = need;
                return -1;
            }
            if (s->state[3] == 0 && s->state[2] >= s->inline_cap) {
                ctl[6] = 2; ctl[7] = 0;
                return -1;
            }
            int64_t iid = s->state[3] > 0
                ? s->inl_free[--s->state[3]] : s->state[2]++;
            s->inl_len[iid] = 1;
            s->inl_nbr[iid * DAH_INLINE_CAP] = v;
            s->inl_wgt[iid * DAH_INLINE_CAP] = w;
            rehash = low_put(s, c, u, iid, mirror, &probes, events, ec);
            hash_ops = 3;
            table_probes += probes;
            hit = 1;
        } else {
            int64_t iid = s->lval[s->loff[c] + lslot];
            int64_t len = s->inl_len[iid];
            int64_t *nbr = s->inl_nbr + iid * DAH_INLINE_CAP;
            int64_t dup = 0;
            for (int64_t j = 0; j < len; j++) {
                inline_scanned = j + 1;
                if (nbr[j] == v) { dup = 1; break; }
            }
            if (!dup) {
                inline_scanned = len;
                int64_t flush = len + 1 > DAH_INLINE_CAP - 1;
                if (flush) {
                    /* Pre-check every flush allocation before the
                     * append mutates the inline array. */
                    if (s->state[5] >= s->set_meta_cap) {
                        ctl[6] = 4; ctl[7] = 0;
                        return -1;
                    }
                    if (s->state[4] + DAH_SET_INIT > s->skeys_cap) {
                        ctl[6] = 3; ctl[7] = DAH_SET_INIT;
                        return -1;
                    }
                    int64_t hneed = dah_over_load(s->hsize[c], s->hcap[c])
                        ? 2 * s->hcap[c] : 0;
                    if (hneed && s->state[1] + hneed > s->hkeys_cap) {
                        ctl[6] = 1; ctl[7] = hneed;
                        return -1;
                    }
                }
                nbr[len] = v;
                s->inl_wgt[iid * DAH_INLINE_CAP + len] = w;
                s->inl_len[iid] = len + 1;
                hit = 1;
                if (flush) {
                    int64_t dprobes;
                    rh_delete(s->lkeys + s->loff[c], s->lval + s->loff[c],
                              s->lcap[c], u, &dprobes);
                    s->lsize[c] -= 1;
                    table_probes += dprobes;
                    int64_t sid = dah_new_set(s, mirror, events, ec);
                    double *wgts = s->inl_wgt + iid * DAH_INLINE_CAP;
                    for (int64_t j = 0; j < len + 1; j++) {
                        int64_t gs = oa_get(s->skeys + s->soff[sid],
                                            s->scap[sid], nbr[j], &probes);
                        hash_ops += 1;
                        table_probes += probes;
                        if (gs < 0) {
                            /* 17 entries into a fresh 32-slot table
                             * never crosses the load factor, so this
                             * put cannot stall. */
                            rehash += set_put(s, sid, nbr[j], wgts[j],
                                              mirror, &probes, events, ec);
                            hash_ops += 1;
                            table_probes += probes;
                        }
                        flushed += 1;
                    }
                    rehash += high_put(s, c, u, sid, mirror, &probes,
                                       events, ec);
                    hash_ops += 1;
                    table_probes += probes;
                    s->inl_free[s->state[3]++] = iid;
                }
            }
        }
    }
    o_probes[row] = table_probes;
    o_ops[row] = hash_ops;
    o_inline[row] = inline_scanned;
    o_degq[row] = degq;
    o_flushed[row] = flushed;
    o_rehash[row] = rehash;
    o_hit[row] = (uint8_t)hit;
    o_chunk[row] = c;
    if (!mirror && hit) (*positive)++;
    return 0;
}

/* One remove; never allocates, so it cannot stall. */
static void dah_delete_op(
    DahStore *s, int64_t u, int64_t v, int64_t mirror,
    int64_t *o_probes, int64_t *o_ops, int64_t *o_inline, int64_t *o_degq,
    int64_t *o_flushed, int64_t *o_rehash, uint8_t *o_hit, int64_t *o_chunk,
    int64_t row, int64_t *positive)
{
    int64_t c = u % s->chunks;
    int64_t probes;
    int64_t hslot = oa_get(s->hkeys + s->hoff[c], s->hcap[c], u, &probes);
    int64_t hash_ops = 1, table_probes = probes;
    int64_t inline_scanned = 0, degq = 1, hit = 0;
    if (hslot >= 0) {
        int64_t sid = s->hval[s->hoff[c] + hslot];
        int64_t *keys = s->skeys + s->soff[sid];
        int64_t gslot = oa_get(keys, s->scap[sid], v, &probes);
        hash_ops = 2;
        table_probes += probes;
        if (gslot >= 0) {
            keys[gslot] = DAH_TOMB;
            s->swgt[s->soff[sid] + gslot] = 0.0;
            s->ssize[sid] -= 1;
            hit = 1;
        }
    } else {
        degq = 2;
        int64_t lslot = rh_get(s->lkeys + s->loff[c], s->lcap[c], u,
                               &probes);
        hash_ops = 2;
        table_probes += probes;
        if (lslot >= 0) {
            int64_t iid = s->lval[s->loff[c] + lslot];
            int64_t len = s->inl_len[iid];
            int64_t *nbr = s->inl_nbr + iid * DAH_INLINE_CAP;
            double *wgts = s->inl_wgt + iid * DAH_INLINE_CAP;
            for (int64_t j = 0; j < len; j++) {
                inline_scanned = j + 1;
                if (nbr[j] == v) {
                    nbr[j] = nbr[len - 1];
                    wgts[j] = wgts[len - 1];
                    s->inl_len[iid] = len - 1;
                    hit = 1;
                    if (len - 1 == 0) {
                        int64_t dprobes;
                        rh_delete(s->lkeys + s->loff[c],
                                  s->lval + s->loff[c],
                                  s->lcap[c], u, &dprobes);
                        s->lsize[c] -= 1;
                        table_probes += dprobes;
                        s->inl_free[s->state[3]++] = iid;
                    }
                    break;
                }
            }
        }
    }
    o_probes[row] = table_probes;
    o_ops[row] = hash_ops;
    o_inline[row] = inline_scanned;
    o_degq[row] = degq;
    o_flushed[row] = 0;
    o_rehash[row] = 0;
    o_hit[row] = (uint8_t)hit;
    o_chunk[row] = c;
    if (!mirror && hit) (*positive)++;
}

int64_t saga_dah_ingest(
    int64_t n, const int64_t *src, const int64_t *dst, const double *wgt,
    int64_t directed, int64_t delete_mode,
    const int64_t *out_desc, const int64_t *in_desc,
    int64_t *o_probes, int64_t *o_ops, int64_t *o_inline, int64_t *o_degq,
    int64_t *o_flushed, int64_t *o_rehash, uint8_t *o_hit, int64_t *o_chunk,
    int64_t *events, int64_t *ctl)
{
    DahStore out, in;
    dah_unpack(out_desc, &out);
    dah_unpack(in_desc, &in);
    int64_t i = ctl[0];
    int64_t half = ctl[1];
    int64_t row = ctl[2];
    int64_t positive = ctl[3];
    int64_t ec = ctl[4];
    for (; i < n; i++) {
        int64_t u = src[i];
        int64_t v = dst[i];
        double w = delete_mode ? 0.0 : wgt[i];
        if (half == 0) {
            if (delete_mode) {
                dah_delete_op(&out, u, v, 0, o_probes, o_ops, o_inline,
                              o_degq, o_flushed, o_rehash, o_hit, o_chunk,
                              row, &positive);
            } else if (dah_insert_op(&out, u, v, w, 0, o_probes, o_ops,
                                     o_inline, o_degq, o_flushed, o_rehash,
                                     o_hit, o_chunk, row, events, &ec,
                                     &positive, ctl)) {
                ctl[0] = i; ctl[1] = 0; ctl[2] = row; ctl[3] = positive;
                ctl[4] = ec; ctl[5] = 0;
                return 1;
            }
            row++;
            half = 1;
        }
        if (u != v || directed) {
            if (delete_mode) {
                dah_delete_op(&in, v, u, 1, o_probes, o_ops, o_inline,
                              o_degq, o_flushed, o_rehash, o_hit, o_chunk,
                              row, &positive);
            } else if (dah_insert_op(&in, v, u, w, 1, o_probes, o_ops,
                                     o_inline, o_degq, o_flushed, o_rehash,
                                     o_hit, o_chunk, row, events, &ec,
                                     &positive, ctl)) {
                ctl[0] = i; ctl[1] = 1; ctl[2] = row; ctl[3] = positive;
                ctl[4] = ec; ctl[5] = 1;
                return 1;
            }
            row++;
        }
        half = 0;
    }
    ctl[0] = n; ctl[1] = 0; ctl[2] = row; ctl[3] = positive; ctl[4] = ec;
    return 0;
}
"""


class IngestKernels:
    """ctypes facade over the compiled ingest kernels."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        lib.saga_vec_ingest.restype = ctypes.c_longlong
        lib.saga_vec_ingest.argtypes = [ctypes.c_longlong] * 1 + [
            ctypes.c_void_p,  # src
            ctypes.c_void_p,  # dst
            ctypes.c_void_p,  # wgt
            ctypes.c_longlong,  # directed
            ctypes.c_longlong,  # delete_mode
            ctypes.c_longlong,  # record_moved
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_longlong,
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_longlong,
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_void_p, ctypes.c_void_p,
        ]
        store = [
            ctypes.c_longlong,  # lock_base
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,  # boff/bcnt/bcap
            ctypes.c_void_p,  # deg
            ctypes.c_void_p, ctypes.c_longlong,  # bids, bids_cap
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,  # bnbr/bwgt/blen
            ctypes.c_longlong,  # blk_cap
            ctypes.c_void_p,  # state
        ]
        lib.saga_stinger_ingest.restype = ctypes.c_longlong
        lib.saga_stinger_ingest.argtypes = (
            [ctypes.c_longlong, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p]
            + [ctypes.c_longlong] * 3
            + store
            + store
            + [ctypes.c_void_p] * 8
        )
        lib.saga_dah_ingest.restype = ctypes.c_longlong
        lib.saga_dah_ingest.argtypes = (
            [ctypes.c_longlong, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p]
            + [ctypes.c_longlong] * 2
            + [ctypes.c_void_p] * 12  # descriptors, outputs, events, ctl
        )

    @staticmethod
    def _p(array: np.ndarray) -> int:
        return array.ctypes.data

    def vec_ingest(self, *args) -> int:
        return int(self._lib.saga_vec_ingest(*args))

    def stinger_ingest(self, *args) -> int:
        return int(self._lib.saga_stinger_ingest(*args))

    def dah_ingest(self, *args) -> int:
        return int(self._lib.saga_dah_ingest(*args))


_kernels: Optional[IngestKernels] = None
_disabled: FrozenSet[str] = frozenset()
_tried = False


def _disabled_structures() -> FrozenSet[str]:
    raw = os.environ.get(DISABLE_ENV, "").strip()
    if not raw:
        return frozenset()
    if raw in {"1", "all", "true"}:
        return STRUCTURE_NAMES
    names = frozenset(part.strip() for part in raw.split(",") if part.strip())
    unknown = names - STRUCTURE_NAMES
    if unknown:
        raise ValueError(
            f"{DISABLE_ENV} names unknown structures {sorted(unknown)}; "
            f"known: {sorted(STRUCTURE_NAMES)}"
        )
    return names


def _probe() -> Optional[IngestKernels]:
    global _kernels, _disabled, _tried
    if _tried:
        return _kernels
    _tried = True
    _disabled = _disabled_structures()
    if _disabled == STRUCTURE_NAMES:
        return None
    try:
        _kernels = IngestKernels(load_library(_SOURCE, "saga_ingest"))
    except Exception as exc:
        if os.environ.get(REQUIRE_ENV):
            raise RuntimeError(
                f"{REQUIRE_ENV} is set but the ingest kernels failed to "
                f"build: {exc}"
            ) from exc
        _kernels = None
    return _kernels


def get(structure: str) -> Optional[IngestKernels]:
    """The compiled kernels if ``structure``'s ingest is enabled.

    ``structure`` must be one of :data:`STRUCTURE_NAMES`; each data
    structure gates its native store on its own name so individual
    structures can fall back to the Python stores for differential
    debugging.
    """
    kernels = _probe()
    if kernels is None or structure in _disabled:
        return None
    return kernels


def loaded() -> bool:
    """True when the compiled library is built and loadable.

    The bench scripts embed this in ``BENCH_kernels.json`` so a silent
    Python fallback cannot masquerade as a perf change.
    """
    return _probe() is not None


def reset() -> None:
    """Forget the cached probe result and env parse (test hook)."""
    global _kernels, _disabled, _tried
    _kernels = None
    _disabled = frozenset()
    _tried = False

"""Optional compiled event-loop kernel for the columnar scheduler.

The structure-of-arrays task layout (:class:`repro.sim.tasks.TaskArray`)
makes the discrete-event scheduler loop a pure function of a handful of
contiguous float64/int64 columns, so it can be compiled once with the
system C compiler and called through :mod:`ctypes` -- no third-party
build machinery, no new Python dependencies.

The kernel is a strict drop-in for the Python loop in
``DynamicScheduler._run_array_event_loop``:

- the float arithmetic is adds/subtracts written in the identical
  order (there are no multiply-adds for the compiler to contract, and
  the build passes ``-ffp-contract=off`` anyway), so every IEEE
  float64 intermediate matches the Python loop bit for bit;
- the free-thread heap holds totally ordered distinct ``(end, thread)``
  pairs, and pops of such a heap always yield the minimum regardless
  of internal arrangement, so the schedule cannot diverge.

Availability is best-effort: if no C compiler is present, the build
fails, or ``SAGA_BENCH_NO_CKERNEL=1`` is set, :func:`get_kernel`
returns ``None`` and the scheduler silently uses the Python loop.
The compiled object is cached under a content-hashed filename (in
``SAGA_BENCH_CKERNEL_DIR`` or the system temp dir), so the compiler
runs at most once per source revision per machine.
"""

from __future__ import annotations

import ctypes
import os
from typing import Optional

from repro.sim.cbuild import CACHE_DIR_ENV, load_library

#: Environment variable that disables the compiled kernel entirely.
DISABLE_ENV = "SAGA_BENCH_NO_CKERNEL"

__all__ = ["DISABLE_ENV", "CACHE_DIR_ENV", "get_kernel", "reset"]

#: The kernel keeps its heap in fixed stack arrays of this size.
MAX_KERNEL_THREADS = 64

_SOURCE = r"""
#include <stdint.h>

/* Discrete-event scheduler loop over columnar task streams.
 *
 * Mirrors DynamicScheduler._run_array_event_loop operation for
 * operation: same IEEE float64 adds/subtracts in the same order, and
 * a binary min-heap of (end, thread) pairs under the lexicographic
 * order Python's tuple comparison uses.  `locks` holds dense lock ids
 * (negative = lock-free task); `lock_free` must be zero-initialised,
 * matching the Python loop's dict.get(lock, 0.0) default.
 *
 * Outputs: per-task thread assignment, per-thread busy cycles, the
 * contended task indices and their wait times (prefix of length equal
 * to the returned count), and the makespan.
 */
int64_t saga_event_loop(
    int64_t n,
    int64_t threads,
    double dispatch,
    const double *unlocked_scaled,
    const int64_t *locks,
    const double *locked_scaled,
    const double *locked_uncont,
    const double *locked_cont,
    double *lock_free,
    double *busy,
    int32_t *assignment,
    int64_t *contended_idx,
    double *waits,
    double *makespan_out)
{
    double end_heap[64];
    int64_t tid_heap[64];
    int64_t t, i, contended = 0;
    if (threads > 64)
        return -1;
    for (t = 0; t < threads; t++) {
        end_heap[t] = 0.0;
        tid_heap[t] = t;
    }
    for (i = 0; i < n; i++) {
        double t_free = end_heap[0];
        int64_t tid = tid_heap[0];
        double unlocked_end = (t_free + dispatch) + unlocked_scaled[i];
        int64_t lock = locks[i];
        double end;
        if (lock >= 0) {
            double acquire_ready = lock_free[lock];
            if (acquire_ready > unlocked_end) {
                contended_idx[contended] = i;
                waits[contended] = acquire_ready - unlocked_end;
                contended++;
                end = acquire_ready + locked_cont[i];
            } else {
                end = unlocked_end + locked_uncont[i];
            }
            lock_free[lock] = end;
        } else {
            end = unlocked_end + locked_scaled[i];
        }
        assignment[i] = (int32_t)tid;
        busy[tid] += end - t_free;
        /* heapreplace((end, tid)): sift the new root down. */
        {
            int64_t pos = 0;
            for (;;) {
                int64_t child = 2 * pos + 1;
                int64_t right;
                if (child >= threads)
                    break;
                right = child + 1;
                if (right < threads &&
                    (end_heap[right] < end_heap[child] ||
                     (end_heap[right] == end_heap[child] &&
                      tid_heap[right] < tid_heap[child])))
                    child = right;
                if (end_heap[child] < end ||
                    (end_heap[child] == end && tid_heap[child] < tid)) {
                    end_heap[pos] = end_heap[child];
                    tid_heap[pos] = tid_heap[child];
                    pos = child;
                } else {
                    break;
                }
            }
            end_heap[pos] = end;
            tid_heap[pos] = tid;
        }
    }
    {
        double makespan = end_heap[0];
        for (t = 1; t < threads; t++)
            if (end_heap[t] > makespan)
                makespan = end_heap[t];
        *makespan_out = makespan;
    }
    return contended;
}
"""

_kernel: Optional[ctypes.CFUNCTYPE] = None
_tried = False


def _load():
    lib = load_library(_SOURCE, "saga_event_loop")
    fn = lib.saga_event_loop
    fn.restype = ctypes.c_int64
    fn.argtypes = [
        ctypes.c_int64,  # n
        ctypes.c_int64,  # threads
        ctypes.c_double,  # dispatch
        ctypes.c_void_p,  # unlocked_scaled
        ctypes.c_void_p,  # locks (dense)
        ctypes.c_void_p,  # locked_scaled
        ctypes.c_void_p,  # locked_uncont
        ctypes.c_void_p,  # locked_cont
        ctypes.c_void_p,  # lock_free
        ctypes.c_void_p,  # busy
        ctypes.c_void_p,  # assignment
        ctypes.c_void_p,  # contended_idx
        ctypes.c_void_p,  # waits
        ctypes.c_void_p,  # makespan_out
    ]
    return fn


def get_kernel():
    """The compiled event-loop entry point, or ``None`` if unavailable."""
    global _kernel, _tried
    if _tried:
        return _kernel
    _tried = True
    if os.environ.get(DISABLE_ENV):
        return None
    try:
        _kernel = _load()
    except Exception:
        _kernel = None
    return _kernel


def reset():
    """Forget the cached probe result (test hook)."""
    global _kernel, _tried
    _kernel = None
    _tried = False

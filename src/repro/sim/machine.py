"""Machine description for the simulated testbed.

The paper's platform (Section IV-A) is a dual-socket Intel Xeon Gold
6142 (Skylake) server: 16 physical cores per socket, 2-way SMT (64
hardware threads total), 32KB private L1D per core, 1MB private L2 per
core, 22MB shared LLC per socket, 768GB DRAM with 128GB/s per-socket
memory bandwidth, and three QPI links providing 68.1GB/s in each
direction.  :data:`SKYLAKE_GOLD_6142` encodes exactly that machine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

#: Size of a cache line in bytes on every machine we model.
CACHE_LINE_BYTES = 64

#: Size of the pages interleaved round-robin across sockets.
PAGE_BYTES = 4096


@dataclass(frozen=True)
class MachineConfig:
    """A dual-socket shared-memory server, described structurally.

    All capacity fields are in bytes and all bandwidths in bytes per
    second so that derived counters never need unit juggling.
    """

    sockets: int = 2
    cores_per_socket: int = 16
    smt: int = 2
    frequency_hz: float = 2.6e9
    l1d_bytes: int = 32 * 1024
    l2_bytes: int = 1024 * 1024
    llc_bytes_per_socket: int = 22 * 1024 * 1024
    dram_bandwidth_per_socket: float = 128e9
    qpi_bandwidth_per_direction: float = 68.1e9
    l1_ways: int = 8
    l2_ways: int = 16
    llc_ways: int = 11
    line_bytes: int = CACHE_LINE_BYTES
    page_bytes: int = PAGE_BYTES

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ConfigError(f"sockets must be >= 1, got {self.sockets}")
        if self.cores_per_socket < 1:
            raise ConfigError(
                f"cores_per_socket must be >= 1, got {self.cores_per_socket}"
            )
        if self.smt < 1:
            raise ConfigError(f"smt must be >= 1, got {self.smt}")
        if self.frequency_hz <= 0:
            raise ConfigError(f"frequency_hz must be > 0, got {self.frequency_hz}")
        for name in ("l1d_bytes", "l2_bytes", "llc_bytes_per_socket"):
            value = getattr(self, name)
            if value <= 0 or value % self.line_bytes:
                raise ConfigError(
                    f"{name} must be a positive multiple of the line size, got {value}"
                )

    @property
    def physical_cores(self) -> int:
        """Total physical cores across all sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def hardware_threads(self) -> int:
        """Total hardware execution threads (cores x SMT)."""
        return self.physical_cores * self.smt

    @property
    def total_llc_bytes(self) -> int:
        """Aggregate LLC capacity across sockets."""
        return self.sockets * self.llc_bytes_per_socket

    @property
    def total_dram_bandwidth(self) -> float:
        """Aggregate peak DRAM bandwidth across sockets (bytes/s)."""
        return self.sockets * self.dram_bandwidth_per_socket

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a simulated cycle count to seconds at this clock."""
        return cycles / self.frequency_hz

    def socket_of_page(self, address: int) -> int:
        """Home socket of an address under round-robin page interleaving.

        The simulated OS interleaves 4KB pages across sockets, which is
        the default first-touch-free policy we assume for the traffic
        model feeding the QPI counters.
        """
        return (address // self.page_bytes) % self.sockets

    def socket_of_core(self, core: int) -> int:
        """Socket that hosts ``core`` (cores are numbered socket-major)."""
        if not 0 <= core < self.physical_cores:
            raise ConfigError(
                f"core {core} out of range for {self.physical_cores} cores"
            )
        return core // self.cores_per_socket

    def with_cores(self, physical_cores: int) -> "MachineConfig":
        """A copy of this machine restricted to ``physical_cores`` cores.

        Used by the Fig. 9(a) core-scaling sweep.  Cores are distributed
        equally among the two sockets, exactly as in the paper, so the
        count must be even for a dual-socket machine.
        """
        if physical_cores < self.sockets or physical_cores % self.sockets:
            raise ConfigError(
                f"core count {physical_cores} cannot be split evenly over "
                f"{self.sockets} sockets"
            )
        return replace(self, cores_per_socket=physical_cores // self.sockets)


#: The paper's characterization platform (Section IV-A).
SKYLAKE_GOLD_6142 = MachineConfig()

#: The same platform with cache capacities scaled down ~500x, matching
#: the ~1000x scale-down of the datasets.  Standard simulation
#: methodology: hit ratios and MPKI are working-set-to-capacity
#: effects, so a faithfully scaled hierarchy on a scaled workload
#: reproduces the full-size machine's behavior on the full workload.
#: Bandwidths stay at native values because both traffic and simulated
#: time scale down together.  Used by the Fig. 9-10 reproduction.
SCALED_SKYLAKE_GOLD_6142 = MachineConfig(
    l1d_bytes=2 * 1024,
    l2_bytes=64 * 1024,
    llc_bytes_per_socket=2 * 1024 * 1024,
    llc_ways=16,
)

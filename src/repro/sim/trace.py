"""Memory-access trace recording.

While a data structure executes a phase it may emit the addresses it
touches into a :class:`TraceRecorder`.  Each access is attributed to the
*task* being executed at the time; after the scheduler assigns tasks to
threads, the cache hierarchy replays the trace with per-thread private
caches and a shared LLC.

Tracing is optional: the software-level profiling (Section V of the
paper) runs without a recorder attached, and the architecture-level
profiling (Section VI) attaches one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class MemoryTrace:
    """A finalized access trace: parallel arrays of equal length."""

    task_ids: np.ndarray  # int64, which task issued the access
    addresses: np.ndarray  # int64, byte address
    is_write: np.ndarray  # bool

    def __post_init__(self) -> None:
        if not (len(self.task_ids) == len(self.addresses) == len(self.is_write)):
            raise ValueError("trace arrays must have equal length")

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def read_count(self) -> int:
        return int(len(self) - self.write_count)

    @property
    def write_count(self) -> int:
        return int(self.is_write.sum())

    def sample(self, max_accesses: int, seed: int = 0) -> "MemoryTrace":
        """An order-preserving systematic sample of at most ``max_accesses``.

        Cache statistics on graph traces are dominated by the access
        *mix* rather than exact interleaving, so a strided subsample
        keeps hit-ratio estimates stable while bounding replay cost.
        """
        n = len(self)
        if n <= max_accesses:
            return self
        stride = n / max_accesses
        rng = np.random.default_rng(seed)
        offsets = np.floor(np.arange(max_accesses) * stride).astype(np.int64)
        offsets = np.minimum(offsets + rng.integers(0, max(1, int(stride))), n - 1)
        return MemoryTrace(
            task_ids=self.task_ids[offsets],
            addresses=self.addresses[offsets],
            is_write=self.is_write[offsets],
        )


class TraceRecorder:
    """Accumulates accesses during a phase; ``finalize`` yields arrays.

    The recorder buffers into plain Python lists (append-dominated
    workload) and converts to numpy once at the end.
    """

    #: Hot paths may skip trace emission entirely when False.
    enabled = True

    def __init__(self) -> None:
        self._task_ids: list = []
        self._addresses: list = []
        self._writes: list = []
        self._current_task = 0

    def begin_task(self, task_id: int) -> None:
        """All subsequent accesses are attributed to ``task_id``."""
        self._current_task = task_id

    def access(self, address: int, write: bool = False) -> None:
        """Record one memory access by the current task."""
        self._task_ids.append(self._current_task)
        self._addresses.append(address)
        self._writes.append(write)

    def access_range(self, base: int, count: int, stride: int, write: bool = False) -> None:
        """Record ``count`` accesses at ``base, base+stride, ...``."""
        task = self._current_task
        for i in range(count):
            self._task_ids.append(task)
            self._addresses.append(base + i * stride)
            self._writes.append(write)

    def __len__(self) -> int:
        return len(self._addresses)

    def finalize(self) -> MemoryTrace:
        """Freeze the buffered accesses into a :class:`MemoryTrace`."""
        return MemoryTrace(
            task_ids=np.asarray(self._task_ids, dtype=np.int64),
            addresses=np.asarray(self._addresses, dtype=np.int64),
            is_write=np.asarray(self._writes, dtype=bool),
        )


class NullRecorder:
    """A no-op recorder used when tracing is disabled.

    It mimics the :class:`TraceRecorder` interface so structures never
    *need* to branch on "is tracing on"; hot paths may still consult
    :attr:`enabled` to skip address computation entirely.
    """

    enabled = False

    def begin_task(self, task_id: int) -> None:  # noqa: D102 - interface stub
        pass

    def access(self, address: int, write: bool = False) -> None:  # noqa: D102
        pass

    def access_range(self, base: int, count: int, stride: int, write: bool = False) -> None:  # noqa: D102
        pass

    def __len__(self) -> int:
        return 0

    def finalize(self) -> Optional[MemoryTrace]:  # noqa: D102
        return None

"""PCM-like derived counters.

The paper measures architecture behavior with Intel Processor Counter
Monitor: cache hit ratios, misses per kilo-instruction (MPKI), memory
bandwidth, and QPI-link utilization.  This module derives the same
quantities from the simulator's primary outputs (a schedule and a cache
replay).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.cache import CacheStats
from repro.sim.machine import MachineConfig
from repro.sim.scheduler import ScheduleResult


@dataclass(frozen=True)
class PhaseCounters:
    """Derived architecture counters for one phase of one batch."""

    seconds: float
    instructions: float
    l2_hit_ratio: float
    llc_hit_ratio: float
    l2_mpki: float
    llc_mpki: float
    memory_bytes: float
    memory_bandwidth: float
    memory_bw_utilization: float
    qpi_bytes: float
    qpi_bandwidth: float
    qpi_utilization: float


def shard_merge_bytes(cross_edges: int, machine: MachineConfig) -> float:
    """Bytes exchanged to merge one batch across vertex shards.

    Every edge whose endpoints live on different shards forces the
    owning shard to push one cache line of updated vertex/adjacency
    state to the remote partition during the merge step -- the same
    line-granularity remote-traffic convention the QPI counters in
    :func:`derive_counters` use (``remote accesses x line_bytes``).
    """
    if cross_edges < 0:
        raise SimulationError(f"cross_edges must be >= 0, got {cross_edges}")
    return float(cross_edges) * machine.line_bytes


def shard_merge_cycles(cross_edges: int, machine: MachineConfig) -> float:
    """Simulated cycles the cross-shard merge of one batch costs.

    The merge traffic crosses the remote-socket link, so it is priced
    at ``qpi_bandwidth_per_direction`` -- partition-parallel updates
    pay the interconnect exactly where a real multi-socket run would.
    """
    seconds = shard_merge_bytes(cross_edges, machine) / (
        machine.qpi_bandwidth_per_direction
    )
    return seconds * machine.frequency_hz


def derive_counters(
    schedule: ScheduleResult,
    cache: CacheStats,
    machine: MachineConfig,
    trace_scale: float = 1.0,
) -> PhaseCounters:
    """Combine a schedule and a cache replay into PCM-style counters.

    ``trace_scale`` compensates for trace sampling: if only ``1/s`` of
    the accesses were replayed, pass ``s`` so that miss *counts* (and
    hence MPKI and bandwidth) are scaled back up; hit *ratios* are
    unaffected by systematic sampling.

    Instructions are estimated as the phase's total work cycles (an
    IPC-of-one convention, stated in EXPERIMENTS.md); MPKI shapes are
    insensitive to the convention because both phases use the same one.
    """
    if trace_scale < 1.0:
        raise SimulationError(f"trace_scale must be >= 1, got {trace_scale}")
    seconds = machine.cycles_to_seconds(schedule.makespan_cycles)
    instructions = max(schedule.total_work_cycles, 1.0)
    kilo_instructions = instructions / 1e3

    l2_misses = cache.l2_misses * trace_scale
    llc_misses = cache.llc_misses * trace_scale
    l2_mpki = l2_misses / kilo_instructions
    llc_mpki = llc_misses / kilo_instructions

    line = machine.line_bytes
    memory_bytes = llc_misses * line
    remote_bytes = cache.remote_memory_accesses * trace_scale * line
    if seconds > 0:
        memory_bw = memory_bytes / seconds
        qpi_bw = remote_bytes / seconds
    else:
        memory_bw = 0.0
        qpi_bw = 0.0
    return PhaseCounters(
        seconds=seconds,
        instructions=instructions,
        l2_hit_ratio=cache.l2_hit_ratio,
        llc_hit_ratio=cache.llc_hit_ratio,
        l2_mpki=l2_mpki,
        llc_mpki=llc_mpki,
        memory_bytes=memory_bytes,
        memory_bandwidth=memory_bw,
        memory_bw_utilization=min(1.0, memory_bw / machine.total_dram_bandwidth),
        qpi_bytes=remote_bytes,
        qpi_bandwidth=qpi_bw,
        qpi_utilization=min(1.0, qpi_bw / machine.qpi_bandwidth_per_direction),
    )

"""Schedulable tasks: the object form and the columnar form.

A *task* is one schedulable unit of simulated work ("insert edge
(u, v)", "evaluate the vertex function of v"), carrying its cycle
costs, the lock it must hold, and the chunk it is pinned to.  Two
representations coexist:

- :class:`Task` -- one Python dataclass per task.  This is the legacy
  representation: friendly to poke at in tests, but every per-edge
  object allocation and attribute access costs interpreter time in the
  hot path (per edge x per batch x per repetition x per thread count).
- :class:`TaskArray` -- a structure-of-arrays batch of tasks (numpy
  columns ``unlocked_work``, ``locked_work``, ``lock``, ``chunk``,
  ``fine_lock``, ``overhead``).  The graph structures emit these in
  bulk and the schedulers consume them as array kernels; makespans,
  lock-wait cycles, contended-acquire counts, and task-to-thread
  assignments are **bit-identical** to the object path (enforced by
  ``tests/test_task_kernels.py``).

The legacy object path stays selectable for differential testing:
setting ``SAGA_BENCH_LEGACY_TASKS=1`` in the environment makes every
data structure emit ``List[Task]`` again and the schedulers run their
original per-object loops.

``TaskArray`` uses the sentinel ``-1`` (:data:`NO_LOCK` /
:data:`NO_CHUNK`) for "no lock" / "no chunk" because the real lock and
chunk namespaces are non-negative.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

#: Column sentinel for "this task takes no lock".
NO_LOCK = -1

#: Column sentinel for "this task is not pinned to a chunk".
NO_CHUNK = -1

#: Environment variable selecting the legacy object-based task path.
LEGACY_TASKS_ENV = "SAGA_BENCH_LEGACY_TASKS"


def use_legacy_tasks() -> bool:
    """True when ``SAGA_BENCH_LEGACY_TASKS=1`` selects the object path."""
    return os.environ.get(LEGACY_TASKS_ENV, "") == "1"


@dataclass
class Task:
    """One schedulable unit of work.

    Attributes
    ----------
    unlocked_work:
        Cycles executed before any lock is taken (e.g. Stinger's search
        scans, which read edge blocks without locking).
    locked_work:
        Cycles executed while holding :attr:`lock`.  Zero for lockless
        tasks.
    lock:
        Identifier of the lock the task must hold for its locked
        portion, or ``None``.  AS uses the source-vertex id; Stinger
        uses a per-edge-block id.
    chunk:
        For chunked-style structures, the chunk this task is pinned to.
    fine_lock:
        True when :attr:`lock` is a fine-grained lock (tiny critical
        section); contended acquires then pay the smaller
        ``fine_lock_contended_penalty``.
    """

    unlocked_work: float
    locked_work: float = 0.0
    lock: Optional[int] = None
    chunk: Optional[int] = None
    fine_lock: bool = False
    #: Fixed per-batch overhead (e.g. chunk routing) rather than
    #: per-edge work; analysis code may separate the two.
    overhead: bool = False

    @property
    def total_work(self) -> float:
        return self.unlocked_work + self.locked_work


class TaskArray:
    """A batch of tasks stored column-wise (structure of arrays).

    Columns are parallel numpy arrays of one dtype each:

    - ``unlocked_work`` / ``locked_work``: float64 cycle costs;
    - ``lock``: int64 lock id, :data:`NO_LOCK` for lockless tasks;
    - ``chunk``: int64 chunk id, :data:`NO_CHUNK` when unpinned;
    - ``fine_lock`` / ``overhead``: bool flags.

    Iteration and indexing materialize :class:`Task` views for
    compatibility with object-path consumers; hot paths read the
    columns directly.
    """

    __slots__ = (
        "unlocked_work",
        "locked_work",
        "lock",
        "chunk",
        "fine_lock",
        "overhead",
    )

    def __init__(
        self,
        unlocked_work: np.ndarray,
        locked_work: np.ndarray,
        lock: np.ndarray,
        chunk: np.ndarray,
        fine_lock: np.ndarray,
        overhead: np.ndarray,
    ) -> None:
        self.unlocked_work = np.asarray(unlocked_work, dtype=np.float64)
        self.locked_work = np.asarray(locked_work, dtype=np.float64)
        self.lock = np.asarray(lock, dtype=np.int64)
        self.chunk = np.asarray(chunk, dtype=np.int64)
        self.fine_lock = np.asarray(fine_lock, dtype=bool)
        self.overhead = np.asarray(overhead, dtype=bool)
        n = len(self.unlocked_work)
        for name in self.__slots__:
            column = getattr(self, name)
            if column.ndim != 1 or len(column) != n:
                raise ValueError(
                    f"column {name!r} must be 1-D of length {n}, "
                    f"got shape {column.shape}"
                )

    # -- constructors --------------------------------------------------

    @classmethod
    def build(
        cls,
        n: int,
        unlocked_work=0.0,
        locked_work=0.0,
        lock=NO_LOCK,
        chunk=NO_CHUNK,
        fine_lock=False,
        overhead=False,
    ) -> "TaskArray":
        """Build an ``n``-task array from columns or broadcast scalars."""

        def column(value, dtype):
            array = np.asarray(value, dtype=dtype)
            if array.ndim == 0:
                return np.full(n, array, dtype=dtype)
            return array

        return cls(
            unlocked_work=column(unlocked_work, np.float64),
            locked_work=column(locked_work, np.float64),
            lock=column(lock, np.int64),
            chunk=column(chunk, np.int64),
            fine_lock=column(fine_lock, bool),
            overhead=column(overhead, bool),
        )

    @classmethod
    def empty(cls) -> "TaskArray":
        return cls.build(0)

    @classmethod
    def from_tasks(cls, tasks: Sequence[Task]) -> "TaskArray":
        """Box a task list into columns (the object -> columnar bridge)."""
        n = len(tasks)
        unlocked = np.empty(n, dtype=np.float64)
        locked = np.empty(n, dtype=np.float64)
        lock = np.empty(n, dtype=np.int64)
        chunk = np.empty(n, dtype=np.int64)
        fine = np.empty(n, dtype=bool)
        overhead = np.empty(n, dtype=bool)
        for i, task in enumerate(tasks):
            unlocked[i] = task.unlocked_work
            locked[i] = task.locked_work
            lock[i] = NO_LOCK if task.lock is None else task.lock
            chunk[i] = NO_CHUNK if task.chunk is None else task.chunk
            fine[i] = task.fine_lock
            overhead[i] = task.overhead
        return cls(unlocked, locked, lock, chunk, fine, overhead)

    @classmethod
    def concatenate(cls, parts: Iterable["TaskArray"]) -> "TaskArray":
        parts = [p for p in parts if len(p)]
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]
        return cls(
            *(
                np.concatenate([getattr(p, name) for p in parts])
                for name in cls.__slots__
            )
        )

    # -- container protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self.unlocked_work)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TaskArray(
                *(getattr(self, name)[index] for name in self.__slots__)
            )
        i = int(index)
        lock = int(self.lock[i])
        chunk = int(self.chunk[i])
        return Task(
            unlocked_work=float(self.unlocked_work[i]),
            locked_work=float(self.locked_work[i]),
            lock=None if lock == NO_LOCK else lock,
            chunk=None if chunk == NO_CHUNK else chunk,
            fine_lock=bool(self.fine_lock[i]),
            overhead=bool(self.overhead[i]),
        )

    def __iter__(self) -> Iterator[Task]:
        for i in range(len(self)):
            yield self[i]

    def to_tasks(self) -> List[Task]:
        """Materialize the columns as a list of :class:`Task` objects."""
        return list(self)

    # -- derived columns ----------------------------------------------

    @property
    def total_work(self) -> np.ndarray:
        """Per-task ``unlocked_work + locked_work`` (float64 column)."""
        return self.unlocked_work + self.locked_work

    @property
    def has_locks(self) -> bool:
        """True when any task must acquire a lock."""
        return bool(len(self)) and bool((self.lock >= 0).any())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        locked = int((self.lock >= 0).sum())
        return f"<TaskArray n={len(self)} locked={locked}>"

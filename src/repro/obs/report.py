"""Self-contained HTML run reports.

One HTML file, zero external assets (no scripts, no fonts, no
stylesheets, no network fetches of any kind): styling is an inline
``<style>`` block and every chart is inline SVG, so the file renders
identically from a file URL on an air-gapped machine and can be
attached to CI runs as a single artifact.

The report is assembled from whatever observability surfaces the run
produced -- each section degrades to an explanatory note when its data
source is absent:

- **phase breakdown** from the span tracer's self-time totals;
- **sweep cells** from the metrics registry's sweep counters;
- **cost-model fit vs observed** scatter + residual charts and the
  per-group coefficient table from a :class:`FittedCostModel` and the
  feature rows it was fitted on;
- **regression verdicts** from :mod:`repro.obs.baseline`;
- **bench history** sparklines from ``BENCH_history.jsonl`` records.

Charts follow the repo's chart conventions: one series-identity color
per role (validated categorical slots 1-2), text in text tokens only,
light and dark from the same markup via ``prefers-color-scheme``.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

# Validated palette (reference instance): categorical slots 1-2 plus
# chrome tokens, each with its dark-surface step.
_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --critical: #d03b3b;
  --good: #0ca30c;
  --border: rgba(11, 11, 11, 0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --series-2: #d95926;
    --critical: #d03b3b;
    --good: #0ca30c;
    --border: rgba(255, 255, 255, 0.10);
  }
}
* { box-sizing: border-box; }
body {
  margin: 0;
  padding: 2rem;
  background: var(--page);
  color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px;
  line-height: 1.5;
}
main { max-width: 72rem; margin: 0 auto; }
h1 { font-size: 1.4rem; margin: 0 0 0.25rem; }
h2 { font-size: 1.05rem; margin: 2rem 0 0.5rem; }
section {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 1rem 1.25rem;
  margin-top: 1rem;
}
.subtitle { color: var(--text-secondary); margin-bottom: 1rem; }
.note { color: var(--text-secondary); font-style: italic; }
table { border-collapse: collapse; width: 100%; margin-top: 0.5rem; }
th, td {
  text-align: left;
  padding: 0.3rem 0.75rem 0.3rem 0;
  border-bottom: 1px solid var(--grid);
}
th { color: var(--text-secondary); font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar-row { display: flex; align-items: center; gap: 0.6rem; margin: 0.2rem 0; }
.bar-label { flex: 0 0 14rem; color: var(--text-secondary); text-align: right; }
.bar-track { flex: 1; }
.bar-fill {
  height: 14px;
  background: var(--series-1);
  border-radius: 0 4px 4px 0;
  min-width: 2px;
}
.bar-value {
  flex: 0 0 7rem;
  color: var(--text-primary);
  font-variant-numeric: tabular-nums;
}
.status-bad { color: var(--critical); font-weight: 600; }
.status-good { color: var(--good); }
.legend { display: flex; gap: 1.25rem; margin: 0.4rem 0; color: var(--text-secondary); }
.legend .swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 0.35rem;
}
.charts { display: flex; flex-wrap: wrap; gap: 1.5rem; }
figure { margin: 0; }
figcaption { color: var(--text-secondary); margin-top: 0.25rem; }
svg text { fill: var(--muted); font-size: 10px; }
svg .axis { stroke: var(--baseline); stroke-width: 1; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .obs { fill: var(--series-1); }
svg .fitline { stroke: var(--series-2); stroke-width: 2; fill: none; }
svg .resid { fill: var(--series-1); }
svg .spark { stroke: var(--series-1); stroke-width: 2; fill: none; }
svg .spark-dot { fill: var(--series-2); }
"""


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f} ms"
    return f"{value * 1e6:.1f} us"


def _fmt_sci(value: float) -> str:
    if value == 0:
        return "0"
    if 1e-3 <= abs(value) < 1e5:
        return f"{value:.4g}"
    return f"{value:.2e}"


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------


def _section(title: str, body: str) -> str:
    return f"<section><h2>{_esc(title)}</h2>\n{body}\n</section>"


def _meta_section(meta: Dict[str, object], metrics) -> str:
    rows = [(str(k), str(v)) for k, v in (meta or {}).items()]
    if metrics is not None:
        for gauge in ("ckernel_loaded", "ingest_ckernel_loaded", "compute_threads"):
            try:
                value = metrics.value(gauge)
            except ValueError:
                continue
            rows.append((gauge, f"{value:g}"))
    if not rows:
        return ""
    cells = "".join(
        f"<tr><td>{_esc(k)}</td><td>{_esc(v)}</td></tr>" for k, v in rows
    )
    return _section(
        "Run environment", f"<table><tbody>{cells}</tbody></table>"
    )


def _phase_section(tracer) -> str:
    totals = tracer.phase_totals() if tracer is not None else {}
    if not totals:
        return _section(
            "Phase breakdown",
            '<p class="note">No span data: run with tracing enabled '
            "(--profile / --trace-out) to populate this section.</p>",
        )
    ordered = sorted(totals.items(), key=lambda kv: kv[1][0], reverse=True)
    top = max(seconds for seconds, _ in totals.values()) or 1.0
    rows = []
    for name, (seconds, entries) in ordered:
        width = max(100.0 * seconds / top, 0.5)
        rows.append(
            '<div class="bar-row">'
            f'<span class="bar-label">{_esc(name)}</span>'
            '<span class="bar-track">'
            f'<div class="bar-fill" style="width:{width:.1f}%"></div></span>'
            f'<span class="bar-value">{_fmt_seconds(seconds)} '
            f"&middot; {entries}&times;</span>"
            "</div>"
        )
    return _section(
        "Phase breakdown",
        "<p class=\"subtitle\">Wall-clock self time per span phase "
        "(entries aggregated across threads and workers).</p>"
        + "".join(rows),
    )


def _sweep_section(metrics) -> str:
    if metrics is None:
        return _section(
            "Sweep cells",
            '<p class="note">No metrics registry captured for this run.</p>',
        )
    per_dataset: List[Tuple[str, int, float]] = []
    computed = cached = 0
    for name, kind, _help, series in metrics.families():
        if name == "sweep_cell_seconds":
            for labelset, metric in series:
                labels = dict(labelset)
                per_dataset.append(
                    (labels.get("dataset", ""), metric.count, metric.sum)
                )
        elif name == "sweep_cells_total":
            for labelset, metric in series:
                labels = dict(labelset)
                if labels.get("status") == "computed":
                    computed += int(metric.value)
                elif labels.get("status") == "cached":
                    cached += int(metric.value)
    if not per_dataset and not (computed or cached):
        return _section(
            "Sweep cells",
            '<p class="note">This run went through no sweep engine cells '
            "(single driver run, or metrics were off).</p>",
        )
    body = (
        f"<p class=\"subtitle\">{computed} cells computed, "
        f"{cached} requests served from cache.</p>"
    )
    if per_dataset:
        rows = "".join(
            f"<tr><td>{_esc(dataset)}</td>"
            f'<td class="num">{count}</td>'
            f'<td class="num">{_fmt_seconds(total)}</td>'
            f'<td class="num">{_fmt_seconds(total / count if count else 0.0)}</td>'
            "</tr>"
            for dataset, count, total in sorted(per_dataset)
        )
        body += (
            '<table><thead><tr><th>dataset</th><th class="num">cells</th>'
            '<th class="num">wall total</th><th class="num">wall mean</th>'
            f"</tr></thead><tbody>{rows}</tbody></table>"
        )
    return _section("Sweep cells", body)


def _fit_chart(fit, rows: List[dict], width: int = 330, height: int = 230) -> str:
    """Observed-vs-fitted scatter with a residual strip underneath."""
    pts = [
        (float(r.get("ops", 0.0)), float(r.get("t_seconds", 0.0)))
        for r in rows
    ]
    if not pts:
        return ""
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_max = max(xs) or 1.0
    y_max = max(max(ys), fit.predict(x_max)) or 1.0
    pad_l, pad_r, pad_t = 46, 8, 8
    scatter_h, resid_h, gap = 140, 44, 22
    plot_w = width - pad_l - pad_r

    def sx(x: float) -> float:
        return pad_l + plot_w * x / x_max

    def sy(y: float) -> float:
        return pad_t + scatter_h * (1.0 - y / y_max)

    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="fit vs observed">'
    ]
    # Scatter panel: axis, observed dots, fitted line.
    parts.append(
        f'<line class="axis" x1="{pad_l}" y1="{pad_t + scatter_h}" '
        f'x2="{width - pad_r}" y2="{pad_t + scatter_h}"/>'
    )
    parts.append(
        f'<line class="axis" x1="{pad_l}" y1="{pad_t}" '
        f'x2="{pad_l}" y2="{pad_t + scatter_h}"/>'
    )
    parts.append(
        f'<text x="{pad_l - 6}" y="{pad_t + 8}" text-anchor="end">'
        f"{_fmt_seconds(y_max)}</text>"
    )
    parts.append(
        f'<text x="{width - pad_r}" y="{pad_t + scatter_h + 12}" '
        f'text-anchor="end">{_fmt_sci(x_max)} ops</text>'
    )
    for x, y in pts:
        parts.append(
            f'<circle class="obs" cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2.5"/>'
        )
    y0, y1 = fit.predict(0.0), fit.predict(x_max)
    parts.append(
        f'<polyline class="fitline" points="{sx(0.0):.1f},{sy(y0):.1f} '
        f'{sx(x_max):.1f},{sy(y1):.1f}"/>'
    )
    # Residual strip: |relative error| per point.
    r_top = pad_t + scatter_h + gap
    rels = [
        (x, abs(fit.predict(x) - y) / y if y > 0 else 0.0) for x, y in pts
    ]
    r_max = max(max(rel for _, rel in rels), 0.15) or 1.0
    parts.append(
        f'<line class="grid" x1="{pad_l}" '
        f'y1="{r_top + resid_h * (1 - 0.15 / r_max):.1f}" '
        f'x2="{width - pad_r}" '
        f'y2="{r_top + resid_h * (1 - 0.15 / r_max):.1f}"/>'
    )
    parts.append(
        f'<line class="axis" x1="{pad_l}" y1="{r_top + resid_h}" '
        f'x2="{width - pad_r}" y2="{r_top + resid_h}"/>'
    )
    parts.append(
        f'<text x="{pad_l - 6}" y="{r_top + 8}" text-anchor="end">'
        f"{r_max * 100:.0f}%</text>"
    )
    parts.append(
        f'<text x="{pad_l - 6}" y="{r_top + resid_h}" text-anchor="end">'
        "resid</text>"
    )
    for x, rel in rels:
        bar_h = resid_h * rel / r_max
        parts.append(
            f'<rect class="resid" x="{sx(x) - 1:.1f}" '
            f'y="{r_top + resid_h - bar_h:.1f}" width="2" '
            f'height="{max(bar_h, 0.5):.1f}"/>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _group_rows(rows: List[dict], fit) -> List[dict]:
    return [
        r
        for r in rows
        if r.get("phase") == fit.phase
        and r.get("structure") == fit.structure
        and str(r.get("algorithm", "")) == fit.algorithm
        and str(r.get("model", "")) == fit.model
    ]


def _model_section(model, features: Optional[List[dict]]) -> str:
    if model is None or not getattr(model, "groups", None):
        return _section(
            "Cost model",
            '<p class="note">No fitted cost model: run with feature capture '
            "enabled (repro report does this automatically).</p>",
        )
    # Coefficient + diagnostics table, worst fits flagged.
    head = (
        "<tr><th>phase</th><th>structure</th><th>algorithm</th><th>model</th>"
        '<th class="num">setup</th><th class="num">per-op</th>'
        '<th class="num">ops/edge</th><th class="num">samples</th>'
        '<th class="num">median rel err</th><th class="num">R&sup2;</th></tr>'
    )
    body_rows = []
    for fit in (model.groups[key] for key in sorted(model.groups)):
        err_class = "status-bad" if fit.median_rel_err > 0.15 else "status-good"
        err_mark = "&#9888; " if fit.median_rel_err > 0.15 else ""
        body_rows.append(
            f"<tr><td>{_esc(fit.phase)}</td><td>{_esc(fit.structure)}</td>"
            f"<td>{_esc(fit.algorithm) or '&mdash;'}</td>"
            f"<td>{_esc(fit.model) or '&mdash;'}</td>"
            f'<td class="num">{_fmt_seconds(fit.setup)}</td>'
            f'<td class="num">{_fmt_sci(fit.per_op)} s</td>'
            f'<td class="num">{_fmt_sci(fit.ops_per_edge)}</td>'
            f'<td class="num">{fit.samples}</td>'
            f'<td class="num {err_class}">{err_mark}'
            f"{fit.median_rel_err * 100:.1f}%</td>"
            f'<td class="num">{fit.r2:.3f}</td></tr>'
        )
    body = (
        "<p class=\"subtitle\">Closed-form fit T = setup + per-op &times; ops "
        "per (phase, structure, algorithm, model); groups above the 15% "
        "median-relative-error bar are flagged.</p>"
        f"<table><thead>{head}</thead><tbody>{''.join(body_rows)}</tbody></table>"
    )
    # Fit-vs-observed charts for the most interesting groups.
    if features:
        worst = sorted(
            model.groups.values(), key=lambda g: g.median_rel_err, reverse=True
        )[:4]
        charts = []
        for fit in worst:
            rows = _group_rows(features, fit)
            svg = _fit_chart(fit, rows)
            if not svg:
                continue
            label = " / ".join(
                part
                for part in (fit.phase, fit.structure, fit.algorithm, fit.model)
                if part
            )
            charts.append(
                f"<figure>{svg}<figcaption>{_esc(label)} &mdash; "
                f"median rel err {fit.median_rel_err * 100:.1f}%"
                "</figcaption></figure>"
            )
        if charts:
            body += (
                '<div class="legend">'
                '<span><span class="swatch" '
                'style="background:var(--series-1)"></span>observed</span>'
                '<span><span class="swatch" '
                'style="background:var(--series-2)"></span>fitted</span>'
                "</div>"
                "<p class=\"subtitle\">Least-well-fitted groups, observed vs "
                "fitted with per-batch |relative error| below (gridline = "
                "the 15% bar).</p>"
                f'<div class="charts">{"".join(charts)}</div>'
            )
    return _section("Cost model", body)


def _verdict_section(verdicts) -> str:
    if verdicts is None:
        return _section(
            "Regression verdicts",
            '<p class="note">No bench history checked in this run.</p>',
        )
    if not verdicts:
        return _section(
            "Regression verdicts",
            '<p class="status-good">No regressions: every tracked timing is '
            "within threshold of its trailing baseline.</p>",
        )
    rows = "".join(
        f"<tr><td>{_esc(v.bench)}</td><td>{_esc(v.timing)}</td>"
        f'<td class="num">{_fmt_seconds(v.current)}</td>'
        f'<td class="num">{_fmt_seconds(v.baseline)}</td>'
        f'<td class="num status-bad">&#9888; {v.ratio:.2f}&times;</td>'
        f"<td>{_esc(v.sha[:12])}</td></tr>"
        for v in verdicts
    )
    return _section(
        "Regression verdicts",
        '<table><thead><tr><th>bench</th><th>timing</th>'
        '<th class="num">current</th><th class="num">baseline</th>'
        '<th class="num">ratio</th><th>sha</th></tr></thead>'
        f"<tbody>{rows}</tbody></table>",
    )


def _autotune_section(autotune: Optional[dict]) -> str:
    if not autotune or not autotune.get("decisions"):
        return _section(
            "Auto-tuner",
            '<p class="note">Not an adaptive run: use '
            "structures=('adaptive',) (repro autotune, or --adaptive on "
            "stream/scale) to populate this section.</p>",
        )
    summary = autotune.get("summary", {})
    decisions = autotune["decisions"]
    predicted = [float(d.get("predicted_seconds", 0.0)) for d in decisions]
    actual = [float(d.get("actual_seconds", 0.0)) for d in decisions]
    body = (
        "<p class=\"subtitle\">Per-batch (structure, model) decisions of "
        f"the online auto-tuner over {_esc(autotune.get('dataset', '?'))}: "
        f"{summary.get('batches', len(decisions))} batches, "
        f"{summary.get('switches', 0)} live migrations costing "
        f"{_fmt_seconds(float(summary.get('migration_seconds', 0.0)))}, "
        "estimated regret vs the best candidate "
        f"{_fmt_seconds(float(summary.get('est_regret_seconds', 0.0)))}.</p>"
    )
    if len(actual) >= 2:
        body += (
            '<div class="legend">'
            '<span><span class="swatch" '
            'style="background:var(--series-1)"></span>actual</span>'
            '<span><span class="swatch" '
            'style="background:var(--series-2)"></span>predicted (dot: '
            "last)</span></div>"
            f"<figure>{_sparkline(actual, width=420)}"
            "<figcaption>actual per-batch latency</figcaption></figure>"
            f"<figure>{_sparkline(predicted, width=420)}"
            "<figcaption>predicted per-batch latency</figcaption></figure>"
        )
    switch_rows = [
        d for d in decisions
        if d.get("reason") in ("switch", "explore", "forced", "start")
        or float(d.get("migration_seconds", 0.0)) > 0.0
    ]
    rows = "".join(
        f"<tr><td class=\"num\">{int(d.get('rep', 0))}</td>"
        f"<td class=\"num\">{int(d.get('batch', 0))}</td>"
        f"<td>{_esc(d.get('structure', ''))}</td>"
        f"<td>{_esc(d.get('reason', ''))}</td>"
        f"<td class=\"num\">"
        f"{_fmt_seconds(float(d.get('predicted_seconds', 0.0)))}</td>"
        f"<td class=\"num\">"
        f"{_fmt_seconds(float(d.get('actual_seconds', 0.0)))}</td>"
        f"<td class=\"num\">"
        f"{_fmt_seconds(float(d.get('migration_seconds', 0.0)))}</td></tr>"
        for d in switch_rows
    )
    if rows:
        body += (
            "<p class=\"subtitle\">Decisions that placed or moved the live "
            "structure (steady-state holds omitted).</p>"
            '<table><thead><tr><th class="num">rep</th>'
            '<th class="num">batch</th><th>structure</th><th>reason</th>'
            '<th class="num">predicted</th><th class="num">actual</th>'
            '<th class="num">migration</th></tr></thead>'
            f"<tbody>{rows}</tbody></table>"
        )
    return _section("Auto-tuner", body)


def _sparkline(values: Sequence[float], width: int = 140, height: int = 28) -> str:
    if len(values) < 2:
        return ""
    v_max = max(values) or 1.0
    v_min = min(values)
    span = (v_max - v_min) or 1.0
    step = (width - 8) / (len(values) - 1)
    points = " ".join(
        f"{4 + i * step:.1f},{4 + (height - 8) * (1 - (v - v_min) / span):.1f}"
        for i, v in enumerate(values)
    )
    last_x = 4 + (len(values) - 1) * step
    last_y = 4 + (height - 8) * (1 - (values[-1] - v_min) / span)
    return (
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="history">'
        f'<polyline class="spark" points="{points}"/>'
        f'<circle class="spark-dot" cx="{last_x:.1f}" cy="{last_y:.1f}" r="3"/>'
        "</svg>"
    )


def _history_section(history: Optional[List[dict]]) -> str:
    if not history:
        return _section(
            "Bench history",
            '<p class="note">No BENCH_history.jsonl records supplied.</p>',
        )
    groups: Dict[Tuple[str, str], List[dict]] = {}
    for record in history:
        key = (str(record.get("bench", "")), str(record.get("fingerprint", "")))
        groups.setdefault(key, []).append(record)
    rows = []
    for (bench, fingerprint), records in sorted(groups.items()):
        latest = records[-1].get("timings", {})
        # Headline timings: the group's largest latest values.
        for timing in sorted(latest, key=lambda k: -latest[k])[:3]:
            series = [
                float(r["timings"][timing])
                for r in records
                if timing in r.get("timings", {})
            ]
            rows.append(
                f"<tr><td>{_esc(bench)}</td><td>{_esc(timing)}</td>"
                f'<td class="num">{len(series)}</td>'
                f'<td class="num">{_fmt_seconds(series[-1])}</td>'
                f"<td>{_sparkline(series)}</td></tr>"
            )
    return _section(
        "Bench history",
        "<p class=\"subtitle\">Min-of-N wall timings per (bench, workload "
        "fingerprint) across recorded runs; the dot marks the latest.</p>"
        '<table><thead><tr><th>bench</th><th>timing</th>'
        '<th class="num">runs</th><th class="num">latest</th>'
        "<th>trend</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>",
    )


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------


def render_report(
    title: str = "SAGA-Bench run report",
    meta: Optional[Dict[str, object]] = None,
    tracer=None,
    metrics=None,
    features: Optional[List[dict]] = None,
    model=None,
    verdicts=None,
    history: Optional[List[dict]] = None,
    autotune: Optional[dict] = None,
) -> str:
    """The full report as one self-contained HTML string.

    Every input is optional; omitted surfaces render as explanatory
    notes so a report is always complete and honest about what the run
    did and did not observe.
    """
    sections = [
        _meta_section(meta or {}, metrics),
        _phase_section(tracer),
        _model_section(model, features),
        _autotune_section(autotune),
        _sweep_section(metrics),
        _verdict_section(verdicts),
        _history_section(history),
    ]
    body = "\n".join(part for part in sections if part)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n<main>\n"
        f"<h1>{_esc(title)}</h1>\n"
        '<p class="subtitle">Single-file report: inline styles and inline '
        "SVG only, no external assets.</p>\n"
        f"{body}\n</main>\n</body>\n</html>\n"
    )


def write_report(path, **kwargs) -> str:
    """Render and write the report; returns the path written."""
    Path(path).write_text(render_report(**kwargs))
    return str(path)

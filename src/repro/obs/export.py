"""Exporters: Chrome ``trace_event`` JSON, Prometheus text, JSONL log.

Three machine-readable views of one run:

- :func:`write_chrome_trace` -- a Perfetto/``chrome://tracing``-loadable
  JSON object.  Wall-clock spans render as complete (``"ph": "X"``)
  events on the real process/threads; each simulated schedule renders
  as its own process lane (one ``pid`` per track label, one ``tid``
  per simulated hardware thread), so the DES schedule appears as a
  gantt chart next to the interpreter time that produced it.
- :func:`write_prometheus` -- the registry in Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / sample lines, histogram
  ``_bucket``/``_sum``/``_count`` expansion), stable ordering.
- :func:`write_jsonl` -- one JSON object per event, for ad-hoc
  ``jq``-style analysis.

All output is deterministic for a deterministic run: events sort by
timestamp (ties broken by lane), JSON keys are emitted in fixed order,
and metric families sort by name and label set.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import SpanTracer

#: pid of the wall-clock (real interpreter) lane in the Chrome trace.
WALL_PID = 1

#: First pid of the simulated-timeline lanes; one pid per track label.
SIM_PID_BASE = 1000


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def chrome_trace_events(tracer: SpanTracer) -> List[dict]:
    """The tracer's contents as a ``traceEvents`` list.

    Metadata (``"M"``) events come first; timed events follow sorted by
    timestamp so the stream is monotonic (ties broken by pid/tid), which
    is what ``scripts/validate_obs.py`` checks in CI.
    """
    meta: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": WALL_PID,
            "tid": 0,
            "args": {"name": "wall clock"},
        }
    ]
    timed: List[dict] = []
    for name, cat, tid, start, dur, cycles, args in tracer.events():
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": _us(start),
            "dur": _us(dur),
            "pid": WALL_PID,
            "tid": tid,
        }
        event_args = dict(args) if args else {}
        if cycles:
            event_args["sim_cycles"] = cycles
        if event_args:
            event["args"] = event_args
        timed.append(event)

    for index, (track, rows) in enumerate(sorted(tracer.sim_tracks().items())):
        pid = SIM_PID_BASE + index
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"sim {track}"},
            }
        )
        seen_threads = set()
        for thread, name, start_us, dur_us in rows:
            if thread not in seen_threads:
                seen_threads.add(thread)
                meta.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": thread,
                        "args": {"name": f"sim thread {thread}"},
                    }
                )
            timed.append(
                {
                    "name": name,
                    "cat": "sim",
                    "ph": "X",
                    "ts": round(start_us, 3),
                    "dur": round(dur_us, 3),
                    "pid": pid,
                    "tid": thread,
                }
            )
    timed.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))
    return meta + timed


def write_chrome_trace(tracer: SpanTracer, path) -> Path:
    """Write the Chrome ``trace_event`` JSON object; returns the path."""
    payload = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "dropped_events": tracer.dropped_events,
            "dropped_sim_events": tracer.dropped_sim_events,
        },
    }
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
    return path


def write_jsonl(tracer: SpanTracer, path) -> Path:
    """Write one JSON object per span event; returns the path."""
    path = Path(path)
    with open(path, "w") as handle:
        for name, cat, tid, start, dur, cycles, args in tracer.events():
            record = {
                "name": name,
                "cat": cat,
                "tid": tid,
                "start_s": round(start, 9),
                "dur_s": round(dur, 9),
            }
            if cycles:
                record["sim_cycles"] = cycles
            if args:
                record["args"] = args
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
    return path


def _format_value(value: float) -> str:
    """Prometheus sample value: integers stay integral."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(pairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _bucket_text(pairs, le: str) -> str:
    inner = ",".join(
        [f'{k}="{_escape(v)}"' for k, v in pairs] + [f'le="{le}"']
    )
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for name, kind, help, series in registry.families():
        # Every family gets HELP and TYPE (scrapers and diffing both
        # want the full header); a family registered without help text
        # falls back to its own name rather than dropping the line.
        lines.append(f"# HELP {name} {_escape(help or name)}")
        lines.append(f"# TYPE {name} {kind}")
        for labelset, metric in series:
            if isinstance(metric, Histogram):
                cumulative = metric.cumulative()
                bounds = [repr(float(b)) for b in metric.buckets] + ["+Inf"]
                for le, count in zip(bounds, cumulative):
                    lines.append(
                        f"{name}_bucket{_bucket_text(labelset, le)} {count}"
                    )
                lines.append(
                    f"{name}_sum{_labels_text(labelset)} "
                    f"{_format_value(metric.sum)}"
                )
                lines.append(
                    f"{name}_count{_labels_text(labelset)} {metric.count}"
                )
            else:
                lines.append(
                    f"{name}{_labels_text(labelset)} "
                    f"{_format_value(metric.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path) -> Path:
    """Write the Prometheus text dump; returns the path."""
    path = Path(path)
    path.write_text(prometheus_text(registry))
    return path

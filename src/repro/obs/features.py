"""Per-batch feature capture: the raw material of the cost model.

The tracer answers "where did the wall time go" and the registry
answers "how much of each thing happened", but neither keeps the
*per-batch join* the cost-model fitter needs: one row per
(batch, phase, structure[, algorithm, model]) carrying the simulated
latency **and** the operation counts that produced it (batch size,
churn, frontier work, degree stats).  :data:`FEATURES` is that third
global: the streaming driver appends rows while it runs, the fitter in
:mod:`repro.obs.model` consumes them.

Same cost contract as the other two singletons: disabled by default,
one attribute check per recording site when off; rows are plain
JSON-safe dicts so they pickle across sweep workers and serialize into
run reports unchanged.

Row schema (see :mod:`repro.obs.model` for how each field is used):

- common: ``phase`` (``"update"`` | ``"compute"``), ``dataset``,
  ``rep``, ``batch``, ``batch_edges``, ``edges_inserted``,
  ``edges_deleted``, ``churn_fraction``, ``num_nodes``, ``num_edges``,
  ``mean_out_degree``, ``max_out_degree``, ``t_seconds`` (the
  simulated phase latency -- the fit target), ``ops`` (the closed-form
  model's abstract operation count);
- update rows: ``structure``;
- compute rows: ``structure``, ``algorithm``, ``model``, plus the ops
  decomposition ``pull_vertices`` / ``push_vertices`` /
  ``pull_degree`` / ``push_degree`` / ``pushes`` / ``cas_ops`` /
  ``scan_ops`` / ``frontier_rounds`` and ``wall_seconds`` (interpreter
  time of the kernel run, shared across the structure rows of one
  algorithm x model execution).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

#: Default cap on stored rows; past it new rows are counted but
#: dropped, so an un-capped full-scale sweep cannot exhaust memory.
DEFAULT_MAX_ROWS = 1_000_000


class FeatureLog:
    """Append-only log of per-batch feature rows.

    Thread-safe (one lock around the list) and cheap when disabled:
    recording sites guard with ``if FEATURES.enabled:`` exactly like
    the metrics registry.
    """

    def __init__(self, max_rows: int = DEFAULT_MAX_ROWS) -> None:
        self.enabled = False
        self.max_rows = max_rows
        self._lock = threading.Lock()
        self._rows: List[dict] = []
        self.dropped_rows = 0

    # -- lifecycle ------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every row (enabled state is untouched)."""
        with self._lock:
            self._rows.clear()
            self.dropped_rows = 0

    # -- write side -----------------------------------------------------

    def record(self, **row) -> None:
        """Append one feature row (values must be JSON-safe scalars)."""
        with self._lock:
            if len(self._rows) >= self.max_rows:
                self.dropped_rows += 1
                return
            self._rows.append(row)

    # -- read side ------------------------------------------------------

    def rows(self, phase: Optional[str] = None) -> List[dict]:
        """Collected rows (copies of the list, rows shared)."""
        with self._lock:
            if phase is None:
                return list(self._rows)
            return [row for row in self._rows if row.get("phase") == phase]

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    # -- cross-process transport ----------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """Picklable snapshot for transport out of a worker process."""
        with self._lock:
            return {"rows": list(self._rows), "dropped_rows": self.dropped_rows}

    def absorb(self, payload: Dict[str, object]) -> None:
        """Merge a worker's :meth:`to_payload` snapshot into this log.

        Append-only and commutative up to row order; the fitter groups
        rows by key, so absorption order never changes a fit.
        """
        with self._lock:
            for row in payload.get("rows", []):
                if len(self._rows) >= self.max_rows:
                    self.dropped_rows += 1
                    continue
                self._rows.append(row)
            self.dropped_rows += int(payload.get("dropped_rows", 0))


#: The process-global feature log the streaming driver records into.
FEATURES = FeatureLog()

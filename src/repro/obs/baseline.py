"""Noise-aware regression detection over the bench history.

Consumes the ``BENCH_history.jsonl`` records written by
:mod:`repro.bench.harness` and compares each (bench, workload
fingerprint) group's **latest** record against the median of a
trailing window of its predecessors.  A timing regresses only when it
fails *both* guards:

- **relative threshold** -- the new time exceeds the baseline by more
  than ``rel_threshold`` (default 25%), so ordinary run-to-run jitter
  stays quiet;
- **absolute floor** -- the excess is larger than ``abs_floor``
  seconds (default 20 ms), so microsecond-scale timings cannot trip
  the relative guard on scheduler noise.

The median baseline makes the detector robust to a single slow
predecessor; comparing only within a fingerprint means a workload
change (different batch size, dataset, churn) starts a fresh baseline
instead of producing false verdicts.  Verdicts are plain dataclasses
with a JSON form, machine-readable by CI.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Default guards; tuned so an injected 2x slowdown on any
#: non-trivial timing is flagged while a bit-identical rerun never is.
DEFAULT_REL_THRESHOLD = 0.25
DEFAULT_ABS_FLOOR = 0.02
DEFAULT_WINDOW = 5


@dataclass
class Verdict:
    """One regressed timing: the machine-readable finding."""

    bench: str
    fingerprint: str
    timing: str
    current: float
    baseline: float
    ratio: float
    rel_threshold: float
    abs_floor: float
    window: int
    sha: str = ""

    def to_json(self) -> dict:
        return {
            "bench": self.bench,
            "fingerprint": self.fingerprint,
            "timing": self.timing,
            "current": self.current,
            "baseline": self.baseline,
            "ratio": round(self.ratio, 4),
            "rel_threshold": self.rel_threshold,
            "abs_floor": self.abs_floor,
            "window": self.window,
            "sha": self.sha,
        }

    def describe(self) -> str:
        return (
            f"{self.bench}[{self.fingerprint}] {self.timing}: "
            f"{self.current:.4f}s vs baseline {self.baseline:.4f}s "
            f"({self.ratio:.2f}x, threshold {1 + self.rel_threshold:.2f}x)"
        )


def _grouped(history: List[dict]) -> Dict[Tuple[str, str], List[dict]]:
    groups: Dict[Tuple[str, str], List[dict]] = {}
    for record in history:
        key = (str(record.get("bench", "")), str(record.get("fingerprint", "")))
        groups.setdefault(key, []).append(record)
    return groups


def detect_regressions(
    history: List[dict],
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    abs_floor: float = DEFAULT_ABS_FLOOR,
    window: int = DEFAULT_WINDOW,
) -> List[Verdict]:
    """Verdicts for the latest record of every (bench, fingerprint).

    ``history`` is :func:`repro.bench.harness.load_history` output (or
    any list of records in append order).  Groups with no predecessor
    produce no verdict -- a first measurement has no baseline.
    """
    verdicts: List[Verdict] = []
    for (bench, fingerprint), records in sorted(_grouped(history).items()):
        if len(records) < 2:
            continue
        current = records[-1]
        trailing = records[-(window + 1) : -1]
        current_timings = current.get("timings", {})
        for timing in sorted(current_timings):
            now = float(current_timings[timing])
            past = [
                float(r["timings"][timing])
                for r in trailing
                if timing in r.get("timings", {})
            ]
            if not past:
                continue
            baseline = statistics.median(past)
            if baseline <= 0:
                continue
            if now <= baseline * (1.0 + rel_threshold):
                continue
            if now - baseline <= abs_floor:
                continue
            verdicts.append(
                Verdict(
                    bench=bench,
                    fingerprint=fingerprint,
                    timing=timing,
                    current=now,
                    baseline=baseline,
                    ratio=now / baseline,
                    rel_threshold=rel_threshold,
                    abs_floor=abs_floor,
                    window=min(window, len(trailing)),
                    sha=str(current.get("sha", "")),
                )
            )
    return verdicts


def inject_slowdown(record: dict, factor: float = 2.0) -> dict:
    """A copy of ``record`` with every timing scaled by ``factor``.

    The detector's self-test appends this synthetic record and requires
    a verdict for it -- proving the pipeline would actually catch a
    real slowdown of that size.
    """
    slowed = json.loads(json.dumps(record))
    slowed["timings"] = {
        key: float(value) * factor for key, value in slowed.get("timings", {}).items()
    }
    slowed["sha"] = f"{record.get('sha', 'unknown')}-injected-x{factor:g}"
    return slowed


def self_test(
    history: List[dict],
    factor: float = 2.0,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    abs_floor: float = DEFAULT_ABS_FLOOR,
    window: int = DEFAULT_WINDOW,
) -> Tuple[bool, str]:
    """Prove the detector on this history: quiet rerun, loud slowdown.

    For every (bench, fingerprint) group with at least one timing above
    the absolute floor: appending a bit-identical copy of the latest
    record must yield **no** verdict for the group, and appending an
    injected ``factor``x slowdown must yield **at least one**.  Returns
    ``(ok, message)``.
    """
    groups = _grouped(history)
    if not groups:
        return False, "history is empty: nothing to self-test"
    kwargs = dict(
        rel_threshold=rel_threshold, abs_floor=abs_floor, window=window
    )
    tested = 0
    for (bench, fingerprint), records in sorted(groups.items()):
        latest = records[-1]
        timings = latest.get("timings", {})
        if not any(float(v) > abs_floor for v in timings.values()):
            continue
        tested += 1
        rerun = detect_regressions(history + [json.loads(json.dumps(latest))], **kwargs)
        rerun = [v for v in rerun if (v.bench, v.fingerprint) == (bench, fingerprint)]
        if rerun:
            return False, (
                f"{bench}[{fingerprint}]: bit-identical rerun raised "
                f"{len(rerun)} verdict(s): {rerun[0].describe()}"
            )
        slowed = detect_regressions(
            history + [inject_slowdown(latest, factor)], **kwargs
        )
        slowed = [
            v for v in slowed if (v.bench, v.fingerprint) == (bench, fingerprint)
        ]
        if not slowed:
            return False, (
                f"{bench}[{fingerprint}]: injected {factor:g}x slowdown "
                "raised no verdict"
            )
    if not tested:
        return False, (
            "no group has a timing above the absolute floor "
            f"({abs_floor}s): self-test would be vacuous"
        )
    return True, f"self-test passed on {tested} group(s)"


def verdicts_to_json(verdicts: List[Verdict]) -> dict:
    """The machine-readable report CI consumes."""
    return {
        "regressions": [v.to_json() for v in verdicts],
        "count": len(verdicts),
    }

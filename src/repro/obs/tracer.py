"""Span tracing: nested, thread-safe, wall-time + simulated-cycle spans.

The tracer is the single timing engine behind three consumers:

- the ``--profile`` phase report (via the :class:`~repro.sim.profiling.PhaseTimer`
  shim, which now reads *self-time* aggregates so nested or re-entered
  phases no longer double-count);
- the Chrome ``trace_event`` export (``--trace-out``), which renders the
  wall-clock span tree plus the *simulated* per-thread task timelines
  recorded by the schedulers;
- the JSONL event log.

Two cost regimes:

- **Disabled** (the default): :meth:`SpanTracer.span` returns a shared
  no-op context manager, so the hot layers pay one attribute check and
  allocate nothing.
- **Enabled**: each span pushes onto a per-thread stack, aggregates its
  self-time (total minus time spent in child spans) into per-name
  totals on exit, and -- when ``keep_events`` is on -- appends one
  completed-event record for the exporters.

Spans carry both wall seconds and an optional *simulated-cycle*
attribution (:meth:`SpanHandle.add_cycles`), so a phase's report can
relate interpreter time to the simulated work it produced.

Everything here is stdlib-only; the tracer must stay importable from
the innermost simulator layers without dragging them in circularly.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

#: Default cap on stored events; past it new events are counted but
#: dropped, so an un-capped full-scale sweep cannot exhaust memory.
DEFAULT_MAX_EVENTS = 500_000

#: Default cap on stored simulated-timeline slices (one slice = one
#: task on one simulated thread).
DEFAULT_MAX_SIM_EVENTS = 200_000


class _NullSpan:
    """Shared no-op span: returned when the tracer is disabled.

    A singleton, so the disabled hot path allocates nothing; its
    mutators swallow their arguments.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add_cycles(self, cycles: float) -> None:
        pass

    def set_args(self, **kwargs) -> None:
        pass


#: The singleton handed out by a disabled tracer.
NULL_SPAN = _NullSpan()


class SpanHandle:
    """One live span: context manager + mutation handle."""

    __slots__ = (
        "_tracer", "name", "cat", "args", "start", "child_seconds", "cycles"
    )

    def __init__(
        self, tracer: "SpanTracer", name: str, cat: str, args: Optional[dict]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = dict(args) if args else None
        self.start = 0.0
        self.child_seconds = 0.0
        self.cycles = 0.0

    def add_cycles(self, cycles: float) -> None:
        """Attribute simulated cycles to this span."""
        self.cycles += cycles

    def set_args(self, **kwargs) -> None:
        """Attach key/value arguments (rendered in the trace viewer)."""
        if self.args is None:
            self.args = {}
        self.args.update(kwargs)

    def __enter__(self) -> "SpanHandle":
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        self._tracer._pop(self, end)
        return False


class _ThreadState(threading.local):
    """Per-thread span stack plus a stable small integer thread id."""

    def __init__(self) -> None:
        self.stack: List[SpanHandle] = []
        self.tid: Optional[int] = None


class SpanTracer:
    """Nested span tracer with per-phase self-time aggregation.

    Thread-safe: span stacks are thread-local; the finished-event list
    and the aggregate tables take a lock only on span exit (spans are
    batch-granular, so this is far off the simulator's hot path).
    """

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        max_sim_events: int = DEFAULT_MAX_SIM_EVENTS,
    ) -> None:
        self.enabled = False
        self.keep_events = False
        self.sim_timeline = False
        self.max_events = max_events
        self.max_sim_events = max_sim_events
        self._lock = threading.Lock()
        self._local = _ThreadState()
        self._epoch = time.perf_counter()
        self._next_tid = 0
        # {name: [self_seconds, entries, cycles]}
        self._totals: Dict[str, List[float]] = {}
        # Finished span events: (name, cat, tid, start_s, dur_s, cycles, args)
        self._events: List[tuple] = []
        self.dropped_events = 0
        # Simulated timeline: {track_label: [(tid_in_track, name,
        #                                     start_us, dur_us), ...]}
        self._sim_tracks: Dict[str, List[tuple]] = {}
        self._sim_count = 0
        self.dropped_sim_events = 0

    # -- lifecycle ------------------------------------------------------

    def enable(
        self, keep_events: bool = False, sim_timeline: bool = False
    ) -> None:
        """Turn the tracer on; flags only ever widen what is collected."""
        self.enabled = True
        self.keep_events = self.keep_events or keep_events
        self.sim_timeline = self.sim_timeline or sim_timeline

    def disable(self) -> None:
        self.enabled = False
        self.keep_events = False
        self.sim_timeline = False

    def reset(self) -> None:
        """Drop all collected data (enabled state is untouched)."""
        with self._lock:
            self._totals.clear()
            self._events.clear()
            self._sim_tracks.clear()
            self._sim_count = 0
            self.dropped_events = 0
            self.dropped_sim_events = 0
            self._epoch = time.perf_counter()

    # -- spans ----------------------------------------------------------

    def span(self, name: str, cat: str = "phase", args: Optional[dict] = None):
        """A context manager timing one span (no-op singleton if disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return SpanHandle(self, name, cat, args)

    def _push(self, span: SpanHandle) -> None:
        self._local.stack.append(span)

    def _pop(self, span: SpanHandle, end: float) -> None:
        stack = self._local.stack
        # Exits are LIFO per thread; tolerate a foreign pop defensively.
        if stack and stack[-1] is span:
            stack.pop()
        duration = end - span.start
        if stack:
            stack[-1].child_seconds += duration
        self_seconds = duration - span.child_seconds
        with self._lock:
            entry = self._totals.get(span.name)
            if entry is None:
                self._totals[span.name] = [self_seconds, 1, span.cycles]
            else:
                entry[0] += self_seconds
                entry[1] += 1
                entry[2] += span.cycles
            if self.keep_events:
                if len(self._events) < self.max_events:
                    self._events.append(
                        (
                            span.name,
                            span.cat,
                            self._thread_id(),
                            span.start - self._epoch,
                            duration,
                            span.cycles,
                            span.args,
                        )
                    )
                else:
                    self.dropped_events += 1

    def add_seconds(self, name: str, seconds: float, cycles: float = 0.0) -> None:
        """Attribute ``seconds`` to ``name`` directly (a leaf span).

        The compatibility path behind ``PhaseTimer.add``; records one
        completed zero-depth interval ending now.
        """
        if not self.enabled:
            return
        with self._lock:
            entry = self._totals.get(name)
            if entry is None:
                self._totals[name] = [seconds, 1, cycles]
            else:
                entry[0] += seconds
                entry[1] += 1
                entry[2] += cycles
            if self.keep_events:
                if len(self._events) < self.max_events:
                    now = time.perf_counter() - self._epoch
                    self._events.append(
                        (name, "phase", self._thread_id(), now - seconds,
                         seconds, cycles, None)
                    )
                else:
                    self.dropped_events += 1

    def instant(self, name: str, cat: str = "event", args: Optional[dict] = None) -> None:
        """Record a zero-duration instant event (if events are kept)."""
        if not (self.enabled and self.keep_events):
            return
        with self._lock:
            if len(self._events) < self.max_events:
                now = time.perf_counter() - self._epoch
                self._events.append((name, cat, self._thread_id(), now, 0.0, 0.0, args))
            else:
                self.dropped_events += 1

    def _thread_id(self) -> int:
        """Small, stable integer id for the calling thread."""
        tid = self._local.tid
        if tid is None:
            tid = self._next_tid
            self._next_tid += 1
            self._local.tid = tid
        return tid

    # -- simulated timeline ---------------------------------------------

    def record_schedule(
        self,
        track: str,
        starts_us,
        ends_us,
        names=None,
    ) -> None:
        """Record one scheduled phase as slices on a simulated track.

        ``track`` names the simulated process/thread group (e.g.
        ``"sim Talk/DAH"``); ``starts_us`` / ``ends_us`` are parallel
        sequences of per-task simulated timestamps in microseconds,
        already offset so consecutive batches abut; ``names`` optionally
        labels each slice (defaults to ``task<N>``).  Each slice lands
        on the simulated thread encoded by the caller via
        :meth:`record_schedule_threads`; use that variant when the
        schedule assigns tasks to threads.
        """
        n = len(starts_us)
        self.record_schedule_threads(track, [0] * n, starts_us, ends_us, names)

    def record_schedule_threads(
        self,
        track: str,
        threads,
        starts_us,
        ends_us,
        names=None,
    ) -> None:
        """Record per-task slices with explicit simulated thread ids."""
        if not (self.enabled and self.sim_timeline):
            return
        n = len(starts_us)
        with self._lock:
            room = self.max_sim_events - self._sim_count
            if room <= 0:
                self.dropped_sim_events += n
                return
            take = min(n, room)
            self.dropped_sim_events += n - take
            slices = self._sim_tracks.setdefault(track, [])
            for i in range(take):
                label = names[i] if names is not None else "task"
                slices.append(
                    (int(threads[i]), label, float(starts_us[i]),
                     float(ends_us[i]) - float(starts_us[i]))
                )
            self._sim_count += take

    # -- read side ------------------------------------------------------

    def phase_totals(self) -> Dict[str, Tuple[float, int]]:
        """{phase: (self seconds, entries)} -- the ``--profile`` view."""
        with self._lock:
            return {
                name: (entry[0], int(entry[1]))
                for name, entry in self._totals.items()
            }

    def phase_cycles(self) -> Dict[str, float]:
        """{phase: simulated cycles attributed via ``add_cycles``}."""
        with self._lock:
            return {name: entry[2] for name, entry in self._totals.items()}

    def events(self) -> List[tuple]:
        """Finished span/instant events, in completion order."""
        with self._lock:
            return list(self._events)

    def sim_tracks(self) -> Dict[str, List[tuple]]:
        """{track label: [(thread, name, start_us, dur_us), ...]}."""
        with self._lock:
            return {track: list(rows) for track, rows in self._sim_tracks.items()}

    # -- cross-process transport ----------------------------------------

    def to_payload(self) -> dict:
        """Picklable snapshot of everything collected so far.

        Workers in a ``--jobs`` pool return this; the parent absorbs it
        with :meth:`absorb`, which is how a sweep's trace covers cells
        that executed in other processes.
        """
        with self._lock:
            return {
                "totals": {k: list(v) for k, v in self._totals.items()},
                "events": list(self._events),
                "sim_tracks": {k: list(v) for k, v in self._sim_tracks.items()},
                "dropped_events": self.dropped_events,
                "dropped_sim_events": self.dropped_sim_events,
            }

    def absorb(self, payload: dict, origin: Optional[str] = None) -> None:
        """Merge a worker's :meth:`to_payload` snapshot into this tracer.

        ``origin`` (e.g. ``"worker-1234"``) prefixes the absorbed span
        events' categories and sim track labels so the exporters can
        place them on their own process lanes.
        """
        prefix = f"{origin}:" if origin else ""
        with self._lock:
            for name, entry in payload.get("totals", {}).items():
                mine = self._totals.get(name)
                if mine is None:
                    self._totals[name] = list(entry)
                else:
                    mine[0] += entry[0]
                    mine[1] += entry[1]
                    mine[2] += entry[2]
            for event in payload.get("events", []):
                if len(self._events) >= self.max_events:
                    self.dropped_events += 1
                    continue
                name, cat, tid, start, dur, cycles, args = event
                self._events.append(
                    (name, prefix + cat if prefix else cat, tid, start, dur,
                     cycles, args)
                )
            for track, rows in payload.get("sim_tracks", {}).items():
                label = prefix + track if prefix else track
                slices = self._sim_tracks.setdefault(label, [])
                for row in rows:
                    if self._sim_count >= self.max_sim_events:
                        self.dropped_sim_events += 1
                        continue
                    slices.append(tuple(row))
                    self._sim_count += 1
            self.dropped_events += payload.get("dropped_events", 0)
            self.dropped_sim_events += payload.get("dropped_sim_events", 0)


#: The process-global tracer every instrumented layer records into.
TRACER = SpanTracer()

"""Span-derived closed-form cost models: ``T = setup + per_op * ops``.

The streaming driver records one feature row per (batch, phase,
structure[, algorithm, model]) into :data:`repro.obs.features.FEATURES`
-- the simulated phase latency together with the abstract operation
count that produced it (see ``_run_ops_decomposition`` in
:mod:`repro.streaming.driver`).  The simulator prices phases linearly
in exactly those counts, so a per-group affine fit recovers the
simulator's own cost surface:

``T(group, ops) = setup(group) + per_op(group) * ops``

where a *group* is ``(phase, structure, algorithm, model)`` (algorithm
and model are empty for the update phase).  The fit is ordinary least
squares with residual diagnostics (median/max relative error, R^2)
kept per group, and the whole model serializes to versioned JSON so a
fit can be committed, diffed, and reloaded by later tooling (the run
report, the ROADMAP auto-tuner).

Because each group also stores its mean *ops per streamed edge*, the
model can extrapolate a group's latency to a hypothetical batch size
and therefore predict the paper's Table 3 -- the best (structure,
model) combination per algorithm -- for any batch-size regime without
re-simulating (:meth:`FittedCostModel.best_combination`).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError

#: Bump when the JSON layout changes; ``FittedCostModel.from_json``
#: refuses payloads from a different schema.
MODEL_SCHEMA_VERSION = 1

#: A model group key: (phase, structure, algorithm, model).  Update
#: groups use empty algorithm/model.
GroupKey = Tuple[str, str, str, str]


def group_key(
    phase: str, structure: str, algorithm: str = "", model: str = ""
) -> GroupKey:
    return (phase, structure, algorithm, model)


@dataclass
class GroupFit:
    """One group's affine fit plus its residual diagnostics."""

    phase: str
    structure: str
    algorithm: str = ""
    model: str = ""
    #: Fixed per-batch cost in seconds (the intercept).
    setup: float = 0.0
    #: Marginal cost per abstract operation in seconds (the slope).
    per_op: float = 0.0
    #: Mean abstract operations per streamed edge -- lets the model
    #: extrapolate to a batch size it never observed.
    ops_per_edge: float = 0.0
    samples: int = 0
    median_rel_err: float = 0.0
    max_rel_err: float = 0.0
    r2: float = 1.0

    @property
    def key(self) -> GroupKey:
        return (self.phase, self.structure, self.algorithm, self.model)

    def predict(self, ops: float) -> float:
        """Predicted latency in seconds (clamped at zero)."""
        return max(0.0, self.setup + self.per_op * float(ops))

    def predict_batch(self, batch_edges: float) -> float:
        """Predicted latency of a batch of ``batch_edges`` edges."""
        return self.predict(self.ops_per_edge * float(batch_edges))

    def to_json(self) -> dict:
        return {
            "phase": self.phase,
            "structure": self.structure,
            "algorithm": self.algorithm,
            "model": self.model,
            "setup": self.setup,
            "per_op": self.per_op,
            "ops_per_edge": self.ops_per_edge,
            "samples": self.samples,
            "median_rel_err": self.median_rel_err,
            "max_rel_err": self.max_rel_err,
            "r2": self.r2,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "GroupFit":
        return cls(**payload)


def _affine_fit(ops: np.ndarray, t: np.ndarray) -> Tuple[float, float]:
    """Least-squares ``t ~ setup + per_op * ops`` (degenerate-safe)."""
    if ops.size == 1 or float(np.ptp(ops)) == 0.0:
        # No slope information: the whole cost is "setup".
        return float(t.mean()), 0.0
    a = np.stack([np.ones_like(ops), ops], axis=1)
    coef, *_ = np.linalg.lstsq(a, t, rcond=None)
    return float(coef[0]), float(coef[1])


def _diagnose(fit: GroupFit, ops: np.ndarray, t: np.ndarray) -> None:
    pred = np.maximum(0.0, fit.setup + fit.per_op * ops)
    nonzero = t > 0
    if nonzero.any():
        rel = np.abs(pred[nonzero] - t[nonzero]) / t[nonzero]
        fit.median_rel_err = float(np.median(rel))
        fit.max_rel_err = float(rel.max())
    ss_res = float(((t - pred) ** 2).sum())
    ss_tot = float(((t - t.mean()) ** 2).sum())
    fit.r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot


@dataclass
class FittedCostModel:
    """Every group's fit, addressable by key, JSON round-trippable."""

    groups: Dict[GroupKey, GroupFit] = field(default_factory=dict)
    #: Free-form provenance (dataset, batch size, git SHA, ...).
    source: Dict[str, object] = field(default_factory=dict)

    # -- lookup / prediction --------------------------------------------

    def group(
        self, phase: str, structure: str, algorithm: str = "", model: str = ""
    ) -> GroupFit:
        key = group_key(phase, structure, algorithm, model)
        try:
            return self.groups[key]
        except KeyError:
            available = ", ".join(
                "/".join(part for part in k if part) for k in sorted(self.groups)
            ) or "none (empty model)"
            raise ConfigError(
                f"cost model has no group {key!r}; "
                f"available groups: {available}"
            ) from None

    def predict(
        self,
        phase: str,
        structure: str,
        algorithm: str = "",
        model: str = "",
        ops: float = 0.0,
    ) -> float:
        """Predicted seconds of one phase execution costing ``ops``.

        The auto-tuner's entry point: group lookup (with the friendly
        missing-group error) plus the group's affine prediction.
        """
        return self.group(phase, structure, algorithm, model).predict(ops)

    def structures(self) -> List[str]:
        return sorted({k[1] for k in self.groups})

    def algorithms(self) -> List[str]:
        return sorted({k[2] for k in self.groups if k[2]})

    def compute_models(self) -> List[str]:
        return sorted({k[3] for k in self.groups if k[3]})

    def batch_latency(
        self, algorithm: str, model: str, structure: str, batch_edges: float
    ) -> float:
        """Equation 1 at a hypothetical batch size: update + compute."""
        update = self.group("update", structure).predict_batch(batch_edges)
        compute = self.group("compute", structure, algorithm, model).predict_batch(
            batch_edges
        )
        return update + compute

    def best_combination(
        self, algorithm: str, batch_edges: float
    ) -> Tuple[str, str, float]:
        """Predicted Table 3 cell: the (structure, model) minimizing the
        batch latency of ``algorithm`` at this batch-size regime."""
        best: Optional[Tuple[str, str, float]] = None
        for structure in self.structures():
            for model in self.compute_models():
                key = group_key("compute", structure, algorithm, model)
                if key not in self.groups:
                    continue
                latency = self.batch_latency(algorithm, model, structure, batch_edges)
                if best is None or latency < best[2]:
                    best = (structure, model, latency)
        if best is None:
            raise ConfigError(
                f"cost model has no compute groups for algorithm {algorithm!r}"
            )
        return best

    def table3(self, batch_edges: float) -> Dict[str, Tuple[str, str, float]]:
        """Predicted best (structure, model, seconds) per algorithm."""
        return {
            algorithm: self.best_combination(algorithm, batch_edges)
            for algorithm in self.algorithms()
        }

    # -- diagnostics ----------------------------------------------------

    def worst_group(self) -> Optional[GroupFit]:
        if not self.groups:
            return None
        return max(self.groups.values(), key=lambda g: g.median_rel_err)

    def diagnostics(self) -> List[dict]:
        """Per-group diagnostics, stably ordered for reports/tests."""
        return [self.groups[key].to_json() for key in sorted(self.groups)]

    # -- persistence ----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "schema": MODEL_SCHEMA_VERSION,
            "source": self.source,
            "groups": self.diagnostics(),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FittedCostModel":
        schema = payload.get("schema")
        if schema != MODEL_SCHEMA_VERSION:
            raise ConfigError(
                f"cost-model schema {schema!r} unsupported (this build "
                f"reads schema {MODEL_SCHEMA_VERSION}); re-fit the model "
                f"with `repro report --model-out` or scripts/ of this "
                f"checkout instead of reusing one from another version"
            )
        model = cls(source=dict(payload.get("source", {})))
        for entry in payload.get("groups", []):
            fit = GroupFit.from_json(entry)
            model.groups[fit.key] = fit
        return model

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path) -> "FittedCostModel":
        return cls.from_json(json.loads(Path(path).read_text()))


def _row_key(row: dict) -> GroupKey:
    return (
        str(row.get("phase", "")),
        str(row.get("structure", "")),
        str(row.get("algorithm", "")),
        str(row.get("model", "")),
    )


def fit_cost_model(
    rows: Iterable[dict],
    source: Optional[Dict[str, object]] = None,
    min_samples: int = 2,
) -> FittedCostModel:
    """Fit one affine model per group from feature rows.

    ``rows`` is what :meth:`repro.obs.features.FeatureLog.rows`
    returns; any iterable of dicts with ``phase``/``structure``
    (optionally ``algorithm``/``model``), ``t_seconds``, ``ops`` and
    ``batch_edges`` fields works.  Groups with fewer than
    ``min_samples`` rows are skipped (one point cannot separate setup
    from per-op cost).
    """
    grouped: Dict[GroupKey, List[dict]] = {}
    for row in rows:
        phase = row.get("phase")
        if phase not in ("update", "compute"):
            continue
        grouped.setdefault(_row_key(row), []).append(row)
    fitted = FittedCostModel(source=dict(source or {}))
    for key in sorted(grouped):
        group_rows = grouped[key]
        if len(group_rows) < min_samples:
            continue
        ops = np.array([float(r.get("ops", 0.0)) for r in group_rows])
        t = np.array([float(r.get("t_seconds", 0.0)) for r in group_rows])
        edges = np.array([float(r.get("batch_edges", 0.0)) for r in group_rows])
        fit = GroupFit(phase=key[0], structure=key[1], algorithm=key[2], model=key[3])
        fit.samples = len(group_rows)
        fit.setup, fit.per_op = _affine_fit(ops, t)
        with np.errstate(divide="ignore", invalid="ignore"):
            per_edge = np.where(edges > 0, ops / np.maximum(edges, 1.0), 0.0)
        fit.ops_per_edge = float(per_edge[edges > 0].mean()) if (edges > 0).any() else 0.0
        _diagnose(fit, ops, t)
        if not (math.isfinite(fit.setup) and math.isfinite(fit.per_op)):
            continue
        fitted.groups[fit.key] = fit
    return fitted


def fit_from_features(
    source: Optional[Dict[str, object]] = None,
) -> FittedCostModel:
    """Fit directly from the process-global feature log."""
    from repro.obs.features import FEATURES

    return fit_cost_model(FEATURES.rows(), source=source)

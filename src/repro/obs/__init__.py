"""Unified observability: span tracing, metrics, exporters.

The measurement layers of this repo (driver, simulator, sweep engine)
record into two process-global singletons:

- :data:`TRACER` -- a nested, thread-safe span tracer carrying both
  wall time and simulated-cycle attribution
  (:mod:`repro.obs.tracer`).  The legacy ``PROFILER`` phase timer in
  :mod:`repro.sim.profiling` is now a thin shim over it.
- :data:`METRICS` -- a registry of counters, gauges, and fixed-bucket
  histograms with an explicit cross-process ``merge``
  (:mod:`repro.obs.metrics`).

Both are **disabled by default** and cost one attribute check per
recording site when off.  The CLI's ``--trace-out`` / ``--metrics-out``
flags (on every subcommand) enable them and export on exit:

- Chrome ``trace_event`` JSON, loadable in Perfetto (wall-clock span
  tree plus per-thread simulated task timelines from the DES
  schedulers);
- Prometheus text format;
- JSONL event log (``--events-out``).

On top of the raw streams sit the derived layers: :data:`FEATURES`
(per-batch feature rows captured by the driver), the cost-model fitter
(:mod:`repro.obs.model`), the bench-history regression detector
(:mod:`repro.obs.baseline`), and the self-contained HTML run report
(:mod:`repro.obs.report`, ``--report-out`` / ``repro report``).

See ``docs/OBSERVABILITY.md`` for capture and reading instructions.
"""

from repro.obs.baseline import Verdict, detect_regressions, self_test
from repro.obs.export import (
    chrome_trace_events,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.features import FEATURES, FeatureLog
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    METRICS,
    MetricsRegistry,
)
from repro.obs.model import FittedCostModel, GroupFit, fit_cost_model, fit_from_features
from repro.obs.report import render_report, write_report
from repro.obs.tracer import NULL_SPAN, SpanTracer, TRACER

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "FEATURES",
    "FeatureLog",
    "FittedCostModel",
    "Gauge",
    "GroupFit",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "NULL_SPAN",
    "SpanTracer",
    "TRACER",
    "Verdict",
    "chrome_trace_events",
    "detect_regressions",
    "fit_cost_model",
    "fit_from_features",
    "prometheus_text",
    "render_report",
    "self_test",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]

"""Metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the machine-readable side of the observability layer:
the instrumented layers record batch latencies, scheduler contention,
cache traffic, and engine cache hits into one process-global
:data:`METRICS` instance, and the exporters dump it as Prometheus text
(``--metrics-out``) or embed a :meth:`MetricsRegistry.snapshot` into
JSON artifacts (``scripts/bench_kernels.py``).

Hot-path contract: recording sites guard with ``if METRICS.enabled:``
-- one attribute check when observability is off, so the simulator's
inner loops stay unaffected.  Metric handles are created on first use
and cached by ``(name, labels)``; repeated lookups are one dict hit.

Cross-process: :meth:`MetricsRegistry.to_payload` produces a picklable
snapshot that a ``--jobs`` worker returns to the sweep engine, and
:meth:`MetricsRegistry.merge_payload` folds it into the parent --
counters and histograms add, gauges take the incoming value.  Merging
is associative and order-insensitive, so a parallel sweep's merged
registry equals the serial run's.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

#: Default histogram buckets for per-batch latencies, in seconds.
#: Log-spaced from 10 microseconds to 10 seconds; +Inf is implicit.
DEFAULT_LATENCY_BUCKETS = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)

#: Label tuples are sorted (key, value) pairs.
LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram (Prometheus cumulative-bucket semantics).

    ``buckets`` holds the finite upper bounds; an implicit +Inf bucket
    catches the tail.  ``counts[i]`` is the number of observations with
    value <= ``buckets[i]`` minus those counted by earlier buckets
    (i.e. *per-bucket*, cumulated only at export time).
    """

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(f"histogram buckets must be sorted unique: {buckets}")
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative counts per finite bucket plus the +Inf total."""
        out = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class MetricsRegistry:
    """Named, labeled metrics with merge support.

    Thread-safe: handle creation takes a lock; mutation of a handed-out
    handle is a single float update (atomic enough under the GIL for
    the batch-granular recording sites this repo has).
    """

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        # {name: {labelset: metric}}
        self._metrics: Dict[str, Dict[LabelSet, object]] = {}
        # {name: (kind, help, buckets-or-None)}
        self._meta: Dict[str, Tuple[str, str, Optional[Tuple[float, ...]]]] = {}

    # -- lifecycle ------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every metric (enabled state is untouched)."""
        with self._lock:
            self._metrics.clear()
            self._meta.clear()

    # -- handles --------------------------------------------------------

    def _get(self, name: str, kind: str, help: str, factory, buckets=None):
        labels: Dict[str, str] = {}
        return self._get_labeled(name, kind, help, factory, labels, buckets)

    def _get_labeled(self, name, kind, help, factory, labels, buckets):
        key = _labelset(labels)
        with self._lock:
            meta = self._meta.get(name)
            if meta is None:
                self._meta[name] = (kind, help, buckets)
            elif meta[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {meta[0]}, not {kind}"
                )
            elif not meta[1] and help:
                # A help-less first touch (e.g. a merge from a worker
                # that shipped no help text) is upgraded by the first
                # caller that documents the family.
                self._meta[name] = (kind, help, meta[2])
            family = self._metrics.setdefault(name, {})
            metric = family.get(key)
            if metric is None:
                metric = factory()
                family[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """Get or create the counter ``name{labels}``."""
        return self._get_labeled(name, "counter", help, Counter, labels, None)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        return self._get_labeled(name, "gauge", help, Gauge, labels, None)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels,
    ) -> Histogram:
        """Get or create the histogram ``name{labels}``."""
        return self._get_labeled(
            name, "histogram", help, lambda: Histogram(buckets), labels, buckets
        )

    # -- read side ------------------------------------------------------

    def families(self):
        """Sorted [(name, kind, help, [(labelset, metric), ...])]."""
        with self._lock:
            out = []
            for name in sorted(self._metrics):
                kind, help, _ = self._meta[name]
                series = sorted(self._metrics[name].items())
                out.append((name, kind, help, series))
            return out

    def value(self, name: str, **labels) -> float:
        """Current value of a counter/gauge (0.0 if never recorded)."""
        family = self._metrics.get(name)
        if not family:
            return 0.0
        metric = family.get(_labelset(labels))
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            raise ValueError(f"{name!r} is a histogram; read .sum/.count instead")
        return metric.value

    def total(self, name: str) -> float:
        """Sum of a counter family's values across all label sets."""
        family = self._metrics.get(name)
        if not family:
            return 0.0
        return sum(
            m.count if isinstance(m, Histogram) else m.value
            for m in family.values()
        )

    def snapshot(self) -> dict:
        """JSON-safe dump: {name: {label-string: value-or-histogram}}."""
        out: dict = {}
        for name, kind, _, series in self.families():
            family: dict = {}
            for labelset, metric in series:
                key = ",".join(f"{k}={v}" for k, v in labelset) or ""
                if isinstance(metric, Histogram):
                    family[key] = {
                        "sum": metric.sum,
                        "count": metric.count,
                        "buckets": dict(
                            zip(
                                [str(b) for b in metric.buckets] + ["+Inf"],
                                metric.cumulative(),
                            )
                        ),
                    }
                else:
                    family[key] = metric.value
            out[name] = family
        return out

    # -- cross-process transport ----------------------------------------

    def to_payload(self) -> dict:
        """Picklable snapshot for transport out of a worker process."""
        with self._lock:
            metrics = {}
            for name, family in self._metrics.items():
                rows = []
                for labelset, metric in family.items():
                    if isinstance(metric, Histogram):
                        rows.append(
                            (list(labelset), list(metric.counts), metric.sum,
                             metric.count)
                        )
                    else:
                        rows.append((list(labelset), metric.value))
                metrics[name] = rows
            meta = {
                name: (kind, help, list(buckets) if buckets else None)
                for name, (kind, help, buckets) in self._meta.items()
            }
            return {"meta": meta, "metrics": metrics}

    def merge_payload(self, payload: dict) -> None:
        """Fold a worker's :meth:`to_payload` into this registry."""
        meta = payload.get("meta", {})
        for name, rows in payload.get("metrics", {}).items():
            kind, help, buckets = meta[name]
            buckets = tuple(buckets) if buckets else DEFAULT_LATENCY_BUCKETS
            for row in rows:
                labels = dict(tuple(pair) for pair in row[0])
                if kind == "counter":
                    self.counter(name, help, **labels).inc(row[1])
                elif kind == "gauge":
                    self.gauge(name, help, **labels).set(row[1])
                else:
                    hist = self.histogram(name, help, buckets=buckets, **labels)
                    counts, total, count = row[1], row[2], row[3]
                    if len(counts) != len(hist.counts):
                        raise ValueError(
                            f"histogram {name!r} bucket mismatch on merge"
                        )
                    for i, c in enumerate(counts):
                        hist.counts[i] += c
                    hist.sum += total
                    hist.count += count

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (sum counters/histograms)."""
        self.merge_payload(other.to_payload())


#: The process-global registry every instrumented layer records into.
METRICS = MetricsRegistry()

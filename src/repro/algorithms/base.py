"""Algorithm base class and the shared FS execution engines.

An :class:`Algorithm` supplies its Table-I vertex function plus an FS
implementation; the INC side is fully generic (Algorithm 1).  Two FS
engines cover five of the six algorithms:

- :func:`synchronous_fixpoint` -- evaluate every vertex's pull function
  each iteration until nothing changes (CC, MC and, with a tolerance,
  PR's power iteration).  Vectorized over an in-edge array.
- :func:`frontier_relaxation` -- push-style rounds relaxing the
  out-edges of an active frontier (BFS, SSWP).  SSSP's delta-stepping
  lives in its own module.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, Optional, Set, Tuple

import numpy as np

from repro.compute import kernels
from repro.compute.incremental import DEFAULT_EPSILON, run_incremental
from repro.compute.kernels import use_legacy_compute
from repro.compute.state import AlgorithmState
from repro.compute.stats import ComputeRun, IterationStats
from repro.errors import SimulationError
from repro.graph.edge import EdgeBatch


class Algorithm(abc.ABC):
    """One vertex-centric algorithm in both compute models."""

    #: Paper name ("BFS", "CC", "MC", "PR", "SSSP", "SSWP").
    name: str = "?"

    #: True when edge weights matter (SSSP, SSWP).
    uses_weights: bool = False

    #: True when the vertex function queries each in-neighbor's
    #: out-degree (PR's rank normalization) -- extra degree-query
    #: meta-operations on DAH (Section V-B).
    neighbor_degree_query: bool = False

    #: True for single-source algorithms (BFS, SSSP, SSWP).
    needs_source: bool = False

    #: Triggering threshold for the INC engine.
    epsilon: float = DEFAULT_EPSILON

    #: Direction of monotone convergence under insertions: "min" when
    #: values only improve downward (BFS, CC, SSSP), "max" when upward
    #: (MC, SSWP), None when not monotone (PR).  Drives the sound
    #: deletion handling in :meth:`inc_delete_run`.
    monotonic: Optional[str] = None

    # -- values ---------------------------------------------------------

    @abc.abstractmethod
    def init_value(self, ids: np.ndarray) -> np.ndarray:
        """Initial property values for vertex ids ``ids``."""

    def make_state(self, max_nodes: int) -> AlgorithmState:
        """Fresh persistent state for an INC stream."""
        return AlgorithmState(max_nodes, self.init_value, name=self.name)

    @abc.abstractmethod
    def recalculate(self, v: int, view, values: np.ndarray) -> float:
        """The pull-style vertex function of Table I."""

    #: Vectorized vertex function: ``recalculate_batch(frontier, cv,
    #: values, rows=None)`` returns the new values of every frontier
    #: vertex from a :class:`~repro.compute.kernels.ComputeView`.
    #: ``rows`` optionally carries the pre-expanded in-adjacency
    #: ``(seg, nbr, wt)`` of the frontier.  Must be bit-identical to
    #: per-vertex ``recalculate``.  ``None`` keeps the algorithm on the
    #: legacy engine (third-party algorithms need not implement it).
    recalculate_batch = None

    #: Vectorized derivation test for deletion invalidation:
    #: ``supports_batch(src_values, weights, dst_values)`` returns a
    #: boolean array.  ``None`` keeps deletions on the legacy path.
    supports_batch = None

    #: Compiled vertex-function opcode (a ``ckernels.OP_*`` constant).
    #: When set and the compute kernels built, the INC engine runs each
    #: Gauss-Seidel round as a single C call instead of the wave
    #: machinery.  ``None`` keeps third-party algorithms on numpy.
    ckernel_op: Optional[int] = None

    def ckernel_constants(self, num_nodes: int) -> Tuple[float, float]:
        """``(pr_base, damping)`` scalars for the compiled vertex function.

        Only PR's opcode reads them; everything else ignores the pair.
        """
        return (0.0, 0.0)

    # -- runs -----------------------------------------------------------

    @abc.abstractmethod
    def fs_run(self, view, source: Optional[int] = None, in_edges=None) -> ComputeRun:
        """Recomputation from scratch on the current graph.

        ``in_edges`` optionally supplies pre-extracted ``(src, dst,
        weight)`` arrays of the view's in-edges; the synchronous
        algorithms use them to skip re-extraction (the streaming driver
        maintains them incrementally).  Built-in implementations also
        accept ``compute_view`` (a prebuilt columnar view for the
        frontier kernels); the driver shares one per batch through
        :func:`repro.compute.kernels.view_scope` instead of passing it,
        so third-party overrides need not add the parameter.
        """

    def inc_run(
        self,
        view,
        state: AlgorithmState,
        affected: Iterable[int],
        source: Optional[int] = None,
        compute_view=None,
    ) -> ComputeRun:
        """Incremental run (Algorithm 1) updating ``state`` in place.

        Runs the vectorized frontier engine when the algorithm supplies
        ``recalculate_batch`` (all six built-ins do), unless
        ``SAGA_BENCH_LEGACY_COMPUTE=1`` selects the per-vertex loop.
        ``compute_view`` optionally supplies a prebuilt columnar view;
        otherwise the driver-scoped view or a fresh export is used.
        """
        state.ensure_initialized(view.num_nodes)
        if self.needs_source:
            if source is None:
                raise SimulationError(f"{self.name} requires a source vertex")
            state.values[source] = self.source_value()

        if self.recalculate_batch is not None and not use_legacy_compute():
            run = kernels.run_incremental_frontier(
                view,
                state.values,
                affected,
                self,
                source=source,
                compute_view=compute_view,
            )
            run.source = source
            return run

        def recalc(v: int) -> float:
            if self.needs_source and v == source:
                return state.values[v]
            return self.recalculate(v, view, state.values)

        run = run_incremental(
            view,
            state.values,
            affected,
            recalc,
            algorithm=self.name,
            epsilon=self.epsilon,
        )
        run.source = source
        return run

    def source_value(self) -> float:
        """The pinned value of the source vertex (single-source only)."""
        raise SimulationError(f"{self.name} has no source value")

    # -- deletions --------------------------------------------------------

    def supports(self, source_value: float, weight: float, target_value: float) -> bool:
        """Could ``target_value`` have been derived via this edge?

        The derivation test used by the deletion invalidation: return
        True when applying the vertex function's edge term to
        ``source_value`` yields exactly ``target_value``.  The default
        is the conservative always-True (safe but invalidates more).
        """
        return True

    def inc_delete_run(
        self,
        view,
        state: AlgorithmState,
        deleted_edges,
        source: Optional[int] = None,
        compute_view=None,
    ) -> ComputeRun:
        """Incremental recomputation after a deletion batch (sound).

        Plain Algorithm 1 is insertion-only: stale values can survive
        deletions through cycles of mutual support.  For the monotone
        algorithms this method first invalidates the possibly-tainted
        region (KickStarter-style, see
        :func:`repro.compute.incremental.invalidate_after_deletions`),
        then re-derives it with a normal incremental run.  ``view``
        must already reflect the deletions; ``deleted_edges`` is the
        ``(src, dst, weight)`` list actually removed.

        Non-monotone algorithms (PR) fall back to a plain incremental
        run over the deletion endpoints, which converges to the new
        fixpoint without invalidation.
        """
        from repro.compute.incremental import invalidate_after_deletions

        state.ensure_initialized(view.num_nodes)
        edges = list(deleted_edges)
        if not getattr(view, "directed", True):
            edges = edges + [(v, u, w) for u, v, w in edges if u != v]
        use_kernel = (
            not use_legacy_compute()
            and self.recalculate_batch is not None
            and (self.monotonic is None or self.supports_batch is not None)
        )
        if use_kernel:
            count = len(edges)
            src = np.fromiter((e[0] for e in edges), dtype=np.int64, count=count)
            dst = np.fromiter((e[1] for e in edges), dtype=np.int64, count=count)
            weight = np.fromiter((e[2] for e in edges), dtype=np.float64, count=count)
            endpoints = np.unique(np.concatenate([src, dst]))
            if self.monotonic is None:
                return self.inc_run(
                    view, state, endpoints, source=source, compute_view=compute_view
                )
            pinned = ()
            if self.needs_source:
                if source is None:
                    raise SimulationError(f"{self.name} requires a source vertex")
                state.values[source] = self.source_value()
                pinned = (source,)
            cv = kernels.resolve_view(view, compute_view)
            tainted = kernels.invalidate_frontier(
                view,
                state.values,
                src,
                dst,
                weight,
                self.supports_batch,
                state.init_fn,
                pinned=pinned,
                compute_view=cv,
            )
            return self.inc_run(
                view,
                state,
                np.union1d(tainted, endpoints),
                source=source,
                compute_view=cv,
            )
        endpoints = {v for _, v, _ in edges} | {u for u, _, _ in edges}
        if self.monotonic is None:
            return self.inc_run(view, state, endpoints, source=source)
        pinned = set()
        if self.needs_source:
            if source is None:
                raise SimulationError(f"{self.name} requires a source vertex")
            state.values[source] = self.source_value()
            pinned.add(source)
        affected = invalidate_after_deletions(
            view,
            state.values,
            edges,
            self.supports,
            state.init_fn,
            pinned=pinned,
        )
        return self.inc_run(view, state, affected | endpoints, source=source)

    # -- affected set ----------------------------------------------------

    def affected_from_batch(self, batch: EdgeBatch, view) -> Set[int]:
        """Vertices directly affected by ingesting ``batch``.

        The default marks both endpoints of every edge: the pull-side
        vertex function of the destination sees a new in-edge, and on
        undirected graphs both ends gain a neighbor.
        """
        affected: Set[int] = set()
        for i in range(len(batch)):
            affected.add(int(batch.src[i]))
            affected.add(int(batch.dst[i]))
        return affected


# ----------------------------------------------------------------------
# Fast neighbor iteration
# ----------------------------------------------------------------------


def in_pairs(view, v: int):
    """``(neighbor, weight)`` pairs of v's in-edges, fastest path.

    :class:`~repro.graph.reference.ReferenceGraph` exposes its internal
    dicts via ``in_items``; other views fall back to ``in_neigh``.
    The vertex functions run millions of times, so this matters.
    """
    getter = getattr(view, "in_items", None)
    if getter is not None:
        return getter(v).items()
    return view.in_neigh(v)


def in_sources(view, v: int):
    """Just the source vertices of v's in-edges (weights unused)."""
    getter = getattr(view, "in_items", None)
    if getter is not None:
        return getter(v)
    return [u for u, _ in view.in_neigh(v)]


def out_targets(view, v: int):
    """Just the target vertices of v's out-edges."""
    getter = getattr(view, "out_items", None)
    if getter is not None:
        return getter(v)
    return [w for w, _ in view.out_neigh(v)]


# ----------------------------------------------------------------------
# Shared FS engines
# ----------------------------------------------------------------------


def extract_in_edges(view, compute_view=None) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All edges as (src, dst, weight) arrays, grouped by destination.

    Used by the vectorized synchronous engine; the arrays describe the
    in-edges of every vertex (for undirected views, both orientations
    appear, matching ``in_neigh``).  When a :class:`ComputeView` is
    supplied or in scope (and the legacy path is off), the arrays come
    from its in-CSR -- the same grouped-by-destination order the
    per-vertex loop produces, without the per-vertex loop.
    """
    if not use_legacy_compute():
        cv = compute_view if compute_view is not None else kernels.scoped_view(view)
        if cv is not None:
            return kernels.packed_in_edges(cv)
    srcs, dsts, weights = [], [], []
    for v in range(view.num_nodes):
        for u, w in view.in_neigh(v):
            srcs.append(u)
            dsts.append(v)
            weights.append(w)
    return (
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
    )


def synchronous_fixpoint(
    view,
    values: np.ndarray,
    combine: Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    algorithm: str,
    epsilon: float = 0.0,
    max_iterations: int = 1000,
    in_edges=None,
    compute_view=None,
) -> ComputeRun:
    """Jacobi iteration of a pull-style vertex function over all vertices.

    ``combine(values, src, dst, weight)`` returns the next value array
    given the current one and the in-edge arrays.  Iterates until the
    largest change is at most ``epsilon``.
    """
    n = view.num_nodes
    run = ComputeRun(algorithm=algorithm, model="FS", values=values)
    run.linear_scans = 1  # the from-scratch reset
    if n == 0:
        return run
    src, dst, weight = (
        in_edges
        if in_edges is not None
        else extract_in_edges(view, compute_view)
    )
    everyone = np.arange(n, dtype=np.int64)
    for _ in range(max_iterations):
        new_values = combine(values, src, dst, weight)
        # inf - inf (an unreached vertex staying unreached) is NaN: not
        # a change.  A transition between finite and infinite is +/-inf:
        # a real change, kept as such.
        delta = np.abs(np.nan_to_num(new_values - values, nan=0.0))
        values[:] = new_values
        run.iterations.append(IterationStats.make(pull=everyone))
        if float(delta.max(initial=0.0)) <= epsilon:
            return run
    run.converged = False
    return run


def frontier_relaxation(
    view,
    values: np.ndarray,
    source: int,
    relax: Callable[[float, float], float],
    better: Callable[[float, float], bool],
    algorithm: str,
    optimize: str = "min",
    compute_view=None,
    relax_op: Optional[int] = None,
) -> ComputeRun:
    """Round-based push-style relaxation from ``source`` (BFS, SSWP).

    Each round scans the out-edges of the active frontier; a neighbor
    whose tentative value improves joins the next frontier.  ``relax``
    and ``better`` must accept numpy arrays as well as scalars: the
    default engine is the vectorized relaxation kernel (``optimize``
    names the scatter direction, "min" or "max"), with the per-edge
    loop below behind ``SAGA_BENCH_LEGACY_COMPUTE=1``.  ``relax_op``
    optionally names the compiled twin of ``relax`` (a
    ``ckernels.RELAX_*`` code) for the fused C rounds.
    """
    if not use_legacy_compute():
        return kernels.frontier_relaxation_kernel(
            view,
            values,
            source,
            relax,
            better,
            optimize,
            algorithm,
            compute_view=compute_view,
            relax_op=relax_op,
        )
    run = ComputeRun(algorithm=algorithm, model="FS", values=values, source=source)
    run.linear_scans = 1
    if source >= view.num_nodes:
        return run
    frontier = [source]
    while frontier:
        next_frontier = []
        improved = np.zeros(view.num_nodes, dtype=bool)
        pushes = 0
        for v in frontier:
            base = values[v]
            for w, wt in view.out_neigh(v):
                candidate = relax(base, wt)
                if better(candidate, values[w]):
                    values[w] = candidate
                    if not improved[w]:
                        improved[w] = True
                        next_frontier.append(w)
                        pushes += 1
        run.iterations.append(
            IterationStats.make(push=frontier, pushes=pushes, cas_ops=pushes)
        )
        frontier = next_frontier
    return run

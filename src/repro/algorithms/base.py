"""Algorithm base class and the shared FS execution engines.

An :class:`Algorithm` supplies its Table-I vertex function plus an FS
implementation; the INC side is fully generic (Algorithm 1).  Two FS
engines cover five of the six algorithms:

- :func:`synchronous_fixpoint` -- evaluate every vertex's pull function
  each iteration until nothing changes (CC, MC and, with a tolerance,
  PR's power iteration).  Vectorized over an in-edge array.
- :func:`frontier_relaxation` -- push-style rounds relaxing the
  out-edges of an active frontier (BFS, SSWP).  SSSP's delta-stepping
  lives in its own module.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, Optional, Set, Tuple

import numpy as np

from repro.compute.incremental import DEFAULT_EPSILON, run_incremental
from repro.compute.state import AlgorithmState
from repro.compute.stats import ComputeRun, IterationStats
from repro.errors import SimulationError
from repro.graph.edge import EdgeBatch


class Algorithm(abc.ABC):
    """One vertex-centric algorithm in both compute models."""

    #: Paper name ("BFS", "CC", "MC", "PR", "SSSP", "SSWP").
    name: str = "?"

    #: True when edge weights matter (SSSP, SSWP).
    uses_weights: bool = False

    #: True when the vertex function queries each in-neighbor's
    #: out-degree (PR's rank normalization) -- extra degree-query
    #: meta-operations on DAH (Section V-B).
    neighbor_degree_query: bool = False

    #: True for single-source algorithms (BFS, SSSP, SSWP).
    needs_source: bool = False

    #: Triggering threshold for the INC engine.
    epsilon: float = DEFAULT_EPSILON

    #: Direction of monotone convergence under insertions: "min" when
    #: values only improve downward (BFS, CC, SSSP), "max" when upward
    #: (MC, SSWP), None when not monotone (PR).  Drives the sound
    #: deletion handling in :meth:`inc_delete_run`.
    monotonic: Optional[str] = None

    # -- values ---------------------------------------------------------

    @abc.abstractmethod
    def init_value(self, ids: np.ndarray) -> np.ndarray:
        """Initial property values for vertex ids ``ids``."""

    def make_state(self, max_nodes: int) -> AlgorithmState:
        """Fresh persistent state for an INC stream."""
        return AlgorithmState(max_nodes, self.init_value, name=self.name)

    @abc.abstractmethod
    def recalculate(self, v: int, view, values: np.ndarray) -> float:
        """The pull-style vertex function of Table I."""

    # -- runs -----------------------------------------------------------

    @abc.abstractmethod
    def fs_run(self, view, source: Optional[int] = None, in_edges=None) -> ComputeRun:
        """Recomputation from scratch on the current graph.

        ``in_edges`` optionally supplies pre-extracted ``(src, dst,
        weight)`` arrays of the view's in-edges; the synchronous
        algorithms use them to skip re-extraction (the streaming driver
        maintains them incrementally).
        """

    def inc_run(
        self,
        view,
        state: AlgorithmState,
        affected: Iterable[int],
        source: Optional[int] = None,
    ) -> ComputeRun:
        """Incremental run (Algorithm 1) updating ``state`` in place."""
        state.ensure_initialized(view.num_nodes)
        if self.needs_source:
            if source is None:
                raise SimulationError(f"{self.name} requires a source vertex")
            state.values[source] = self.source_value()

        def recalc(v: int) -> float:
            if self.needs_source and v == source:
                return state.values[v]
            return self.recalculate(v, view, state.values)

        run = run_incremental(
            view,
            state.values,
            affected,
            recalc,
            algorithm=self.name,
            epsilon=self.epsilon,
        )
        run.source = source
        return run

    def source_value(self) -> float:
        """The pinned value of the source vertex (single-source only)."""
        raise SimulationError(f"{self.name} has no source value")

    # -- deletions --------------------------------------------------------

    def supports(self, source_value: float, weight: float, target_value: float) -> bool:
        """Could ``target_value`` have been derived via this edge?

        The derivation test used by the deletion invalidation: return
        True when applying the vertex function's edge term to
        ``source_value`` yields exactly ``target_value``.  The default
        is the conservative always-True (safe but invalidates more).
        """
        return True

    def inc_delete_run(
        self,
        view,
        state: AlgorithmState,
        deleted_edges,
        source: Optional[int] = None,
    ) -> ComputeRun:
        """Incremental recomputation after a deletion batch (sound).

        Plain Algorithm 1 is insertion-only: stale values can survive
        deletions through cycles of mutual support.  For the monotone
        algorithms this method first invalidates the possibly-tainted
        region (KickStarter-style, see
        :func:`repro.compute.incremental.invalidate_after_deletions`),
        then re-derives it with a normal incremental run.  ``view``
        must already reflect the deletions; ``deleted_edges`` is the
        ``(src, dst, weight)`` list actually removed.

        Non-monotone algorithms (PR) fall back to a plain incremental
        run over the deletion endpoints, which converges to the new
        fixpoint without invalidation.
        """
        from repro.compute.incremental import invalidate_after_deletions

        state.ensure_initialized(view.num_nodes)
        edges = list(deleted_edges)
        if not getattr(view, "directed", True):
            edges = edges + [(v, u, w) for u, v, w in edges if u != v]
        endpoints = {v for _, v, _ in edges} | {u for u, _, _ in edges}
        if self.monotonic is None:
            return self.inc_run(view, state, endpoints, source=source)
        pinned = set()
        if self.needs_source:
            if source is None:
                raise SimulationError(f"{self.name} requires a source vertex")
            state.values[source] = self.source_value()
            pinned.add(source)
        affected = invalidate_after_deletions(
            view,
            state.values,
            edges,
            self.supports,
            state.init_fn,
            pinned=pinned,
        )
        return self.inc_run(view, state, affected | endpoints, source=source)

    # -- affected set ----------------------------------------------------

    def affected_from_batch(self, batch: EdgeBatch, view) -> Set[int]:
        """Vertices directly affected by ingesting ``batch``.

        The default marks both endpoints of every edge: the pull-side
        vertex function of the destination sees a new in-edge, and on
        undirected graphs both ends gain a neighbor.
        """
        affected: Set[int] = set()
        for i in range(len(batch)):
            affected.add(int(batch.src[i]))
            affected.add(int(batch.dst[i]))
        return affected


# ----------------------------------------------------------------------
# Fast neighbor iteration
# ----------------------------------------------------------------------


def in_pairs(view, v: int):
    """``(neighbor, weight)`` pairs of v's in-edges, fastest path.

    :class:`~repro.graph.reference.ReferenceGraph` exposes its internal
    dicts via ``in_items``; other views fall back to ``in_neigh``.
    The vertex functions run millions of times, so this matters.
    """
    getter = getattr(view, "in_items", None)
    if getter is not None:
        return getter(v).items()
    return view.in_neigh(v)


def in_sources(view, v: int):
    """Just the source vertices of v's in-edges (weights unused)."""
    getter = getattr(view, "in_items", None)
    if getter is not None:
        return getter(v)
    return [u for u, _ in view.in_neigh(v)]


def out_targets(view, v: int):
    """Just the target vertices of v's out-edges."""
    getter = getattr(view, "out_items", None)
    if getter is not None:
        return getter(v)
    return [w for w, _ in view.out_neigh(v)]


# ----------------------------------------------------------------------
# Shared FS engines
# ----------------------------------------------------------------------


def extract_in_edges(view) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All edges as (src, dst, weight) arrays, grouped by destination.

    Used by the vectorized synchronous engine; the arrays describe the
    in-edges of every vertex (for undirected views, both orientations
    appear, matching ``in_neigh``).
    """
    srcs, dsts, weights = [], [], []
    for v in range(view.num_nodes):
        for u, w in view.in_neigh(v):
            srcs.append(u)
            dsts.append(v)
            weights.append(w)
    return (
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
    )


def synchronous_fixpoint(
    view,
    values: np.ndarray,
    combine: Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    algorithm: str,
    epsilon: float = 0.0,
    max_iterations: int = 1000,
    in_edges=None,
) -> ComputeRun:
    """Jacobi iteration of a pull-style vertex function over all vertices.

    ``combine(values, src, dst, weight)`` returns the next value array
    given the current one and the in-edge arrays.  Iterates until the
    largest change is at most ``epsilon``.
    """
    n = view.num_nodes
    run = ComputeRun(algorithm=algorithm, model="FS", values=values)
    run.linear_scans = 1  # the from-scratch reset
    if n == 0:
        return run
    src, dst, weight = in_edges if in_edges is not None else extract_in_edges(view)
    everyone = np.arange(n, dtype=np.int64)
    for _ in range(max_iterations):
        new_values = combine(values, src, dst, weight)
        # inf - inf (an unreached vertex staying unreached) is NaN: not
        # a change.  A transition between finite and infinite is +/-inf:
        # a real change, kept as such.
        delta = np.abs(np.nan_to_num(new_values - values, nan=0.0))
        values[:] = new_values
        run.iterations.append(IterationStats.make(pull=everyone))
        if float(delta.max(initial=0.0)) <= epsilon:
            return run
    run.converged = False
    return run


def frontier_relaxation(
    view,
    values: np.ndarray,
    source: int,
    relax: Callable[[float, float], float],
    better: Callable[[float, float], bool],
    algorithm: str,
) -> ComputeRun:
    """Round-based push-style relaxation from ``source`` (BFS, SSWP).

    Each round scans the out-edges of the active frontier; a neighbor
    whose tentative value improves joins the next frontier.
    """
    run = ComputeRun(algorithm=algorithm, model="FS", values=values, source=source)
    run.linear_scans = 1
    if source >= view.num_nodes:
        return run
    frontier = [source]
    while frontier:
        next_frontier = []
        improved = np.zeros(view.num_nodes, dtype=bool)
        pushes = 0
        for v in frontier:
            base = values[v]
            for w, wt in view.out_neigh(v):
                candidate = relax(base, wt)
                if better(candidate, values[w]):
                    values[w] = candidate
                    if not improved[w]:
                        improved[w] = True
                        next_frontier.append(w)
                        pushes += 1
        run.iterations.append(
            IterationStats.make(push=frontier, pushes=pushes, cas_ops=pushes)
        )
        frontier = next_frontier
    return run

"""Breadth-First Search.

Table I vertex function:
``v.depth <- min over in-edges of (e.source.depth + 1)``.

FS implementation: round-based frontier BFS from the source (GAP-style
top-down).  GAP's *direction-optimizing* variant (Beamer et al.) is
available via ``BFS(direction_optimizing=True)``: when the frontier
grows past a fraction of the graph, rounds switch to bottom-up --
every unvisited vertex pulls over its in-edges looking for a visited
parent -- which skips the bulk of the edge examinations on
small-diameter graphs.  It is off by default so the characterization
pipeline uses the plain Table-I-faithful kernel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import Algorithm, frontier_relaxation, in_sources
from repro.compute import ckernels, kernels
from repro.compute.stats import ComputeRun, IterationStats
from repro.errors import SimulationError

#: Switch to bottom-up when the frontier exceeds this fraction of |V|
#: (GAP uses edge-based thresholds; a vertex fraction is the common
#: simplification).
BOTTOM_UP_THRESHOLD = 0.05


class BFS(Algorithm):
    """Single-source BFS: vertex value is its hop distance."""

    name = "BFS"
    needs_source = True
    monotonic = "min"
    ckernel_op = ckernels.OP_BFS

    def supports(self, source_value, weight, target_value):
        return target_value == source_value + 1.0

    def supports_batch(self, source_values, weights, target_values):
        return target_values == source_values + 1.0

    def __init__(self, direction_optimizing: bool = False) -> None:
        self.direction_optimizing = direction_optimizing

    def init_value(self, ids: np.ndarray) -> np.ndarray:
        return np.full(len(ids), np.inf)

    def source_value(self) -> float:
        return 0.0

    def recalculate(self, v: int, view, values: np.ndarray) -> float:
        best = np.inf
        for u in in_sources(view, v):
            depth = values[u] + 1.0
            if depth < best:
                best = depth
        return best

    def recalculate_batch(self, frontier, cv, values, rows=None):
        seg, nbr, _ = rows if rows is not None else kernels.expand_frontier(
            cv.in_csr, frontier
        )
        counts = np.bincount(seg, minlength=len(frontier))
        return kernels.segment_min(values[nbr] + 1.0, counts, np.inf)

    def fs_run(
        self, view, source: Optional[int] = None, in_edges=None, compute_view=None
    ) -> ComputeRun:
        if source is None:
            raise SimulationError("BFS requires a source vertex")
        if self.direction_optimizing:
            return self._fs_direction_optimizing(view, source)
        values = np.full(max(view.num_nodes, 1), np.inf)
        if source < view.num_nodes:
            values[source] = 0.0
        return frontier_relaxation(
            view,
            values,
            source,
            relax=lambda base, wt: base + 1.0,
            better=lambda candidate, current: candidate < current,
            algorithm=self.name,
            optimize="min",
            compute_view=compute_view,
            relax_op=ckernels.RELAX_ADD1,
        )

    def _fs_direction_optimizing(self, view, source: int) -> ComputeRun:
        """Beamer-style hybrid BFS: top-down until the frontier grows
        large, then bottom-up over the unvisited set."""
        n = view.num_nodes
        values = np.full(max(n, 1), np.inf)
        run = ComputeRun(
            algorithm=self.name, model="FS", values=values, source=source
        )
        run.linear_scans = 1
        if source >= n:
            return run
        values[source] = 0.0
        frontier = [source]
        depth = 0.0
        while frontier:
            depth += 1.0
            if len(frontier) < BOTTOM_UP_THRESHOLD * n:
                # Top-down: scan the frontier's out-edges.
                next_frontier = []
                pushes = 0
                for v in frontier:
                    for w, _ in view.out_neigh(v):
                        if values[w] == np.inf:
                            values[w] = depth
                            next_frontier.append(w)
                            pushes += 1
                run.iterations.append(
                    IterationStats.make(push=frontier, pushes=pushes, cas_ops=pushes)
                )
            else:
                # Bottom-up: every unvisited vertex pulls over its
                # in-edges looking for a parent in the frontier.
                frontier_set = set(frontier)
                next_frontier = []
                unvisited = [v for v in range(n) if values[v] == np.inf]
                for v in unvisited:
                    for u in in_sources(view, v):
                        if u in frontier_set:
                            values[v] = depth
                            next_frontier.append(v)
                            break
                run.iterations.append(
                    IterationStats.make(
                        pull=unvisited,
                        pushes=len(next_frontier),
                        cas_ops=len(next_frontier),
                    )
                )
            frontier = next_frontier
        return run

"""PageRank.

Table I vertex function:
``v.rank <- 0.15/|V| + 0.85 * sum over in-edges of
(e.source.rank / e.source.out_degree)``.

Two properties make PR distinctive in the paper's characterization:

- its vertex function queries the **out-degree of every in-neighbor**
  (the normalization term), which on DAH costs an extra hash-table
  meta-query per neighbor -- the reason DAH's compute latency is worst
  on PR (up to 4.7x AS, Section V-B);
- its incremental variant is the paper's Algorithm 1 verbatim,
  including the 1e-7 triggering threshold.

FS implementation: power iteration (vectorized Jacobi sweep).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.algorithms.base import Algorithm, in_sources, out_targets, synchronous_fixpoint
from repro.compute.state import AlgorithmState
from repro.compute.stats import ComputeRun
from repro.graph.edge import EdgeBatch

#: Damping factor of Table I's vertex function.
DAMPING = 0.85

#: Convergence / triggering threshold (Algorithm 1 line 1).
PR_EPSILON = 1e-7


class PageRank(Algorithm):
    """PageRank with the paper's damped, size-normalized formula."""

    name = "PR"
    neighbor_degree_query = True
    epsilon = PR_EPSILON

    def init_value(self, ids: np.ndarray) -> np.ndarray:
        # Placeholder used only before the first batch; real
        # initialization is 1/|V| at the size when the vertex appears.
        return np.zeros(len(ids))

    def recalculate(self, v: int, view, values: np.ndarray) -> float:
        total = 0.0
        out_degree = view.out_degree
        for u in in_sources(view, v):
            total += values[u] / out_degree(u)
        return (1.0 - DAMPING) / max(view.num_nodes, 1) + DAMPING * total

    def inc_run(
        self,
        view,
        state: AlgorithmState,
        affected: Iterable[int],
        source: Optional[int] = None,
    ) -> ComputeRun:
        # New vertices start at 1/|V| of the *current* graph
        # (Algorithm 1 line 4).
        n = max(view.num_nodes, 1)
        state.init_fn = lambda ids: np.full(len(ids), 1.0 / n)
        return super().inc_run(view, state, affected, source=source)

    def affected_from_batch(self, batch: EdgeBatch, view) -> set:
        """PR's affected set additionally covers rank renormalization.

        Inserting ``(u, v)`` changes v's in-edges *and* u's out-degree;
        the latter perturbs the term ``rank(u)/out_degree(u)`` seen by
        every existing out-neighbor of u.
        """
        affected = set()
        for i in range(len(batch)):
            u = int(batch.src[i])
            v = int(batch.dst[i])
            affected.add(u)
            affected.add(v)
            affected.update(out_targets(view, u))
        return affected

    def fs_run(self, view, source: Optional[int] = None, in_edges=None) -> ComputeRun:
        n = max(view.num_nodes, 1)
        values = np.full(n, 1.0 / n)
        out_degree = np.asarray(
            [max(view.out_degree(v), 1) for v in range(view.num_nodes)] or [1],
            dtype=np.float64,
        )
        base = (1.0 - DAMPING) / n

        def combine(current, src, dst, weight):
            sums = np.zeros(len(current))
            if len(src):
                np.add.at(sums, dst, current[src] / out_degree[src])
            return base + DAMPING * sums

        return synchronous_fixpoint(
            view,
            values,
            combine,
            algorithm=self.name,
            epsilon=PR_EPSILON,
            max_iterations=200,
            in_edges=in_edges,
        )

"""PageRank.

Table I vertex function:
``v.rank <- 0.15/|V| + 0.85 * sum over in-edges of
(e.source.rank / e.source.out_degree)``.

Two properties make PR distinctive in the paper's characterization:

- its vertex function queries the **out-degree of every in-neighbor**
  (the normalization term), which on DAH costs an extra hash-table
  meta-query per neighbor -- the reason DAH's compute latency is worst
  on PR (up to 4.7x AS, Section V-B);
- its incremental variant is the paper's Algorithm 1 verbatim,
  including the 1e-7 triggering threshold.

FS implementation: power iteration (vectorized Jacobi sweep).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.algorithms.base import Algorithm, in_sources, out_targets, synchronous_fixpoint
from repro.compute import ckernels, kernels
from repro.compute.state import AlgorithmState
from repro.compute.stats import ComputeRun
from repro.graph.edge import EdgeBatch

#: Damping factor of Table I's vertex function.
DAMPING = 0.85

#: Convergence / triggering threshold (Algorithm 1 line 1).
PR_EPSILON = 1e-7


class PageRank(Algorithm):
    """PageRank with the paper's damped, size-normalized formula."""

    name = "PR"
    neighbor_degree_query = True
    epsilon = PR_EPSILON
    ckernel_op = ckernels.OP_PR

    def ckernel_constants(self, num_nodes: int):
        # The compiled vertex function computes base + damping * total
        # with the same float operations as recalculate_batch.
        return ((1.0 - DAMPING) / max(num_nodes, 1), DAMPING)

    def init_value(self, ids: np.ndarray) -> np.ndarray:
        # Placeholder used only before the first batch; real
        # initialization is 1/|V| at the size when the vertex appears.
        return np.zeros(len(ids))

    def recalculate(self, v: int, view, values: np.ndarray) -> float:
        total = 0.0
        out_degree = view.out_degree
        for u in in_sources(view, v):
            total += values[u] / out_degree(u)
        return (1.0 - DAMPING) / max(view.num_nodes, 1) + DAMPING * total

    def recalculate_batch(self, frontier, cv, values, rows=None):
        seg, nbr, _ = rows if rows is not None else kernels.expand_frontier(
            cv.in_csr, frontier
        )
        # bincount accumulates in row (= in-neighbor) order: the same
        # float bits as the scalar function's sequential sum.
        totals = kernels.segment_sum_ordered(
            values[nbr] / cv.out_degree[nbr], seg, len(frontier)
        )
        return (1.0 - DAMPING) / max(cv.num_nodes, 1) + DAMPING * totals

    def inc_run(
        self,
        view,
        state: AlgorithmState,
        affected: Iterable[int],
        source: Optional[int] = None,
        compute_view=None,
    ) -> ComputeRun:
        # New vertices start at 1/|V| of the *current* graph
        # (Algorithm 1 line 4).
        n = max(view.num_nodes, 1)
        state.init_fn = lambda ids: np.full(len(ids), 1.0 / n)
        return super().inc_run(
            view, state, affected, source=source, compute_view=compute_view
        )

    def affected_from_batch(self, batch: EdgeBatch, view) -> set:
        """PR's affected set additionally covers rank renormalization.

        Inserting ``(u, v)`` changes v's in-edges *and* u's out-degree;
        the latter perturbs the term ``rank(u)/out_degree(u)`` seen by
        every existing out-neighbor of u.  With a columnar view in
        scope the out-neighbor sweep runs over the out-CSR instead of
        per-vertex Python iteration (same set either way; the engine
        uniques it).
        """
        cv = kernels.scoped_view(view) if not kernels.use_legacy_compute() else None
        if cv is not None:
            src = np.asarray(batch.src, dtype=np.int64)
            dst = np.asarray(batch.dst, dtype=np.int64)
            sources = np.unique(src)
            _, fanout, _ = kernels.expand_frontier(cv.out_csr, sources)
            return np.unique(np.concatenate([src, dst, fanout]))
        affected = set()
        for i in range(len(batch)):
            u = int(batch.src[i])
            v = int(batch.dst[i])
            affected.add(u)
            affected.add(v)
            affected.update(out_targets(view, u))
        return affected

    def fs_run(
        self, view, source: Optional[int] = None, in_edges=None, compute_view=None
    ) -> ComputeRun:
        n = max(view.num_nodes, 1)
        values = np.full(n, 1.0 / n)
        cv = compute_view
        if cv is None and not kernels.use_legacy_compute():
            cv = kernels.scoped_view(view)
        if cv is not None and view.num_nodes:
            # Small integers convert to float64 exactly: same divisors
            # as the per-vertex loop below, without the loop.
            out_degree = np.maximum(cv.out_degree, 1).astype(np.float64)
        else:
            out_degree = np.asarray(
                [max(view.out_degree(v), 1) for v in range(view.num_nodes)] or [1],
                dtype=np.float64,
            )
        base = (1.0 - DAMPING) / n

        legacy = kernels.use_legacy_compute()

        def combine(current, src, dst, weight):
            sums = np.zeros(len(current))
            if len(src):
                if legacy:
                    np.add.at(sums, dst, current[src] / out_degree[src])
                else:
                    # bincount accumulates in array order -- the same
                    # sequential float bits as add.at, much faster.
                    sums = np.bincount(
                        dst,
                        weights=current[src] / out_degree[src],
                        minlength=len(current),
                    )
            return base + DAMPING * sums

        return synchronous_fixpoint(
            view,
            values,
            combine,
            algorithm=self.name,
            epsilon=PR_EPSILON,
            max_iterations=200,
            in_edges=in_edges,
            compute_view=cv,
        )

"""Single-Source Widest Paths.

Table I vertex function:
``v.path <- max over in-edges of min(e.source.path, e.weight)``.

The *width* of a path is its narrowest edge; each vertex converges to
the widest width over all paths from the source.  Unreached vertices
have width 0; the source itself has infinite width.

FS implementation: frontier-based widest-path relaxation (not in GAP;
implemented from scratch, as the paper did).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import Algorithm, frontier_relaxation, in_pairs
from repro.compute import ckernels, kernels
from repro.compute.stats import ComputeRun
from repro.errors import SimulationError


class SSWP(Algorithm):
    """Widest ("maximum bottleneck") paths from a source."""

    name = "SSWP"
    needs_source = True
    uses_weights = True
    monotonic = "max"
    ckernel_op = ckernels.OP_SSWP

    def supports(self, source_value, weight, target_value):
        return target_value == min(source_value, weight)

    def supports_batch(self, source_values, weights, target_values):
        return target_values == np.minimum(source_values, weights)

    def init_value(self, ids: np.ndarray) -> np.ndarray:
        return np.zeros(len(ids))

    def source_value(self) -> float:
        return np.inf

    def recalculate(self, v: int, view, values: np.ndarray) -> float:
        best = 0.0
        for u, w in in_pairs(view, v):
            width = min(values[u], w)
            if width > best:
                best = width
        return best

    def recalculate_batch(self, frontier, cv, values, rows=None):
        seg, nbr, wts = rows if rows is not None else kernels.expand_frontier(
            cv.in_csr, frontier
        )
        counts = np.bincount(seg, minlength=len(frontier))
        widths = np.minimum(values[nbr], wts)
        # The scalar function starts its max at 0.0 (unreached), so the
        # -inf identity of empty segments folds back to 0.0 and widths
        # never go below the start (weights are positive).
        return np.maximum(kernels.segment_max(widths, counts, -np.inf), 0.0)

    def fs_run(
        self, view, source: Optional[int] = None, in_edges=None, compute_view=None
    ) -> ComputeRun:
        if source is None:
            raise SimulationError("SSWP requires a source vertex")
        values = np.zeros(max(view.num_nodes, 1))
        if source < view.num_nodes:
            values[source] = np.inf
        return frontier_relaxation(
            view,
            values,
            source,
            relax=np.minimum,
            better=lambda candidate, current: candidate > current,
            algorithm=self.name,
            optimize="max",
            compute_view=compute_view,
            relax_op=ckernels.RELAX_MINW,
        )

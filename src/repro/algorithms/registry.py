"""Algorithm registry and the paper's ``performAlg()`` entry point.

SAGA-Bench's API (Section III-D) exposes a single dispatch function to
run any registered algorithm under either compute model; new algorithms
are added by registering an :class:`~repro.algorithms.base.Algorithm`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.algorithms.base import Algorithm
from repro.algorithms.bfs import BFS
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.mc import MaxComputation
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import SSSP
from repro.algorithms.sswp import SSWP
from repro.compute.state import AlgorithmState
from repro.compute.stats import ComputeRun
from repro.errors import SimulationError

#: The six algorithms of Table I, by paper name.
ALGORITHMS: Dict[str, Algorithm] = {
    algorithm.name: algorithm
    for algorithm in (
        BFS(),
        ConnectedComponents(),
        MaxComputation(),
        PageRank(),
        SSSP(),
        SSWP(),
    )
}

#: The two compute models of Section III-B.
COMPUTE_MODELS = ("FS", "INC")


def get_algorithm(name: str) -> Algorithm:
    """Look up an algorithm by its paper name (case-insensitive)."""
    algorithm = ALGORITHMS.get(name.upper())
    if algorithm is None:
        raise SimulationError(
            f"unknown algorithm {name!r}; expected one of {sorted(ALGORITHMS)}"
        )
    return algorithm


def register_algorithm(algorithm: Algorithm) -> None:
    """Add a new algorithm to the registry (extensibility API)."""
    ALGORITHMS[algorithm.name] = algorithm


def perform_alg(
    name: str,
    model: str,
    view,
    state: Optional[AlgorithmState] = None,
    affected: Optional[Iterable[int]] = None,
    source: Optional[int] = None,
) -> ComputeRun:
    """Run algorithm ``name`` under compute model ``model``.

    ``FS`` ignores ``state``/``affected`` and recomputes from scratch;
    ``INC`` requires both (the persistent values and the vertices the
    latest update phase touched).
    """
    algorithm = get_algorithm(name)
    model = model.upper()
    if model not in COMPUTE_MODELS:
        raise SimulationError(f"unknown compute model {model!r}; expected FS or INC")
    if model == "FS":
        return algorithm.fs_run(view, source=source)
    if state is None or affected is None:
        raise SimulationError("INC requires persistent state and an affected set")
    return algorithm.inc_run(view, state, affected, source=source)

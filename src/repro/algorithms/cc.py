"""Connected Components.

Table I vertex function:
``v.value <- min(v.value, min over in-edges of e.source.value)``.

Labels start as vertex ids and the minimum label propagates.  On
undirected graphs the fixpoint labels are true connected components;
on directed graphs the function is exactly the paper's (label
propagation along edge direction).

FS implementation: synchronous label propagation until stable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import Algorithm, in_sources, synchronous_fixpoint
from repro.compute import ckernels, kernels
from repro.compute.stats import ComputeRun


def _combine_min(values: np.ndarray, src: np.ndarray, dst: np.ndarray, weight: np.ndarray) -> np.ndarray:
    new_values = values.copy()
    if len(src):
        kernels.scatter_extreme(new_values, dst, values[src], maximize=False)
    return new_values


class ConnectedComponents(Algorithm):
    """Min-label propagation; value is the component label."""

    name = "CC"
    monotonic = "min"
    ckernel_op = ckernels.OP_CC

    def supports(self, source_value, weight, target_value):
        return target_value == source_value

    def supports_batch(self, source_values, weights, target_values):
        return target_values == source_values

    def init_value(self, ids: np.ndarray) -> np.ndarray:
        return ids.astype(np.float64)

    def recalculate(self, v: int, view, values: np.ndarray) -> float:
        best = values[v]
        for u in in_sources(view, v):
            if values[u] < best:
                best = values[u]
        return best

    def recalculate_batch(self, frontier, cv, values, rows=None):
        seg, nbr, _ = rows if rows is not None else kernels.expand_frontier(
            cv.in_csr, frontier
        )
        counts = np.bincount(seg, minlength=len(frontier))
        return np.minimum(
            values[frontier], kernels.segment_min(values[nbr], counts, np.inf)
        )

    def fs_run(
        self, view, source: Optional[int] = None, in_edges=None, compute_view=None
    ) -> ComputeRun:
        values = np.arange(max(view.num_nodes, 1), dtype=np.float64)
        return synchronous_fixpoint(
            view,
            values,
            _combine_min,
            algorithm=self.name,
            epsilon=0.0,
            in_edges=in_edges,
            compute_view=compute_view,
        )

"""The six vertex-centric algorithms of SAGA-Bench (Table I).

Each algorithm is implemented in both compute models:

========  ==============================  =================================
 Name      Vertex function (pull-style)    FS implementation
========  ==============================  =================================
 BFS       min over in-edges of            round-based frontier BFS
           ``src.depth + 1``
 CC        min over in-edges of            synchronous label propagation
           ``src.value``
 MC        max over in-edges of            synchronous max propagation
           ``src.value``
 PR        ``0.15/|V| + 0.85 *             power iteration
           sum(src.rank / src.out_deg)``
 SSSP      min over in-edges of            delta-stepping
           ``src.path + w``
 SSWP      max over in-edges of            frontier widest-path relaxation
           ``min(src.path, w)``
========  ==============================  =================================

The INC implementations all share the Algorithm-1 engine in
:mod:`repro.compute.incremental`.
"""

from repro.algorithms.base import Algorithm
from repro.algorithms.bfs import BFS
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.mc import MaxComputation
from repro.algorithms.pagerank import PageRank
from repro.algorithms.registry import ALGORITHMS, get_algorithm, perform_alg
from repro.algorithms.sssp import SSSP
from repro.algorithms.sswp import SSWP

__all__ = [
    "ALGORITHMS",
    "Algorithm",
    "BFS",
    "ConnectedComponents",
    "MaxComputation",
    "PageRank",
    "SSSP",
    "SSWP",
    "get_algorithm",
    "perform_alg",
]

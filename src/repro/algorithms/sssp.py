"""Single-Source Shortest Paths.

Table I vertex function:
``v.path <- min over in-edges of (e.source.path + e.weight)``.

FS implementation: delta-stepping (the GAP baseline the paper uses;
footnote 7 notes it is highly optimized, which is why FS stays
competitive with INC on SSSP).  Light edges (weight <= delta) are
relaxed iteratively inside a bucket; heavy edges once per settled
bucket.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from repro.algorithms.base import Algorithm, in_pairs
from repro.compute.stats import ComputeRun, IterationStats
from repro.errors import SimulationError


class SSSP(Algorithm):
    """Shortest paths; value is the path length.

    The FS baseline is delta-stepping (parallel, as in GAP).  A serial
    binary-heap Dijkstra is available via ``SSSP(use_dijkstra=True)``
    as the classic single-threaded comparator: it performs the fewest
    edge relaxations but exposes no parallelism (each settled vertex is
    its own "iteration"), so its simulated latency shows why parallel
    streaming systems do not use it.
    """

    name = "SSSP"
    needs_source = True
    uses_weights = True
    monotonic = "min"

    def supports(self, source_value, weight, target_value):
        return target_value == source_value + weight

    def __init__(self, delta: Optional[float] = None, use_dijkstra: bool = False) -> None:
        self.delta = delta
        self.use_dijkstra = use_dijkstra

    def init_value(self, ids: np.ndarray) -> np.ndarray:
        return np.full(len(ids), np.inf)

    def source_value(self) -> float:
        return 0.0

    def recalculate(self, v: int, view, values: np.ndarray) -> float:
        best = np.inf
        for u, w in in_pairs(view, v):
            candidate = values[u] + w
            if candidate < best:
                best = candidate
        return best

    def _pick_delta(self, view) -> float:
        if self.delta is not None:
            return self.delta
        # Mean edge weight is a standard default for delta-stepping.
        total, count = 0.0, 0
        for v in range(view.num_nodes):
            for _, w in view.out_neigh(v):
                total += w
                count += 1
        return max(total / count, 1e-9) if count else 1.0

    def fs_run(self, view, source: Optional[int] = None, in_edges=None) -> ComputeRun:
        if source is None:
            raise SimulationError("SSSP requires a source vertex")
        if self.use_dijkstra:
            return self._fs_dijkstra(view, source)
        n = max(view.num_nodes, 1)
        values = np.full(n, np.inf)
        run = ComputeRun(algorithm=self.name, model="FS", values=values, source=source)
        run.linear_scans = 1
        if source >= view.num_nodes:
            return run
        values[source] = 0.0
        delta = self._pick_delta(view)

        buckets: Dict[int, Set[int]] = {0: {source}}
        while buckets:
            i = min(buckets)
            bucket = buckets.pop(i)
            settled: list = []
            # Light-edge phase: iterate within the bucket.
            while True:
                frontier = sorted(
                    v for v in bucket if int(values[v] // delta) == i
                )
                bucket = set()
                if not frontier:
                    break
                settled.extend(frontier)
                pushes = 0
                for v in frontier:
                    base = values[v]
                    for w, wt in view.out_neigh(v):
                        if wt > delta:
                            continue
                        candidate = base + wt
                        if candidate < values[w]:
                            values[w] = candidate
                            pushes += 1
                            j = int(candidate // delta)
                            if j == i:
                                bucket.add(w)
                            else:
                                buckets.setdefault(j, set()).add(w)
                run.iterations.append(
                    IterationStats.make(push=frontier, pushes=pushes, cas_ops=pushes)
                )
            if not settled:
                continue
            # Heavy-edge phase: one relaxation pass over the bucket.
            pushes = 0
            for v in settled:
                base = values[v]
                for w, wt in view.out_neigh(v):
                    if wt <= delta:
                        continue
                    candidate = base + wt
                    if candidate < values[w]:
                        values[w] = candidate
                        pushes += 1
                        buckets.setdefault(int(candidate // delta), set()).add(w)
            run.iterations.append(
                IterationStats.make(push=settled, pushes=pushes, cas_ops=pushes)
            )
        return run

    def _fs_dijkstra(self, view, source: int) -> ComputeRun:
        """Serial binary-heap Dijkstra (the textbook comparator)."""
        import heapq

        n = max(view.num_nodes, 1)
        values = np.full(n, np.inf)
        run = ComputeRun(algorithm=self.name, model="FS", values=values, source=source)
        run.linear_scans = 1
        if source >= view.num_nodes:
            return run
        values[source] = 0.0
        heap = [(0.0, source)]
        settled = np.zeros(n, dtype=bool)
        while heap:
            distance, v = heapq.heappop(heap)
            if settled[v]:
                continue
            settled[v] = True
            pushes = 0
            for w, weight in view.out_neigh(v):
                candidate = distance + weight
                if candidate < values[w]:
                    values[w] = candidate
                    heapq.heappush(heap, (candidate, w))
                    pushes += 1
            # One settled vertex per round: Dijkstra is inherently
            # serial, which the pricer renders as a serial makespan.
            run.iterations.append(
                IterationStats.make(push=[v], pushes=pushes, cas_ops=pushes)
            )
        return run

"""Single-Source Shortest Paths.

Table I vertex function:
``v.path <- min over in-edges of (e.source.path + e.weight)``.

FS implementation: delta-stepping (the GAP baseline the paper uses;
footnote 7 notes it is highly optimized, which is why FS stays
competitive with INC on SSSP).  Light edges (weight <= delta) are
relaxed iteratively inside a bucket; heavy edges once per settled
bucket.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.algorithms.base import Algorithm, in_pairs
from repro.compute import ckernels, kernels
from repro.compute.stats import ComputeRun, IterationStats
from repro.errors import SimulationError
from repro.obs.tracer import TRACER


class SSSP(Algorithm):
    """Shortest paths; value is the path length.

    The FS baseline is delta-stepping (parallel, as in GAP).  A serial
    binary-heap Dijkstra is available via ``SSSP(use_dijkstra=True)``
    as the classic single-threaded comparator: it performs the fewest
    edge relaxations but exposes no parallelism (each settled vertex is
    its own "iteration"), so its simulated latency shows why parallel
    streaming systems do not use it.
    """

    name = "SSSP"
    needs_source = True
    uses_weights = True
    monotonic = "min"
    ckernel_op = ckernels.OP_SSSP

    def supports(self, source_value, weight, target_value):
        return target_value == source_value + weight

    def supports_batch(self, source_values, weights, target_values):
        return target_values == source_values + weights

    def __init__(self, delta: Optional[float] = None, use_dijkstra: bool = False) -> None:
        self.delta = delta
        self.use_dijkstra = use_dijkstra

    def init_value(self, ids: np.ndarray) -> np.ndarray:
        return np.full(len(ids), np.inf)

    def source_value(self) -> float:
        return 0.0

    def recalculate(self, v: int, view, values: np.ndarray) -> float:
        best = np.inf
        for u, w in in_pairs(view, v):
            candidate = values[u] + w
            if candidate < best:
                best = candidate
        return best

    def recalculate_batch(self, frontier, cv, values, rows=None):
        seg, nbr, wts = rows if rows is not None else kernels.expand_frontier(
            cv.in_csr, frontier
        )
        counts = np.bincount(seg, minlength=len(frontier))
        return kernels.segment_min(values[nbr] + wts, counts, np.inf)

    def _pick_delta(self, view, cv=None) -> float:
        if self.delta is not None:
            return self.delta
        # Mean edge weight is a standard default for delta-stepping.
        if cv is not None:
            weights = kernels.packed_out_weights(cv)
            count = int(weights.size)
            # Sequential cumsum keeps the scalar loop's accumulation
            # order (np.sum is pairwise and rounds differently).
            total = float(np.cumsum(weights)[-1]) if count else 0.0
            return max(total / count, 1e-9) if count else 1.0
        total, count = 0.0, 0
        for v in range(view.num_nodes):
            for _, w in view.out_neigh(v):
                total += w
                count += 1
        return max(total / count, 1e-9) if count else 1.0

    def fs_run(
        self, view, source: Optional[int] = None, in_edges=None, compute_view=None
    ) -> ComputeRun:
        if source is None:
            raise SimulationError("SSSP requires a source vertex")
        if self.use_dijkstra:
            return self._fs_dijkstra(view, source)
        if not kernels.use_legacy_compute():
            return self._fs_delta_kernel(view, source, compute_view)
        n = max(view.num_nodes, 1)
        values = np.full(n, np.inf)
        run = ComputeRun(algorithm=self.name, model="FS", values=values, source=source)
        run.linear_scans = 1
        if source >= view.num_nodes:
            return run
        values[source] = 0.0
        delta = self._pick_delta(view)

        buckets: Dict[int, Set[int]] = {0: {source}}
        while buckets:
            i = min(buckets)
            bucket = buckets.pop(i)
            settled: list = []
            # Light-edge phase: iterate within the bucket.
            while True:
                frontier = sorted(
                    v for v in bucket if int(values[v] // delta) == i
                )
                bucket = set()
                if not frontier:
                    break
                settled.extend(frontier)
                pushes = 0
                for v in frontier:
                    base = values[v]
                    for w, wt in view.out_neigh(v):
                        if wt > delta:
                            continue
                        candidate = base + wt
                        if candidate < values[w]:
                            values[w] = candidate
                            pushes += 1
                            j = int(candidate // delta)
                            if j == i:
                                bucket.add(w)
                            else:
                                buckets.setdefault(j, set()).add(w)
                run.iterations.append(
                    IterationStats.make(push=frontier, pushes=pushes, cas_ops=pushes)
                )
            if not settled:
                continue
            # Heavy-edge phase: one relaxation pass over the bucket.
            pushes = 0
            for v in settled:
                base = values[v]
                for w, wt in view.out_neigh(v):
                    if wt <= delta:
                        continue
                    candidate = base + wt
                    if candidate < values[w]:
                        values[w] = candidate
                        pushes += 1
                        buckets.setdefault(int(candidate // delta), set()).add(w)
            run.iterations.append(
                IterationStats.make(push=settled, pushes=pushes, cas_ops=pushes)
            )
        return run

    def _fs_delta_kernel(self, view, source: int, compute_view=None) -> ComputeRun:
        """Delta-stepping over the columnar view, pass-at-a-time.

        Each light/heavy pass becomes one :func:`kernels.relax_pass`
        (prefix waves reproduce the sequential bases) plus one
        :func:`kernels.relaxation_events` scan that recovers exactly the
        successful compare-and-updates the scalar loop would have
        performed -- so pushes, bucket membership, and float bits all
        match the legacy path.  When the compiled compute kernels
        built, the whole pass (weight filter, sequential conditional
        relaxation, event capture) is one C call instead.
        """
        cv = kernels.resolve_view(view, compute_view)
        n = max(cv.num_nodes, 1)
        values = np.full(n, np.inf)
        run = ComputeRun(algorithm=self.name, model="FS", values=values, source=source)
        run.linear_scans = 1
        if source >= cv.num_nodes:
            return run
        values[source] = 0.0
        delta = self._pick_delta(view, cv)
        ck = ckernels.get("delta_pass")

        def relax(base: np.ndarray, wts: np.ndarray) -> np.ndarray:
            return base + wts

        def pass_events(frontier: np.ndarray, heavy: bool):
            """(target, candidate) of each winning relaxation, in order."""
            if ck is not None:
                return ck.delta_pass(cv.out_csr, frontier, values, delta, heavy)
            mask = (lambda w: w > delta) if heavy else (lambda w: w <= delta)
            cand, tgt, x0 = kernels.relax_pass(
                cv, values, frontier, relax, "min", edge_mask=mask
            )
            events = kernels.relaxation_events(cand, tgt, x0, minimize=True)
            return tgt[events], cand[events]

        # Buckets hold unmerged member fragments; dedup happens at pop
        # time (the legacy sets dedup on insert -- same members).
        buckets: Dict[int, List[np.ndarray]] = {
            0: [np.array([source], dtype=np.int64)]
        }
        with TRACER.span(
            "compute.kernel", args={"algorithm": self.name, "model": "FS"}
        ):
            while buckets:
                i = min(buckets)
                members = np.unique(np.concatenate(buckets.pop(i)))
                settled_parts: List[np.ndarray] = []
                # Light-edge phase: iterate within the bucket.
                while True:
                    if members.size:
                        keys = np.floor_divide(values[members], delta).astype(np.int64)
                        frontier = members[keys == i]
                    else:
                        frontier = members
                    if frontier.size == 0:
                        break
                    settled_parts.append(frontier)
                    kernels._observe_frontier(run, frontier.size)
                    ev_t, ev_c = pass_events(frontier, heavy=False)
                    run.iterations.append(
                        IterationStats.make(
                            push=frontier,
                            pushes=int(ev_t.size),
                            cas_ops=int(ev_t.size),
                        )
                    )
                    if ev_t.size:
                        js = np.floor_divide(ev_c, delta).astype(np.int64)
                        same = js == i
                        members = np.unique(ev_t[same])
                        other = np.nonzero(~same)[0]
                        for j in np.unique(js[other]):
                            buckets.setdefault(int(j), []).append(
                                ev_t[other[js[other] == j]]
                            )
                    else:
                        members = np.empty(0, dtype=np.int64)
                if not settled_parts:
                    continue
                # Heavy-edge phase: one relaxation pass over the bucket.
                settled = np.concatenate(settled_parts)
                kernels._observe_frontier(run, settled.size)
                ev_t, ev_c = pass_events(settled, heavy=True)
                run.iterations.append(
                    IterationStats.make(
                        push=settled,
                        pushes=int(ev_t.size),
                        cas_ops=int(ev_t.size),
                    )
                )
                if ev_t.size:
                    js = np.floor_divide(ev_c, delta).astype(np.int64)
                    for j in np.unique(js):
                        buckets.setdefault(int(j), []).append(ev_t[js == j])
        return run

    def _fs_dijkstra(self, view, source: int) -> ComputeRun:
        """Serial binary-heap Dijkstra (the textbook comparator)."""
        import heapq

        n = max(view.num_nodes, 1)
        values = np.full(n, np.inf)
        run = ComputeRun(algorithm=self.name, model="FS", values=values, source=source)
        run.linear_scans = 1
        if source >= view.num_nodes:
            return run
        values[source] = 0.0
        heap = [(0.0, source)]
        settled = np.zeros(n, dtype=bool)
        while heap:
            distance, v = heapq.heappop(heap)
            if settled[v]:
                continue
            settled[v] = True
            pushes = 0
            for w, weight in view.out_neigh(v):
                candidate = distance + weight
                if candidate < values[w]:
                    values[w] = candidate
                    heapq.heappush(heap, (candidate, w))
                    pushes += 1
            # One settled vertex per round: Dijkstra is inherently
            # serial, which the pricer renders as a serial makespan.
            run.iterations.append(
                IterationStats.make(push=[v], pushes=pushes, cas_ops=pushes)
            )
        return run

"""The SAGA-Bench data-structure API.

The paper defines a small API that every data structure implements so
that compute models and algorithms are structure-agnostic (Section
III-D): ``update()``, ``out_neigh()``, ``in_neigh()`` and
``performAlg()`` (the latter lives in :mod:`repro.algorithms.registry`).

Every structure here is *functional* -- it really stores the graph and
answers neighbor queries -- and *instrumented* -- each operation charges
cycle costs from the shared :class:`~repro.sim.cost_model.CostModel`
and (optionally) emits the memory addresses it touches.  The simulated
phase latency is the scheduler makespan over the charged tasks.

Edges are ingested uniquely: as in the paper, every insert first
searches for the edge and only inserts on a negative search.

Task emission is columnar by default: each structure provides a *task
emitter* that records the primitive counts of every store operation
(slots scanned, blocks chased, entries rehashed...) and prices them in
bulk into a :class:`~repro.sim.tasks.TaskArray` with vectorized
arithmetic, instead of allocating one ``Task`` object per edge.  The
legacy object path remains selectable with ``SAGA_BENCH_LEGACY_TASKS=1``
and produces bit-identical schedules (see ``tests/test_task_kernels.py``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StructureError
from repro.graph.edge import EdgeBatch
from repro.sim.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.sim.machine import MachineConfig, SKYLAKE_GOLD_6142
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.sim.memory import AddressSpace
from repro.sim.scheduler import (
    ScheduleResult,
    Task,
    TaskArray,
    Tasks,
    use_legacy_tasks,
)
from repro.sim.trace import MemoryTrace, NullRecorder, TraceRecorder

#: Lock-namespace offset separating out-store locks from in-store locks.
IN_STORE_LOCK_BASE = 1 << 40


@dataclass
class ExecutionContext:
    """Where and how a phase executes on the simulated machine.

    Bundles the machine description, the thread count (defaulting to
    all hardware threads, as in the paper's methodology), the cost
    model, and an optional trace recorder for architecture profiling.
    """

    machine: MachineConfig = SKYLAKE_GOLD_6142
    threads: Optional[int] = None
    cost_model: CostModel = DEFAULT_COST_MODEL
    recorder: Optional[TraceRecorder] = None
    #: Keep the batch's tasks in ``UpdateResult.extra["tasks"]`` so
    #: callers can re-schedule them (e.g. the core-scaling sweep).
    keep_tasks: bool = False

    def __post_init__(self) -> None:
        if self.threads is None:
            self.threads = self.machine.hardware_threads
        if self.threads < 1:
            raise StructureError(f"threads must be >= 1, got {self.threads}")

    @property
    def effective_recorder(self):
        return self.recorder if self.recorder is not None else NullRecorder()

    def seconds(self, cycles: float) -> float:
        return self.machine.cycles_to_seconds(cycles)


@dataclass
class UpdateResult:
    """Outcome of ingesting one batch into a data structure."""

    schedule: ScheduleResult
    edges_attempted: int
    edges_inserted: int
    duplicates: int
    trace: Optional[MemoryTrace] = None
    extra: dict = field(default_factory=dict)

    @property
    def latency_cycles(self) -> float:
        return self.schedule.makespan_cycles

    def latency_seconds(self, machine: MachineConfig) -> float:
        return machine.cycles_to_seconds(self.latency_cycles)


class _ObjectEmitter:
    """Fallback columnar emitter: runs the object path, boxes at the end.

    Structures that do not define their own emitter still get a
    :class:`TaskArray` out of the columnar ingest loop -- they just pay
    the per-edge ``Task`` allocation they would have paid anyway.
    """

    __slots__ = ("_structure", "_tasks")

    def __init__(self, structure: "GraphDataStructure") -> None:
        self._structure = structure
        self._tasks: List[Task] = []

    @property
    def rows(self) -> int:
        return len(self._tasks)

    def insert_out(self, src, dst, weight, recorder) -> bool:
        task, changed = self._structure._insert_out(src, dst, weight, recorder)
        self._tasks.append(task)
        return changed

    def insert_in(self, src, dst, weight, recorder) -> bool:
        task, changed = self._structure._insert_in(src, dst, weight, recorder)
        self._tasks.append(task)
        return changed

    def delete_out(self, src, dst, recorder) -> bool:
        task, changed = self._structure._delete_out(src, dst, recorder)
        self._tasks.append(task)
        return changed

    def delete_in(self, src, dst, recorder) -> bool:
        task, changed = self._structure._delete_in(src, dst, recorder)
        self._tasks.append(task)
        return changed

    def finish(self, batch_size: int) -> TaskArray:
        self._tasks.extend(self._structure._batch_overhead_tasks(batch_size))
        return TaskArray.from_tasks(self._tasks)


class GraphDataStructure(abc.ABC):
    """Base class for the four streaming-graph data structures.

    Subclasses implement single-edge insertion into the out-store and
    in-store (:meth:`_insert_out` / :meth:`_insert_in`), neighbor
    retrieval, analytic traversal costs, and the scheduling style used
    to turn per-edge tasks into a batch-update makespan.

    Parameters
    ----------
    max_nodes:
        Upper bound on vertex ids (property arrays and index arrays are
        sized to it, as in the C++ benchmark where |V| is known from
        the dataset header).
    directed:
        Directed graphs keep a second copy of the structure for
        in-neighbors (paper footnote 3); undirected graphs ingest each
        edge in both orientations into the single store.
    """

    #: Short name used in tables ("AS", "AC", "Stinger", "DAH").
    name: str = "?"

    def __init__(
        self,
        max_nodes: int,
        directed: bool = True,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        address_space: Optional[AddressSpace] = None,
    ) -> None:
        if max_nodes < 1:
            raise StructureError(f"max_nodes must be >= 1, got {max_nodes}")
        self.max_nodes = max_nodes
        self.directed = directed
        self.cost = cost_model
        self.space = address_space if address_space is not None else AddressSpace()
        self._num_edges = 0
        self._max_seen_node = -1

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def update(self, batch: EdgeBatch, ctx: Optional[ExecutionContext] = None) -> UpdateResult:
        """Ingest ``batch``: the paper's *update phase* for one batch.

        Returns an :class:`UpdateResult` whose latency is the simulated
        parallel makespan of the per-edge insertion tasks under this
        structure's multithreading style.
        """
        if ctx is None:
            ctx = ExecutionContext()
        recorder = ctx.effective_recorder
        with TRACER.span("emission"):
            tasks, inserted, duplicates = self._ingest(batch, recorder, delete=False)
        with TRACER.span("schedule") as span:
            schedule = self._schedule(tasks, ctx)
            span.add_cycles(schedule.makespan_cycles)
        if METRICS.enabled:
            self._record_schedule_metrics(schedule)
        trace = recorder.finalize() if ctx.recorder is not None else None
        result = UpdateResult(
            schedule=schedule,
            edges_attempted=len(batch),
            edges_inserted=inserted,
            duplicates=duplicates,
            trace=trace,
        )
        if ctx.keep_tasks:
            result.extra["tasks"] = tasks
        return result

    def delete(self, batch: EdgeBatch, ctx: Optional[ExecutionContext] = None) -> UpdateResult:
        """Remove ``batch``'s edges: a deletion-only update phase.

        Deletions follow the same search-then-act discipline as
        insertions and the same multithreading style; an edge that is
        not present costs its (negative) search and is reported in
        ``duplicates``.  Note that incremental *compute* over deletions
        is approximate for the monotone algorithms (see
        ``repro.compute.incremental``); from-scratch recomputation is
        always exact.
        """
        if ctx is None:
            ctx = ExecutionContext()
        recorder = ctx.effective_recorder
        with TRACER.span("emission"):
            tasks, removed, missing = self._ingest(batch, recorder, delete=True)
        with TRACER.span("schedule") as span:
            schedule = self._schedule(tasks, ctx)
            span.add_cycles(schedule.makespan_cycles)
        if METRICS.enabled:
            self._record_schedule_metrics(schedule)
        trace = recorder.finalize() if ctx.recorder is not None else None
        result = UpdateResult(
            schedule=schedule,
            edges_attempted=len(batch),
            edges_inserted=removed,  # edges *affected* by this phase
            duplicates=missing,
            trace=trace,
        )
        result.extra["operation"] = "delete"
        if ctx.keep_tasks:
            result.extra["tasks"] = tasks
        return result

    def _ingest(
        self, batch: EdgeBatch, recorder, delete: bool
    ) -> Tuple[Tasks, int, int]:
        """Apply ``batch`` to the stores and emit its tasks.

        Returns ``(tasks, positive, negative)`` where *positive* counts
        edges actually inserted (or removed) and *negative* counts
        duplicates (or misses).
        """
        if use_legacy_tasks():
            return self._ingest_objects(batch, recorder, delete)
        return self._ingest_columnar(batch, recorder, delete)

    def _ingest_objects(
        self, batch: EdgeBatch, recorder, delete: bool
    ) -> Tuple[List[Task], int, int]:
        """The legacy per-edge object loop (one ``Task`` per operation)."""
        tasks: List[Task] = []
        positive = 0
        negative = 0
        for i in range(len(batch)):
            u = int(batch.src[i])
            v = int(batch.dst[i])
            self._check_vertex(u)
            self._check_vertex(v)
            recorder.begin_task(len(tasks))
            if delete:
                task, changed = self._delete_out(u, v, recorder)
            else:
                w = float(batch.weight[i])
                task, changed = self._insert_out(u, v, w, recorder)
            tasks.append(task)
            if changed:
                positive += 1
                self._num_edges += -1 if delete else 1
            else:
                negative += 1
            if u != v or self.directed:
                recorder.begin_task(len(tasks))
                if delete:
                    if self.directed:
                        tasks.append(self._delete_in(v, u, recorder)[0])
                    else:
                        tasks.append(self._delete_out(v, u, recorder)[0])
                else:
                    if self.directed:
                        tasks.append(self._insert_in(v, u, w, recorder)[0])
                    else:
                        tasks.append(self._insert_out(v, u, w, recorder)[0])
            if not delete:
                self._max_seen_node = max(self._max_seen_node, u, v)
        tasks.extend(self._batch_overhead_tasks(len(batch)))
        return tasks, positive, negative

    def _ingest_columnar(
        self, batch: EdgeBatch, recorder, delete: bool
    ) -> Tuple[TaskArray, int, int]:
        """The columnar hot path: count per edge, price in bulk.

        Store mutation is shared with the object path (same store
        methods, same call order, same trace); only task materialization
        differs.  The whole batch is range-checked up front, so an
        out-of-range vertex raises before any edge is applied (the
        object path raises mid-batch).
        """
        n = len(batch)
        self._check_batch(batch)
        emitter = self._make_emitter(delete)
        tracing = recorder.enabled
        directed = self.directed
        # Untraced batches take the fused bulk loop when the emitter
        # provides one (store internals inlined, no per-op dispatch);
        # traced batches keep the per-edge loop, whose store methods
        # emit the memory accesses.
        bulk = None if tracing else getattr(emitter, "ingest_batch", None)
        if bulk is not None:
            positive = bulk(batch)
        elif delete:
            src = batch.src.tolist()
            dst = batch.dst.tolist()
            positive = 0
            op_out = emitter.delete_out
            op_in = emitter.delete_in if directed else emitter.delete_out
            for i in range(n):
                u = src[i]
                v = dst[i]
                if tracing:
                    recorder.begin_task(emitter.rows)
                if op_out(u, v, recorder):
                    positive += 1
                if u != v or directed:
                    if tracing:
                        recorder.begin_task(emitter.rows)
                    op_in(v, u, recorder)
        else:
            src = batch.src.tolist()
            dst = batch.dst.tolist()
            weight = batch.weight.tolist()
            positive = 0
            op_out = emitter.insert_out
            op_in = emitter.insert_in if directed else emitter.insert_out
            for i in range(n):
                u = src[i]
                v = dst[i]
                w = weight[i]
                if tracing:
                    recorder.begin_task(emitter.rows)
                if op_out(u, v, w, recorder):
                    positive += 1
                if u != v or directed:
                    if tracing:
                        recorder.begin_task(emitter.rows)
                    op_in(v, u, w, recorder)
        if delete:
            self._num_edges -= positive
        else:
            self._num_edges += positive
            if n:
                self._max_seen_node = max(
                    self._max_seen_node, int(batch.src.max()), int(batch.dst.max())
                )
        return emitter.finish(n), positive, n - positive

    def _make_emitter(self, delete: bool):
        """The columnar task emitter for one batch (per structure).

        The default wraps the object path; structures override this
        with an emitter that records primitive counts and prices them
        vectorized in ``finish()``.
        """
        return _ObjectEmitter(self)

    def _delete_out(self, src: int, dst: int, recorder) -> Tuple[Task, bool]:
        """Remove ``src -> dst`` from the out-store (per structure)."""
        raise StructureError(f"{self.name} does not support deletion")

    def _delete_in(self, src: int, dst: int, recorder) -> Tuple[Task, bool]:
        """Remove ``src -> dst`` from the in-store (per structure)."""
        raise StructureError(f"{self.name} does not support deletion")

    def schedule_tasks(self, tasks: Tasks, ctx: ExecutionContext) -> ScheduleResult:
        """Re-schedule kept tasks under a different context.

        Tasks depend only on graph content, not on thread count, so one
        ingest can be re-priced at many machine shapes (the Fig. 9(a)
        core-scaling sweep).
        """
        with TRACER.span("schedule") as span:
            schedule = self._schedule(tasks, ctx)
            span.add_cycles(schedule.makespan_cycles)
        if METRICS.enabled:
            self._record_schedule_metrics(schedule)
        return schedule

    def _record_schedule_metrics(self, schedule: ScheduleResult) -> None:
        """Fold one schedule's aggregates into the metrics registry."""
        METRICS.counter(
            "sim_schedules_total",
            "phase schedules executed",
            structure=self.name,
        ).inc()
        METRICS.counter(
            "sim_tasks_emitted_total",
            "tasks emitted into the schedulers",
            structure=self.name,
        ).inc(schedule.task_count)
        if schedule.contended_acquires:
            METRICS.counter(
                "sim_lock_contended_acquires_total",
                "contended lock acquires observed by the DES scheduler",
                structure=self.name,
            ).inc(schedule.contended_acquires)
            METRICS.counter(
                "sim_lock_wait_cycles_total",
                "simulated cycles spent waiting on locks",
                structure=self.name,
            ).inc(schedule.lock_wait_cycles)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of vertices seen so far (max id + 1)."""
        return self._max_seen_node + 1

    @property
    def num_edges(self) -> int:
        """Number of unique logical edges ingested so far."""
        return self._num_edges

    @abc.abstractmethod
    def out_neigh(self, u: int) -> Sequence[Tuple[int, float]]:
        """The ``(neighbor, weight)`` pairs of ``u``'s out-edges."""

    def in_neigh(self, u: int) -> Sequence[Tuple[int, float]]:
        """The ``(neighbor, weight)`` pairs of ``u``'s in-edges.

        For undirected graphs this is the same as :meth:`out_neigh`.
        """
        if not self.directed:
            return self.out_neigh(u)
        return self._in_neigh_directed(u)

    def out_degree(self, u: int) -> int:
        return len(self.out_neigh(u))

    def in_degree(self, u: int) -> int:
        return len(self.in_neigh(u))

    def vertices(self) -> Iterable[int]:
        """All vertex ids from 0 to the largest seen."""
        return range(self.num_nodes)

    def csr_arrays(self, direction: str = "out"):
        """Columnar CSR snapshot of one adjacency direction.

        Neighbor order within each vertex matches :meth:`out_neigh` /
        :meth:`in_neigh` iteration order, so vectorized compute kernels
        reproduce the per-vertex loops bit-for-bit (see
        :mod:`repro.compute.kernels`).  Structures with columnar
        internals may override this with a zero-copy export.
        """
        # Imported lazily: repro.compute.pricing imports repro.graph.
        from repro.compute.kernels import csr_from_pair_rows

        n = self.num_nodes
        neigh = self.out_neigh if direction == "out" else self.in_neigh
        # Materialize each vertex's row once (Stinger/BA build theirs
        # per call), then convert all pairs in one bulk np.array.
        rows = [neigh(u) for u in range(n)]
        return csr_from_pair_rows(rows, n)

    # ------------------------------------------------------------------
    # Analytic compute-phase costs
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def out_traversal_cost(self, u: int) -> float:
        """Cycles to traverse ``u``'s out-neighbors once.

        The compute executor charges this per processed vertex; the
        constants come from the shared cost model but the *shape*
        (contiguous scan vs pointer chasing vs hashed retrieval) is the
        structure's own (paper Section V-B, "Impact of data structures
        ... on compute latency").
        """

    def in_traversal_cost(self, u: int) -> float:
        """Cycles to traverse ``u``'s in-neighbors once."""
        if not self.directed:
            return self.out_traversal_cost(u)
        return self._in_traversal_cost_directed(u)

    def degree_query_cost(self) -> float:
        """Cycles for one degree lookup during compute.

        Adjacency-based structures read a header field; DAH overrides
        this with its table meta-query cost (Section III-A4).
        """
        return self.cost.probe_element

    def trace_out_traversal(self, u: int, recorder) -> None:
        """Emit the memory accesses of one out-neighbor traversal."""
        self._trace_traversal(u, recorder, out=True)

    def trace_in_traversal(self, u: int, recorder) -> None:
        """Emit the memory accesses of one in-neighbor traversal."""
        if not self.directed:
            self._trace_traversal(u, recorder, out=True)
        else:
            self._trace_traversal(u, recorder, out=False)

    # ------------------------------------------------------------------
    # Subclass responsibilities
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _insert_out(self, src: int, dst: int, weight: float, recorder) -> Tuple[Task, bool]:
        """Insert ``src -> dst`` into the out-store.

        Returns the schedulable :class:`Task` for the insert and
        whether the edge was new (False for a duplicate).
        """

    @abc.abstractmethod
    def _insert_in(self, src: int, dst: int, weight: float, recorder) -> Tuple[Task, bool]:
        """Insert ``src -> dst`` into the in-store (directed only)."""

    @abc.abstractmethod
    def _in_neigh_directed(self, u: int) -> Sequence[Tuple[int, float]]:
        ...

    @abc.abstractmethod
    def _in_traversal_cost_directed(self, u: int) -> float:
        ...

    @abc.abstractmethod
    def _trace_traversal(self, u: int, recorder, out: bool) -> None:
        ...

    @abc.abstractmethod
    def _schedule(self, tasks: Tasks, ctx: ExecutionContext) -> ScheduleResult:
        """Turn the batch's tasks into a makespan (structure style)."""

    def _batch_overhead_tasks(self, batch_size: int) -> List[Task]:
        """Fixed per-batch overhead tasks (chunked routing etc.)."""
        return []

    # ------------------------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.max_nodes:
            raise StructureError(
                f"vertex {v} out of range [0, {self.max_nodes}) for {self.name}"
            )

    def _check_batch(self, batch: EdgeBatch) -> None:
        """Vectorized range check over a whole batch's endpoints."""
        if len(batch) == 0:
            return
        src = batch.src
        dst = batch.dst
        bad_src = (src < 0) | (src >= self.max_nodes)
        bad_dst = (dst < 0) | (dst >= self.max_nodes)
        bad = bad_src | bad_dst
        if bad.any():
            i = int(np.argmax(bad))
            self._check_vertex(int(src[i]) if bad_src[i] else int(dst[i]))

    def degrees_snapshot(self) -> Tuple[List[int], List[int]]:
        """(in-degrees, out-degrees) for all current vertices."""
        n = self.num_nodes
        outs = [self.out_degree(v) for v in range(n)]
        ins = outs if not self.directed else [self.in_degree(v) for v in range(n)]
        return list(ins), outs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} name={self.name} nodes={self.num_nodes} "
            f"edges={self.num_edges} directed={self.directed}>"
        )

"""Numpy-backed stores driven by the compiled ingest kernels.

Each plain Python store (``VectorStore``, ``_BlockedStore``, the
Stinger block store, DAH's tracked hash tables) has a *native* twin
here whose state lives in flat numpy arrays so the C kernels in
:mod:`repro.sim.cingest` can mutate it directly.  A native store
implements the exact same interface as its plain twin -- the per-edge
``insert``/``remove`` used by traced batches and the legacy object
path, neighbor/degree queries, traversal tracing, and the internal
accounting the tests poke (segment pools, capacities) -- with
bit-identical outcomes, trace addresses, and simulated-memory layout.

The fused batch path (``native_vec_ingest``) hands the whole batch to
the C kernel and returns the same count columns the Python
``bulk_ingest`` loop appends.  Simulated-memory accounting stays in
Python: the kernel logs one event per allocation-changing operation
(vector growth, segment relocation) and the store replays the log in
order after the call, so ``AddressSpace`` layout and segment-pool
statistics match the per-edge path exactly.

Store construction goes through the ``make_*_store`` factories: the
plain store is returned when the kernels are unavailable, the
structure is disabled via ``SAGA_BENCH_NO_CINGEST``, or the legacy
object path is active (keeping the legacy baseline's timing honest).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.vectorstore import (
    ENTRY_BYTES,
    HEADER_BYTES,
    INITIAL_CAPACITY,
    InsertOutcome,
    RemoveOutcome,
    VectorStore,
)
from repro.obs.tracer import TRACER
from repro.sim import cingest
from repro.sim.memory import AddressSpace, Region
from repro.sim.scheduler import use_legacy_tasks

#: Initial per-store entry pool; doubled on demand (kernel stall).
INITIAL_POOL = 1 << 14


class _PooledVectorState:
    """Flat (neighbor, weight) pool + per-vertex spans, shared by the
    vector-family native stores (AS/AC vectors and BA segments have the
    same mutation semantics; only growth *accounting* differs)."""

    native = True

    def __init__(self, max_nodes: int, space: AddressSpace, label: str,
                 kernels: cingest.IngestKernels) -> None:
        self.max_nodes = max_nodes
        self.space = space
        self.label = label
        self._kernels = kernels
        self._off = np.zeros(max_nodes, dtype=np.int64)
        self._len = np.zeros(max_nodes, dtype=np.int64)
        self._capacity = np.zeros(max_nodes, dtype=np.int64)
        self._nbr = np.empty(INITIAL_POOL, dtype=np.int64)
        self._wgt = np.empty(INITIAL_POOL, dtype=np.float64)
        self._state = np.zeros(1, dtype=np.int64)  # [0] = pool cursor
        self._header = space.alloc(max_nodes * HEADER_BYTES, f"{label}.headers")

    # -- pool plumbing -------------------------------------------------

    def _kernel_args(self) -> tuple:
        p = self._kernels._p
        return (
            p(self._off), p(self._len), p(self._capacity),
            p(self._nbr), p(self._wgt), p(self._state), len(self._nbr),
        )

    def _grow_pool(self, need: int) -> None:
        """Double the entry pool until ``need`` more slots fit."""
        target = int(self._state[0]) + int(need)
        size = len(self._nbr)
        while size < target:
            size *= 2
        if size > len(self._nbr):
            cursor = int(self._state[0])
            nbr = np.empty(size, dtype=np.int64)
            wgt = np.empty(size, dtype=np.float64)
            nbr[:cursor] = self._nbr[:cursor]
            wgt[:cursor] = self._wgt[:cursor]
            self._nbr = nbr
            self._wgt = wgt

    def _find(self, u: int, dst: int) -> Optional[int]:
        off = int(self._off[u])
        n = int(self._len[u])
        matches = np.nonzero(self._nbr[off:off + n] == dst)[0]
        return int(matches[0]) if matches.size else None

    def _grow(self, src: int) -> int:
        """Relocate ``src`` to a doubled span; returns entries moved."""
        old_len = int(self._len[src])
        capacity = int(self._capacity[src])
        new_capacity = capacity * 2 if capacity else INITIAL_CAPACITY
        if int(self._state[0]) + new_capacity > len(self._nbr):
            self._grow_pool(new_capacity)
        off = int(self._off[src])
        noff = int(self._state[0])
        self._nbr[noff:noff + old_len] = self._nbr[off:off + old_len]
        self._wgt[noff:noff + old_len] = self._wgt[off:off + old_len]
        self._state[0] = noff + new_capacity
        self._off[src] = noff
        self._capacity[src] = new_capacity
        self._replay_grow(src, new_capacity)
        return old_len

    def _replay_grow(self, vertex: int, new_capacity: int) -> None:
        raise NotImplementedError

    # -- queries -------------------------------------------------------

    def neighbors(self, u: int) -> List[Tuple[int, float]]:
        off = int(self._off[u])
        n = int(self._len[u])
        return list(zip(self._nbr[off:off + n].tolist(),
                        self._wgt[off:off + n].tolist()))

    def degree(self, u: int) -> int:
        return int(self._len[u])

    @property
    def header_region(self) -> Region:
        return self._header


class NativeVectorStore(_PooledVectorState):
    """Kernel-backed twin of :class:`~repro.graph.vectorstore.VectorStore`."""

    def __init__(self, max_nodes, space, label, kernels) -> None:
        super().__init__(max_nodes, space, label, kernels)
        self._region: List[Optional[Region]] = [None] * max_nodes
        self._vec_label = f"{label}.vec"

    def _replay_grow(self, vertex: int, new_capacity: int) -> None:
        old_region = self._region[vertex]
        self._region[vertex] = self.space.alloc(
            new_capacity * ENTRY_BYTES, self._vec_label
        )
        if old_region is not None:
            self.space.free(old_region)

    def insert(self, src: int, dst: int, weight: float, recorder) -> InsertOutcome:
        tracing = recorder.enabled
        if tracing:
            recorder.access(self._header.element(src, HEADER_BYTES))
        length = int(self._len[src])
        existing = self._find(src, dst)
        if existing is not None:
            scanned = existing + 1
            if tracing:
                self._trace_scan(src, scanned, recorder)
            return InsertOutcome(scanned=scanned, inserted=False, grew_from=0)
        scanned = length
        if tracing:
            self._trace_scan(src, scanned, recorder)
        grew_from = 0
        if length == int(self._capacity[src]):
            grew_from = self._grow(src)
        off = int(self._off[src])
        self._nbr[off + length] = dst
        self._wgt[off + length] = weight
        self._len[src] = length + 1
        if tracing and self._region[src] is not None:
            recorder.access(
                self._region[src].element(length, ENTRY_BYTES), write=True
            )
        return InsertOutcome(scanned=scanned, inserted=True, grew_from=grew_from)

    def _trace_scan(self, src: int, count: int, recorder) -> None:
        region = self._region[src]
        if region is None or count == 0:
            return
        recorder.access_range(
            region.base, min(count, int(self._len[src])), ENTRY_BYTES
        )

    def remove(self, src: int, dst: int, recorder) -> RemoveOutcome:
        tracing = recorder.enabled
        if tracing:
            recorder.access(self._header.element(src, HEADER_BYTES))
        length = int(self._len[src])
        position = self._find(src, dst)
        if position is None:
            scanned = length
            if tracing:
                self._trace_scan(src, scanned, recorder)
            return RemoveOutcome(scanned=scanned, removed=False, moved=0)
        scanned = position + 1
        if tracing:
            self._trace_scan(src, scanned, recorder)
        off = int(self._off[src])
        last = length - 1
        moved = 0
        if position != last:
            self._nbr[off + position] = self._nbr[off + last]
            self._wgt[off + position] = self._wgt[off + last]
            moved = 1
            if tracing and self._region[src] is not None:
                recorder.access(
                    self._region[src].element(position, ENTRY_BYTES), write=True
                )
        self._len[src] = last
        return RemoveOutcome(scanned=scanned, removed=True, moved=moved)

    def trace_traversal(self, u: int, recorder) -> None:
        recorder.access(self._header.element(u, HEADER_BYTES))
        region = self._region[u]
        if region is not None:
            recorder.access_range(region.base, int(self._len[u]), ENTRY_BYTES)


class NativeBlockedStore(_PooledVectorState):
    """Kernel-backed twin of BA's ``_BlockedStore`` (pooled segments)."""

    def __init__(self, max_nodes, space, label, kernels) -> None:
        super().__init__(max_nodes, space, label, kernels)
        # Imported lazily to dodge the blocked -> nativestore cycle.
        from repro.graph.blocked import _SegmentPool

        self._pool_class = _SegmentPool
        self._segment: List[Optional[Region]] = [None] * max_nodes
        self._pools: Dict[int, object] = {}

    def _pool(self, capacity: int):
        pool = self._pools.get(capacity)
        if pool is None:
            pool = self._pool_class(capacity, self.space, self.label)
            self._pools[capacity] = pool
        return pool

    def _replay_grow(self, vertex: int, new_capacity: int) -> None:
        old_segment = self._segment[vertex]
        self._segment[vertex] = self._pool(new_capacity).acquire()
        if old_segment is not None:
            # Doubling growth: the vacated segment is half the new one.
            self._pool(new_capacity // 2).release(old_segment)

    def insert(self, src: int, dst: int, weight: float, recorder):
        """Search-then-insert; returns (scanned, inserted, relocated)."""
        tracing = recorder.enabled
        if tracing:
            recorder.access(self._header.element(src, 16))
        length = int(self._len[src])
        existing = self._find(src, dst)
        if existing is not None:
            scanned = existing + 1
            if tracing and self._segment[src] is not None:
                recorder.access_range(
                    self._segment[src].base, scanned, ENTRY_BYTES
                )
            return scanned, False, 0
        scanned = length
        if tracing and self._segment[src] is not None:
            recorder.access_range(self._segment[src].base, scanned, ENTRY_BYTES)
        relocated = 0
        if length == int(self._capacity[src]):
            relocated = self._grow(src)
        off = int(self._off[src])
        self._nbr[off + length] = dst
        self._wgt[off + length] = weight
        self._len[src] = length + 1
        if tracing:
            recorder.access(
                self._segment[src].element(length, ENTRY_BYTES), write=True
            )
        return scanned, True, relocated

    def remove(self, src: int, dst: int, recorder):
        """Swap-remove; returns (scanned, removed)."""
        length = int(self._len[src])
        position = self._find(src, dst)
        if position is None:
            return length, False
        off = int(self._off[src])
        last = length - 1
        if position != last:
            self._nbr[off + position] = self._nbr[off + last]
            self._wgt[off + position] = self._wgt[off + last]
        self._len[src] = last
        return position + 1, True

    def trace_traversal(self, u: int, recorder) -> None:
        recorder.access(self._header.element(u, 16))
        segment = self._segment[u]
        if segment is not None:
            recorder.access_range(segment.base, int(self._len[u]), ENTRY_BYTES)

    def pool_stats(self) -> Dict[int, Tuple[int, int]]:
        """{capacity: (allocations, reuses)} across all pools."""
        return {
            capacity: (pool.allocations, pool.reuses)
            for capacity, pool in sorted(self._pools.items())
        }


class NativeStingerStore:
    """Kernel-backed twin of ``_StingerStore`` (linked edge blocks).

    Blocks live in a flat pool (block id == pool slot; ids are never
    reused, so the pool cursor doubles as ``_next_block_id``), each
    vertex's block list is a span in a flat block-id pool, and the
    per-block ``Region`` objects -- the simulated addresses the traced
    per-edge path emits -- are kept in a Python list indexed by id.
    """

    native = True

    #: Initial pool sizes (doubled on demand via kernel stalls).
    INITIAL_BIDS = 1 << 12
    INITIAL_BLOCKS = 256

    def __init__(self, max_nodes: int, space: AddressSpace, label: str,
                 lock_base: int, kernels: cingest.IngestKernels) -> None:
        from repro.graph.stinger import BLOCK_BYTES, VERTEX_ENTRY_BYTES

        self.max_nodes = max_nodes
        self.space = space
        self.label = label
        self.lock_base = lock_base
        self._kernels = kernels
        self._boff = np.zeros(max_nodes, dtype=np.int64)
        self._bcnt = np.zeros(max_nodes, dtype=np.int64)
        self._bcap = np.zeros(max_nodes, dtype=np.int64)
        self._deg = np.zeros(max_nodes, dtype=np.int64)
        self._bids = np.empty(self.INITIAL_BIDS, dtype=np.int64)
        self._bnbr = np.empty(self.INITIAL_BLOCKS * 16, dtype=np.int64)
        self._bwgt = np.empty(self.INITIAL_BLOCKS * 16, dtype=np.float64)
        self._blen = np.zeros(self.INITIAL_BLOCKS, dtype=np.int64)
        self._state = np.zeros(2, dtype=np.int64)  # [bid cursor, next id]
        self._regions: List[Region] = []
        self._vertex_array = space.alloc(
            max_nodes * VERTEX_ENTRY_BYTES, f"{label}.vertices"
        )
        self._block_label = f"{label}.block"
        self._block_bytes = BLOCK_BYTES

    # -- pool plumbing -------------------------------------------------

    def _kernel_args(self) -> tuple:
        p = self._kernels._p
        return (
            self.lock_base,
            p(self._boff), p(self._bcnt), p(self._bcap), p(self._deg),
            p(self._bids), len(self._bids),
            p(self._bnbr), p(self._bwgt), p(self._blen), len(self._blen),
            p(self._state),
        )

    def _grow_bid_pool(self, need: int) -> None:
        target = int(self._state[0]) + int(need)
        size = len(self._bids)
        while size < target:
            size *= 2
        if size > len(self._bids):
            cursor = int(self._state[0])
            bids = np.empty(size, dtype=np.int64)
            bids[:cursor] = self._bids[:cursor]
            self._bids = bids

    def _grow_block_pool(self) -> None:
        blocks = 2 * len(self._blen)
        used = int(self._state[1])
        bnbr = np.empty(blocks * 16, dtype=np.int64)
        bwgt = np.empty(blocks * 16, dtype=np.float64)
        blen = np.zeros(blocks, dtype=np.int64)
        bnbr[:used * 16] = self._bnbr[:used * 16]
        bwgt[:used * 16] = self._bwgt[:used * 16]
        blen[:used] = self._blen[:used]
        self._bnbr = bnbr
        self._bwgt = bwgt
        self._blen = blen

    def _replay_event(self, kind: int, block_id: int) -> None:
        if kind == 0:  # block allocated (ids are sequential)
            self._regions.append(
                self.space.alloc(self._block_bytes, self._block_label)
            )
        else:  # tail block freed
            self.space.free(self._regions[block_id])

    # -- per-edge twin (traced batches and the legacy object path) -----

    def _find_edge(self, u: int, dst: int) -> Tuple[int, int, int]:
        """(block index, slot, probes before the block); (-1,-1,deg) miss."""
        boff = int(self._boff[u])
        before = 0
        for k in range(int(self._bcnt[u])):
            bid = int(self._bids[boff + k])
            length = int(self._blen[bid])
            matches = np.nonzero(
                self._bnbr[bid * 16:bid * 16 + length] == dst
            )[0]
            if matches.size:
                return k, int(matches[0]), before
            before += length
        return -1, -1, before

    def _append_block(self, u: int) -> int:
        """Create a block and link it at ``u``'s tail; returns its id."""
        bcnt = int(self._bcnt[u])
        if bcnt == int(self._bcap[u]):
            need = int(self._bcap[u]) * 2 or 4
            self._grow_bid_pool(need)
            boff = int(self._boff[u])
            noff = int(self._state[0])
            self._bids[noff:noff + bcnt] = self._bids[boff:boff + bcnt]
            self._state[0] = noff + need
            self._boff[u] = noff
            self._bcap[u] = need
        if int(self._state[1]) >= len(self._blen):
            self._grow_block_pool()
        bid = int(self._state[1])
        self._state[1] = bid + 1
        self._blen[bid] = 0
        self._bids[int(self._boff[u]) + bcnt] = bid
        self._bcnt[u] = bcnt + 1
        self._replay_event(0, bid)
        return bid

    def insert(self, src: int, dst: int, weight: float, recorder):
        from repro.graph.stinger import (
            BLOCK_CAPACITY,
            VERTEX_ENTRY_BYTES,
            _InsertOutcome,
        )

        tracing = recorder.enabled
        if tracing:
            recorder.access(self._vertex_array.element(src, VERTEX_ENTRY_BYTES))
        bi, slot, before = self._find_edge(src, dst)
        if bi >= 0:
            if tracing:
                self._trace_scan(src, bi + 1, recorder)
            return _InsertOutcome(
                search_chases=bi + 1,
                search_probes=before + slot + 1,
                space_chases=0,
                inserted=False,
                new_block=False,
                lock=None,
            )
        bcnt = int(self._bcnt[src])
        search_probes = int(self._deg[src])
        if tracing:
            self._trace_scan(src, bcnt, recorder)
        boff = int(self._boff[src])
        target = None
        for k in range(bcnt):
            if int(self._blen[int(self._bids[boff + k])]) < BLOCK_CAPACITY:
                target = k
                break
        new_block = False
        if target is None:
            space_chases = bcnt
            self._append_block(src)
            new_block = True
            target = bcnt
        else:
            space_chases = target + 1
        tb = int(self._bids[int(self._boff[src]) + target])
        tslot = int(self._blen[tb])
        self._bnbr[tb * 16 + tslot] = dst
        self._bwgt[tb * 16 + tslot] = weight
        self._blen[tb] = tslot + 1
        self._deg[src] += 1
        if tracing:
            recorder.access(self._entry_address(tb, tslot), write=True)
        return _InsertOutcome(
            search_chases=bcnt,
            search_probes=search_probes,
            space_chases=space_chases,
            inserted=True,
            new_block=new_block,
            lock=self.lock_base + tb,
        )

    def remove(self, src: int, dst: int, recorder):
        from repro.graph.stinger import VERTEX_ENTRY_BYTES, _InsertOutcome

        tracing = recorder.enabled
        if tracing:
            recorder.access(self._vertex_array.element(src, VERTEX_ENTRY_BYTES))
        bi, slot, before = self._find_edge(src, dst)
        if bi < 0:
            if tracing:
                self._trace_scan(src, int(self._bcnt[src]), recorder)
            return _InsertOutcome(
                search_chases=int(self._bcnt[src]),
                search_probes=int(self._deg[src]),
                space_chases=0,
                inserted=False,
                new_block=False,
                lock=None,
            )
        if tracing:
            self._trace_scan(src, bi + 1, recorder)
        tb = int(self._bids[int(self._boff[src]) + bi])
        last = int(self._blen[tb]) - 1
        if slot != last:
            self._bnbr[tb * 16 + slot] = self._bnbr[tb * 16 + last]
            self._bwgt[tb * 16 + slot] = self._bwgt[tb * 16 + last]
            if tracing:
                recorder.access(self._entry_address(tb, slot), write=True)
        self._blen[tb] = last
        self._deg[src] -= 1
        freed = False
        if last == 0 and bi == int(self._bcnt[src]) - 1:
            self._bcnt[src] = bi
            self._replay_event(1, tb)
            freed = True
        return _InsertOutcome(
            search_chases=bi + 1,
            search_probes=before + slot + 1,
            space_chases=0,
            inserted=True,
            new_block=freed,
            lock=self.lock_base + tb,
        )

    def _entry_address(self, block_id: int, slot: int) -> int:
        from repro.graph.stinger import BLOCK_HEADER_BYTES

        return (
            self._regions[block_id].base
            + BLOCK_HEADER_BYTES
            + slot * ENTRY_BYTES
        )

    def _trace_scan(self, u: int, block_count: int, recorder) -> None:
        from repro.graph.stinger import BLOCK_HEADER_BYTES

        boff = int(self._boff[u])
        for k in range(block_count):
            bid = int(self._bids[boff + k])
            region = self._regions[bid]
            recorder.access(region.base)  # header / next pointer
            recorder.access_range(
                region.base + BLOCK_HEADER_BYTES,
                int(self._blen[bid]),
                ENTRY_BYTES,
            )

    # -- queries -------------------------------------------------------

    def neighbors(self, u: int) -> List[Tuple[int, float]]:
        boff = int(self._boff[u])
        result: List[Tuple[int, float]] = []
        for k in range(int(self._bcnt[u])):
            bid = int(self._bids[boff + k])
            length = int(self._blen[bid])
            result.extend(
                zip(
                    self._bnbr[bid * 16:bid * 16 + length].tolist(),
                    self._bwgt[bid * 16:bid * 16 + length].tolist(),
                )
            )
        return result

    def degree(self, u: int) -> int:
        return int(self._deg[u])

    def block_count(self, u: int) -> int:
        return int(self._bcnt[u])

    def trace_traversal(self, u: int, recorder) -> None:
        from repro.graph.stinger import VERTEX_ENTRY_BYTES

        recorder.access(self._vertex_array.element(u, VERTEX_ENTRY_BYTES))
        self._trace_scan(u, int(self._bcnt[u]), recorder)

    @property
    def _blocks(self):
        """Per-vertex ``_EdgeBlock`` views (plain-store debug shape)."""
        from repro.graph.stinger import _EdgeBlock

        result = []
        for u in range(self.max_nodes):
            boff = int(self._boff[u])
            vertex_blocks = []
            for k in range(int(self._bcnt[u])):
                bid = int(self._bids[boff + k])
                length = int(self._blen[bid])
                vertex_blocks.append(
                    _EdgeBlock(
                        bid,
                        self._regions[bid],
                        list(
                            zip(
                                self._bnbr[bid * 16:bid * 16 + length].tolist(),
                                self._bwgt[bid * 16:bid * 16 + length].tolist(),
                            )
                        ),
                    )
                )
            result.append(vertex_blocks)
        return result


def native_stinger_ingest(out_store, in_store, batch, directed, delete):
    """Fused batch ingest through the compiled Stinger kernel.

    Returns ``(positive, chases, probes, space, hit, new_block, lock)``
    with the columns as numpy arrays matching the fused Python loop
    row for row; block alloc/free events replay in call order so the
    simulated address space lays out identically.
    """
    from repro.sim.scheduler import NO_LOCK

    kernels = out_store._kernels
    n = len(batch)
    src = np.ascontiguousarray(batch.src, dtype=np.int64)
    dst = np.ascontiguousarray(batch.dst, dtype=np.int64)
    if delete:
        wgt = np.empty(1, dtype=np.float64)
    else:
        wgt = np.ascontiguousarray(batch.weight, dtype=np.float64)
    if directed:
        rows = 2 * n
    else:
        rows = n + int(np.count_nonzero(src != dst))
    chases = np.zeros(rows, dtype=np.int64)
    probes = np.zeros(rows, dtype=np.int64)
    space = np.zeros(rows, dtype=np.int64)
    hit = np.zeros(rows, dtype=np.bool_)
    newblk = np.zeros(rows, dtype=np.bool_)
    lock = np.zeros(rows, dtype=np.int64)
    events = np.zeros(3 * (rows + 1), dtype=np.int64)
    ctl = np.zeros(8, dtype=np.int64)
    p = kernels._p
    with TRACER.span("ingest.ckernel"):
        while True:
            rc = kernels.stinger_ingest(
                n, p(src), p(dst), p(wgt),
                int(directed), int(delete), int(NO_LOCK),
                *out_store._kernel_args(), *in_store._kernel_args(),
                p(chases), p(probes), p(space), p(hit), p(newblk), p(lock),
                p(events), p(ctl),
            )
            if rc == cingest.OK:
                break
            stalled = out_store if int(ctl[5]) == 0 else in_store
            if int(ctl[6]) == 0:
                stalled._grow_bid_pool(int(ctl[7]))
            else:
                stalled._grow_block_pool()
    for k in range(int(ctl[4])):
        code, block_id = int(events[3 * k]), int(events[3 * k + 1])
        store = in_store if code >= 2 else out_store
        store._replay_event(code & 1, block_id)
    return int(ctl[3]), chases, probes, space, hit, newblk, lock


def native_vec_ingest(out_store, in_store, batch, directed, delete,
                      record_moved=True):
    """Fused batch ingest through the compiled vector kernel.

    Operation for operation equivalent to ``bulk_ingest`` -- same store
    mutations in the same order, same scanned/hit/aux rows, same
    simulated-memory layout (growth events replayed in call order).
    Returns ``(positive, scanned, hit, aux)`` with the columns as numpy
    arrays, ready for the emitters' vectorized pricing.
    """
    kernels = out_store._kernels
    n = len(batch)
    src = np.ascontiguousarray(batch.src, dtype=np.int64)
    dst = np.ascontiguousarray(batch.dst, dtype=np.int64)
    if delete:
        wgt = np.empty(1, dtype=np.float64)
    else:
        wgt = np.ascontiguousarray(batch.weight, dtype=np.float64)
    if directed:
        rows = 2 * n
    else:
        rows = n + int(np.count_nonzero(src != dst))
    scanned = np.zeros(rows, dtype=np.int64)
    hit = np.zeros(rows, dtype=np.bool_)
    aux = np.zeros(rows, dtype=np.int64)
    events = np.zeros(3 * (rows + 1), dtype=np.int64)
    ctl = np.zeros(8, dtype=np.int64)
    p = kernels._p
    with TRACER.span("ingest.ckernel"):
        while True:
            rc = kernels.vec_ingest(
                n, p(src), p(dst), p(wgt),
                int(directed), int(delete), int(record_moved),
                *out_store._kernel_args(), *in_store._kernel_args(),
                p(scanned), p(hit), p(aux), p(events), p(ctl),
            )
            if rc == cingest.OK:
                break
            stalled = out_store if int(ctl[5]) == 0 else in_store
            stalled._grow_pool(int(ctl[6]))
    for k in range(int(ctl[4])):
        mirror, vertex, new_capacity = events[3 * k:3 * k + 3]
        store = in_store if mirror else out_store
        store._replay_grow(int(vertex), int(new_capacity))
    return int(ctl[3]), scanned, hit, aux


class _NativeNeighborSetView:
    """``_NeighborSet``-shaped view over one native hashed set."""

    __slots__ = ("_store", "_sid")

    def __init__(self, store: "NativeDAHStore", sid: int) -> None:
        self._store = store
        self._sid = sid

    def neighbors(self) -> List[Tuple[int, float]]:
        s = self._store
        off = int(s._soff[self._sid])
        cap = int(s._scap[self._sid])
        keys = s._skeys[off:off + cap]
        live = keys >= 0
        return list(
            zip(keys[live].tolist(), s._swgt[off:off + cap][live].tolist())
        )

    def __len__(self) -> int:
        return int(self._store._ssize[self._sid])


class NativeDAHStore:
    """Kernel-backed twin of ``_DAHStore`` (degree-aware hashing).

    Per-chunk Robin Hood low tables and open-address high tables live
    as spans in flat key/value arenas; low-table values are ids into a
    fixed-width inline-neighbor pool, high-table values are ids into a
    neighbor-set arena.  Table resizes bump-allocate a doubled span
    (old spans leak -- the arenas are backing storage, not the
    simulated memory, whose regions are replayed from the event log
    with the exact labels and free-then-alloc order of
    ``_TrackedTable._sync_region``).
    """

    native = True

    EMPTY = -1
    TOMB = -2
    INLINE_CAP = 17  # threshold 16 + the slot that triggers the flush
    LOW_INIT = 64
    HIGH_INIT = 16
    SET_INIT = 32

    def __init__(self, max_nodes: int, chunks: int, space: AddressSpace,
                 label: str, kernels: cingest.IngestKernels) -> None:
        from repro.graph.dah import HIGH_SLOT_BYTES, LOW_SLOT_BYTES

        self.max_nodes = max_nodes
        self.chunks = chunks
        self.space = space
        self.label = label
        self._kernels = kernels
        low_span = chunks * self.LOW_INIT
        high_span = chunks * self.HIGH_INIT
        self._loff = np.arange(chunks, dtype=np.int64) * self.LOW_INIT
        self._lcap = np.full(chunks, self.LOW_INIT, dtype=np.int64)
        self._lsize = np.zeros(chunks, dtype=np.int64)
        self._lkeys = np.full(
            max(1 << 13, 2 * low_span), self.EMPTY, dtype=np.int64
        )
        self._lval = np.zeros(len(self._lkeys), dtype=np.int64)
        self._hoff = np.arange(chunks, dtype=np.int64) * self.HIGH_INIT
        self._hcap = np.full(chunks, self.HIGH_INIT, dtype=np.int64)
        self._hsize = np.zeros(chunks, dtype=np.int64)
        self._hkeys = np.full(
            max(1 << 11, 2 * high_span), self.EMPTY, dtype=np.int64
        )
        self._hval = np.zeros(len(self._hkeys), dtype=np.int64)
        inline_cap = 1 << 10
        self._inl_nbr = np.empty(self.INLINE_CAP * inline_cap, dtype=np.int64)
        self._inl_wgt = np.empty(self.INLINE_CAP * inline_cap, dtype=np.float64)
        self._inl_len = np.zeros(inline_cap, dtype=np.int64)
        self._inl_free = np.zeros(inline_cap, dtype=np.int64)
        meta = 256
        self._soff = np.zeros(meta, dtype=np.int64)
        self._scap = np.zeros(meta, dtype=np.int64)
        self._ssize = np.zeros(meta, dtype=np.int64)
        self._skeys = np.full(1 << 12, self.EMPTY, dtype=np.int64)
        self._swgt = np.zeros(len(self._skeys), dtype=np.float64)
        self._state = np.zeros(6, dtype=np.int64)
        self._state[0] = low_span
        self._state[1] = high_span
        # Same region-allocation order as the plain store: every low
        # table, then every high table.
        self._low_regions = [
            space.alloc(self.LOW_INIT * LOW_SLOT_BYTES, f"{label}.low{c}")
            for c in range(chunks)
        ]
        self._high_regions = [
            space.alloc(self.HIGH_INIT * HIGH_SLOT_BYTES, f"{label}.high{c}")
            for c in range(chunks)
        ]
        self._set_regions: List[Region] = []

    # -- arena plumbing ------------------------------------------------

    def _descriptor(self) -> np.ndarray:
        p = self._kernels._p
        d = np.empty(26, dtype=np.int64)
        d[0] = self.chunks
        d[1] = p(self._loff); d[2] = p(self._lcap); d[3] = p(self._lsize)
        d[4] = p(self._lkeys); d[5] = p(self._lval); d[6] = len(self._lkeys)
        d[7] = p(self._hoff); d[8] = p(self._hcap); d[9] = p(self._hsize)
        d[10] = p(self._hkeys); d[11] = p(self._hval)
        d[12] = len(self._hkeys)
        d[13] = p(self._inl_nbr); d[14] = p(self._inl_wgt)
        d[15] = p(self._inl_len)
        d[16] = len(self._inl_len)
        d[17] = p(self._inl_free)
        d[18] = p(self._soff); d[19] = p(self._scap); d[20] = p(self._ssize)
        d[21] = len(self._soff)
        d[22] = p(self._skeys); d[23] = p(self._swgt)
        d[24] = len(self._skeys)
        d[25] = p(self._state)
        return d

    @staticmethod
    def _grown(array: np.ndarray, target: int, fill=None) -> np.ndarray:
        size = len(array)
        while size < target:
            size *= 2
        if fill is None:
            grown = np.empty(size, dtype=array.dtype)
        else:
            grown = np.full(size, fill, dtype=array.dtype)
        grown[:len(array)] = array
        return grown

    def _grow_low_arena(self, need: int) -> None:
        target = int(self._state[0]) + need
        self._lkeys = self._grown(self._lkeys, target)
        self._lval = self._grown(self._lval, target)

    def _grow_high_arena(self, need: int) -> None:
        target = int(self._state[1]) + need
        self._hkeys = self._grown(self._hkeys, target)
        self._hval = self._grown(self._hval, target)

    def _grow_inline_pool(self) -> None:
        target = 2 * len(self._inl_len)
        self._inl_nbr = self._grown(self._inl_nbr, self.INLINE_CAP * target)
        self._inl_wgt = self._grown(self._inl_wgt, self.INLINE_CAP * target)
        self._inl_len = self._grown(self._inl_len, target)
        self._inl_free = self._grown(self._inl_free, target)

    def _grow_set_arena(self, need: int) -> None:
        target = int(self._state[4]) + need
        self._skeys = self._grown(self._skeys, target)
        self._swgt = self._grown(self._swgt, target)

    def _grow_set_meta(self) -> None:
        target = 2 * len(self._soff)
        self._soff = self._grown(self._soff, target)
        self._scap = self._grown(self._scap, target)
        self._ssize = self._grown(self._ssize, target)

    def _replay_event(self, kind: int, a: int, b: int) -> None:
        from repro.graph.dah import (
            HIGH_SLOT_BYTES,
            LOW_SLOT_BYTES,
            NEIGHBOR_SLOT_BYTES,
        )

        if kind == 0:  # low table resized to b slots
            self.space.free(self._low_regions[a])
            self._low_regions[a] = self.space.alloc(
                b * LOW_SLOT_BYTES, f"{self.label}.low{a}"
            )
        elif kind == 1:  # high table resized
            self.space.free(self._high_regions[a])
            self._high_regions[a] = self.space.alloc(
                b * HIGH_SLOT_BYTES, f"{self.label}.high{a}"
            )
        elif kind == 2:  # set a created (ids are sequential)
            self._set_regions.append(
                self.space.alloc(
                    b * NEIGHBOR_SLOT_BYTES, f"{self.label}.nbr{a}"
                )
            )
        else:  # set a resized
            self.space.free(self._set_regions[a])
            self._set_regions[a] = self.space.alloc(
                b * NEIGHBOR_SLOT_BYTES, f"{self.label}.nbr{a}"
            )

    # -- per-edge twin: table primitives -------------------------------
    # Probe paths and slot layouts replicate hashtables.py expression
    # for expression (Python ints throughout -- the hash multiply must
    # not wrap at 64 bits the numpy way before masking).

    @staticmethod
    def _hash(key: int, mask: int) -> int:
        from repro.graph.hashtables import _HASH_MULT, _HASH_WRAP

        return ((key * _HASH_MULT & _HASH_WRAP) >> 17) & mask

    def _oa_get_path(self, keys, off: int, cap: int, key: int):
        """(slot or None, probe path) of open-address ``get``."""
        mask = cap - 1
        slot = self._hash(key, mask)
        path = []
        for _ in range(cap):
            path.append(slot)
            occ = int(keys[off + slot])
            if occ == self.EMPTY:
                return None, path
            if occ != self.TOMB and occ == key:
                return slot, path
            slot = (slot + 1) & mask
        return None, path

    def _rh_get_path(self, off: int, cap: int, key: int):
        """(slot or None, probe path) of Robin Hood ``get``."""
        keys = self._lkeys
        mask = cap - 1
        slot = self._hash(key, mask)
        distance = 0
        path = []
        while True:
            path.append(slot)
            occ = int(keys[off + slot])
            if occ == self.EMPTY:
                return None, path
            if occ == key:
                return slot, path
            if ((slot - self._hash(occ, mask)) & mask) < distance:
                return None, path
            slot = (slot + 1) & mask
            distance += 1

    def _rh_raw_insert(self, off: int, cap: int, key: int, val: int) -> None:
        keys = self._lkeys
        vals = self._lval
        mask = cap - 1
        slot = self._hash(key, mask)
        cur_key, cur_val, cur_distance = key, val, 0
        while True:
            occ = int(keys[off + slot])
            if occ == self.EMPTY:
                keys[off + slot] = cur_key
                vals[off + slot] = cur_val
                return
            occupant_distance = (slot - self._hash(occ, mask)) & mask
            if occupant_distance < cur_distance:
                keys[off + slot] = cur_key
                cur_key = occ
                vals[off + slot], cur_val = cur_val, int(vals[off + slot])
                cur_distance = occupant_distance
            slot = (slot + 1) & mask
            cur_distance += 1

    def _low_put(self, c: int, key: int, val: int):
        """Robin Hood put with growth; returns (path, resized_moves)."""
        from repro.graph.dah import LOW_SLOT_BYTES

        moved = 0
        if 10 * (int(self._lsize[c]) + 1) > 7 * int(self._lcap[c]):
            old_cap = int(self._lcap[c])
            old_off = int(self._loff[c])
            new_cap = old_cap * 2
            self._grow_low_arena(new_cap)
            new_off = int(self._state[0])
            self._lkeys[new_off:new_off + new_cap] = self.EMPTY
            for i in range(old_cap):
                occ = int(self._lkeys[old_off + i])
                if occ == self.EMPTY:
                    continue
                self._rh_raw_insert(
                    new_off, new_cap, occ, int(self._lval[old_off + i])
                )
                moved += 1
            self._state[0] = new_off + new_cap
            self._loff[c] = new_off
            self._lcap[c] = new_cap
            self.space.free(self._low_regions[c])
            self._low_regions[c] = self.space.alloc(
                new_cap * LOW_SLOT_BYTES, f"{self.label}.low{c}"
            )
        off = int(self._loff[c])
        cap = int(self._lcap[c])
        keys = self._lkeys
        vals = self._lval
        mask = cap - 1
        slot = self._hash(key, mask)
        path = []
        cur_key, cur_val, cur_distance = key, val, 0
        while True:
            path.append(slot)
            occ = int(keys[off + slot])
            if occ == self.EMPTY:
                keys[off + slot] = cur_key
                vals[off + slot] = cur_val
                self._lsize[c] += 1
                return path, moved
            occupant_distance = (slot - self._hash(occ, mask)) & mask
            if occupant_distance < cur_distance:
                keys[off + slot] = cur_key
                cur_key = occ
                vals[off + slot], cur_val = cur_val, int(vals[off + slot])
                cur_distance = occupant_distance
            slot = (slot + 1) & mask
            cur_distance += 1

    def _rh_delete(self, c: int, key: int):
        """Backward-shift delete; returns the search path."""
        off = int(self._loff[c])
        cap = int(self._lcap[c])
        slot, path = self._rh_get_path(off, cap, key)
        if slot is None:
            return path
        keys = self._lkeys
        vals = self._lval
        mask = cap - 1
        while True:
            next_slot = (slot + 1) & mask
            occ = int(keys[off + next_slot])
            if occ == self.EMPTY or self._hash(occ, mask) == next_slot:
                break
            keys[off + slot] = occ
            vals[off + slot] = vals[off + next_slot]
            slot = next_slot
        keys[off + slot] = self.EMPTY
        vals[off + slot] = 0
        self._lsize[c] -= 1
        return path

    def _oa_put(self, keys, vals, off: int, cap: int, key: int, val):
        """Open-address put on a span (no growth); returns the path."""
        mask = cap - 1
        slot = self._hash(key, mask)
        path = []
        first_tombstone = None
        for _ in range(cap + 1):
            path.append(slot)
            occ = int(keys[off + slot])
            if occ == self.EMPTY:
                target = first_tombstone if first_tombstone is not None else slot
                keys[off + target] = key
                vals[off + target] = val
                return path
            if occ == self.TOMB and first_tombstone is None:
                first_tombstone = slot
            slot = (slot + 1) & mask
        keys[off + first_tombstone] = key
        vals[off + first_tombstone] = val
        return path

    def _high_put(self, c: int, key: int, sid: int):
        """High-table put with growth; returns (path, resized_moves)."""
        from repro.graph.dah import HIGH_SLOT_BYTES

        moved = 0
        if 10 * (int(self._hsize[c]) + 1) > 7 * int(self._hcap[c]):
            old_cap = int(self._hcap[c])
            old_off = int(self._hoff[c])
            new_cap = old_cap * 2
            self._grow_high_arena(new_cap)
            new_off = int(self._state[1])
            self._hkeys[new_off:new_off + new_cap] = self.EMPTY
            mask = new_cap - 1
            for i in range(old_cap):
                occ = int(self._hkeys[old_off + i])
                if occ < 0:  # empty or tombstone
                    continue
                slot = self._hash(occ, mask)
                while int(self._hkeys[new_off + slot]) != self.EMPTY:
                    slot = (slot + 1) & mask
                self._hkeys[new_off + slot] = occ
                self._hval[new_off + slot] = self._hval[old_off + i]
                moved += 1
            self._hsize[c] = moved
            self._state[1] = new_off + new_cap
            self._hoff[c] = new_off
            self._hcap[c] = new_cap
            self.space.free(self._high_regions[c])
            self._high_regions[c] = self.space.alloc(
                new_cap * HIGH_SLOT_BYTES, f"{self.label}.high{c}"
            )
        path = self._oa_put(
            self._hkeys, self._hval, int(self._hoff[c]), int(self._hcap[c]),
            key, sid,
        )
        self._hsize[c] += 1
        return path, moved

    def _set_put(self, sid: int, key: int, weight: float):
        """Neighbor-set put with growth; returns (path, resized_moves)."""
        from repro.graph.dah import NEIGHBOR_SLOT_BYTES

        moved = 0
        if 10 * (int(self._ssize[sid]) + 1) > 7 * int(self._scap[sid]):
            old_cap = int(self._scap[sid])
            old_off = int(self._soff[sid])
            new_cap = old_cap * 2
            self._grow_set_arena(new_cap)
            new_off = int(self._state[4])
            self._skeys[new_off:new_off + new_cap] = self.EMPTY
            mask = new_cap - 1
            for i in range(old_cap):
                occ = int(self._skeys[old_off + i])
                if occ < 0:
                    continue
                slot = self._hash(occ, mask)
                while int(self._skeys[new_off + slot]) != self.EMPTY:
                    slot = (slot + 1) & mask
                self._skeys[new_off + slot] = occ
                self._swgt[new_off + slot] = self._swgt[old_off + i]
                moved += 1
            self._ssize[sid] = moved
            self._state[4] = new_off + new_cap
            self._soff[sid] = new_off
            self._scap[sid] = new_cap
            self.space.free(self._set_regions[sid])
            self._set_regions[sid] = self.space.alloc(
                new_cap * NEIGHBOR_SLOT_BYTES, f"{self.label}.nbr{sid}"
            )
        path = self._oa_put(
            self._skeys, self._swgt, int(self._soff[sid]),
            int(self._scap[sid]), key, weight,
        )
        self._ssize[sid] += 1
        return path, moved

    def _new_set(self) -> int:
        from repro.graph.dah import NEIGHBOR_SLOT_BYTES

        if int(self._state[5]) >= len(self._soff):
            self._grow_set_meta()
        if int(self._state[4]) + self.SET_INIT > len(self._skeys):
            self._grow_set_arena(self.SET_INIT)
        sid = int(self._state[5])
        self._state[5] = sid + 1
        off = int(self._state[4])
        self._state[4] = off + self.SET_INIT
        self._soff[sid] = off
        self._scap[sid] = self.SET_INIT
        self._ssize[sid] = 0
        self._skeys[off:off + self.SET_INIT] = self.EMPTY
        self._set_regions.append(
            self.space.alloc(
                self.SET_INIT * NEIGHBOR_SLOT_BYTES,
                f"{self.label}.nbr{sid}",
            )
        )
        return sid

    def _alloc_inline(self) -> int:
        top = int(self._state[3])
        if top > 0:
            self._state[3] = top - 1
            return int(self._inl_free[top - 1])
        if int(self._state[2]) >= len(self._inl_len):
            self._grow_inline_pool()
        iid = int(self._state[2])
        self._state[2] = iid + 1
        return iid

    def _free_inline(self, iid: int) -> None:
        top = int(self._state[3])
        self._inl_free[top] = iid
        self._state[3] = top + 1

    @staticmethod
    def _trace_path(region: Region, slot_bytes: int, path, recorder,
                    write_last: bool = False) -> None:
        if not recorder.enabled:
            return
        last = len(path) - 1
        for i, slot in enumerate(path):
            recorder.access(
                region.element(slot, slot_bytes),
                write=write_last and i == last,
            )

    # -- per-edge twin: store operations -------------------------------

    def _set_insert(self, sid: int, dst: int, weight: float, recorder,
                    stats) -> bool:
        from repro.graph.dah import NEIGHBOR_SLOT_BYTES

        gslot, path = self._oa_get_path(
            self._skeys, int(self._soff[sid]), int(self._scap[sid]), dst
        )
        stats.hash_ops += 1
        stats.table_probes += len(path)
        self._trace_path(
            self._set_regions[sid], NEIGHBOR_SLOT_BYTES, path, recorder
        )
        if gslot is not None:
            return False
        path, moved = self._set_put(sid, dst, weight)
        stats.hash_ops += 1
        stats.table_probes += len(path)
        stats.rehash_moves += moved
        self._trace_path(
            self._set_regions[sid], NEIGHBOR_SLOT_BYTES, path, recorder,
            write_last=True,
        )
        return True

    def insert(self, src: int, dst: int, weight: float, recorder):
        from repro.graph.dah import (
            HIGH_SLOT_BYTES,
            LOW_DEGREE_THRESHOLD,
            LOW_SLOT_BYTES,
            _InsertStats,
        )

        stats = _InsertStats()
        c = src % self.chunks
        stats.degree_queries += 1
        hslot, path = self._oa_get_path(
            self._hkeys, int(self._hoff[c]), int(self._hcap[c]), src
        )
        stats.hash_ops += 1
        stats.table_probes += len(path)
        self._trace_path(self._high_regions[c], HIGH_SLOT_BYTES, path, recorder)
        if hslot is not None:
            sid = int(self._hval[int(self._hoff[c]) + hslot])
            stats.inserted = self._set_insert(sid, dst, weight, recorder, stats)
            return stats

        stats.degree_queries += 1
        lslot, path = self._rh_get_path(
            int(self._loff[c]), int(self._lcap[c]), src
        )
        stats.hash_ops += 1
        stats.table_probes += len(path)
        self._trace_path(self._low_regions[c], LOW_SLOT_BYTES, path, recorder)
        if lslot is None:
            iid = self._alloc_inline()
            self._inl_len[iid] = 1
            self._inl_nbr[iid * self.INLINE_CAP] = dst
            self._inl_wgt[iid * self.INLINE_CAP] = weight
            path, moved = self._low_put(c, src, iid)
            stats.hash_ops += 1
            stats.table_probes += len(path)
            stats.rehash_moves += moved
            self._trace_path(
                self._low_regions[c], LOW_SLOT_BYTES, path, recorder,
                write_last=True,
            )
            stats.inserted = True
            return stats

        iid = int(self._lval[int(self._loff[c]) + lslot])
        length = int(self._inl_len[iid])
        base = iid * self.INLINE_CAP
        for i in range(length):
            stats.inline_scanned = i + 1
            if int(self._inl_nbr[base + i]) == dst:
                return stats  # duplicate
        stats.inline_scanned = length
        self._inl_nbr[base + length] = dst
        self._inl_wgt[base + length] = weight
        self._inl_len[iid] = length + 1
        stats.inserted = True
        if length + 1 <= LOW_DEGREE_THRESHOLD:
            return stats

        # Flush: src outgrew the inline array; migrate to the high table.
        path = self._rh_delete(c, src)
        stats.table_probes += len(path)
        sid = self._new_set()
        for j in range(length + 1):
            self._set_insert(
                sid,
                int(self._inl_nbr[base + j]),
                float(self._inl_wgt[base + j]),
                recorder,
                stats,
            )
            stats.flushed += 1
        path, moved = self._high_put(c, src, sid)
        stats.hash_ops += 1
        stats.table_probes += len(path)
        stats.rehash_moves += moved
        self._trace_path(
            self._high_regions[c], HIGH_SLOT_BYTES, path, recorder,
            write_last=True,
        )
        self._free_inline(iid)
        return stats

    def remove(self, src: int, dst: int, recorder):
        from repro.graph.dah import (
            HIGH_SLOT_BYTES,
            LOW_SLOT_BYTES,
            NEIGHBOR_SLOT_BYTES,
            _InsertStats,
        )

        stats = _InsertStats()
        c = src % self.chunks
        stats.degree_queries += 1
        hslot, path = self._oa_get_path(
            self._hkeys, int(self._hoff[c]), int(self._hcap[c]), src
        )
        stats.hash_ops += 1
        stats.table_probes += len(path)
        self._trace_path(self._high_regions[c], HIGH_SLOT_BYTES, path, recorder)
        if hslot is not None:
            sid = int(self._hval[int(self._hoff[c]) + hslot])
            off = int(self._soff[sid])
            gslot, path = self._oa_get_path(
                self._skeys, off, int(self._scap[sid]), dst
            )
            stats.hash_ops += 1
            stats.table_probes += len(path)
            found = gslot is not None
            self._trace_path(
                self._set_regions[sid], NEIGHBOR_SLOT_BYTES, path, recorder,
                write_last=found,
            )
            if found:
                self._skeys[off + gslot] = self.TOMB
                self._swgt[off + gslot] = 0.0
                self._ssize[sid] -= 1
                stats.inserted = True
            return stats

        stats.degree_queries += 1
        lslot, path = self._rh_get_path(
            int(self._loff[c]), int(self._lcap[c]), src
        )
        stats.hash_ops += 1
        stats.table_probes += len(path)
        self._trace_path(self._low_regions[c], LOW_SLOT_BYTES, path, recorder)
        if lslot is None:
            return stats
        iid = int(self._lval[int(self._loff[c]) + lslot])
        length = int(self._inl_len[iid])
        base = iid * self.INLINE_CAP
        for index in range(length):
            stats.inline_scanned = index + 1
            if int(self._inl_nbr[base + index]) == dst:
                self._inl_nbr[base + index] = self._inl_nbr[base + length - 1]
                self._inl_wgt[base + index] = self._inl_wgt[base + length - 1]
                self._inl_len[iid] = length - 1
                stats.inserted = True
                if length - 1 == 0:
                    path = self._rh_delete(c, src)
                    stats.table_probes += len(path)
                    self._free_inline(iid)
                return stats
        return stats

    # -- queries -------------------------------------------------------

    def chunk_of(self, u: int) -> int:
        return u % self.chunks

    def _oa_find(self, keys, off: int, cap: int, key: int) -> Optional[int]:
        mask = cap - 1
        slot = self._hash(key, mask)
        for _ in range(cap):
            occ = int(keys[off + slot])
            if occ == self.EMPTY:
                return None
            if occ != self.TOMB and occ == key:
                return slot
            slot = (slot + 1) & mask
        return None

    def _lookup(self, u: int):
        """(container, is_high) for ``u``; container may be None."""
        c = u % self.chunks
        hslot = self._oa_find(
            self._hkeys, int(self._hoff[c]), int(self._hcap[c]), u
        )
        if hslot is not None:
            sid = int(self._hval[int(self._hoff[c]) + hslot])
            return _NativeNeighborSetView(self, sid), True
        lslot, _ = self._rh_get_path(
            int(self._loff[c]), int(self._lcap[c]), u
        )
        if lslot is not None:
            iid = int(self._lval[int(self._loff[c]) + lslot])
            length = int(self._inl_len[iid])
            base = iid * self.INLINE_CAP
            return (
                list(
                    zip(
                        self._inl_nbr[base:base + length].tolist(),
                        self._inl_wgt[base:base + length].tolist(),
                    )
                ),
                False,
            )
        return None, False

    def neighbors(self, u: int) -> List[Tuple[int, float]]:
        container, is_high = self._lookup(u)
        if container is None:
            return []
        return container.neighbors() if is_high else list(container)

    def degree(self, u: int) -> int:
        container, _ = self._lookup(u)
        return len(container) if container is not None else 0

    def is_high_degree(self, u: int) -> bool:
        _, is_high = self._lookup(u)
        return is_high

    def trace_traversal(self, u: int, recorder) -> None:
        from repro.graph.dah import (
            HIGH_SLOT_BYTES,
            LOW_SLOT_BYTES,
            NEIGHBOR_SLOT_BYTES,
        )

        c = u % self.chunks
        hslot, path = self._oa_get_path(
            self._hkeys, int(self._hoff[c]), int(self._hcap[c]), u
        )
        self._trace_path(self._high_regions[c], HIGH_SLOT_BYTES, path, recorder)
        if hslot is not None:
            sid = int(self._hval[int(self._hoff[c]) + hslot])
            recorder.access_range(
                self._set_regions[sid].base,
                int(self._scap[sid]),
                NEIGHBOR_SLOT_BYTES,
            )
            return
        _, path = self._rh_get_path(int(self._loff[c]), int(self._lcap[c]), u)
        self._trace_path(self._low_regions[c], LOW_SLOT_BYTES, path, recorder)


def native_dah_ingest(out_store, in_store, batch, directed, delete):
    """Fused batch ingest through the compiled DAH kernel.

    Returns ``(positive, table_probes, hash_ops, inline_scanned,
    degree_queries, flushed, rehash_moves, hit, chunk)`` matching the
    fused Python loop row for row; table-region and neighbor-set
    allocations replay from the event log in call order.
    """
    kernels = out_store._kernels
    n = len(batch)
    src = np.ascontiguousarray(batch.src, dtype=np.int64)
    dst = np.ascontiguousarray(batch.dst, dtype=np.int64)
    if delete:
        wgt = np.empty(1, dtype=np.float64)
    else:
        wgt = np.ascontiguousarray(batch.weight, dtype=np.float64)
    if directed:
        rows = 2 * n
    else:
        rows = n + int(np.count_nonzero(src != dst))
    table_probes = np.zeros(rows, dtype=np.int64)
    hash_ops = np.zeros(rows, dtype=np.int64)
    inline_scanned = np.zeros(rows, dtype=np.int64)
    degree_queries = np.zeros(rows, dtype=np.int64)
    flushed = np.zeros(rows, dtype=np.int64)
    rehash_moves = np.zeros(rows, dtype=np.int64)
    hit = np.zeros(rows, dtype=np.bool_)
    chunk = np.zeros(rows, dtype=np.int64)
    events = np.zeros(3 * (2 * rows + 2), dtype=np.int64)
    ctl = np.zeros(8, dtype=np.int64)
    p = kernels._p
    with TRACER.span("ingest.ckernel"):
        while True:
            out_desc = out_store._descriptor()
            in_desc = in_store._descriptor()
            rc = kernels.dah_ingest(
                n, p(src), p(dst), p(wgt), int(directed), int(delete),
                p(out_desc), p(in_desc),
                p(table_probes), p(hash_ops), p(inline_scanned),
                p(degree_queries), p(flushed), p(rehash_moves),
                p(hit), p(chunk),
                p(events), p(ctl),
            )
            if rc == cingest.OK:
                break
            stalled = out_store if int(ctl[5]) == 0 else in_store
            code = int(ctl[6])
            need = int(ctl[7])
            if code == 0:
                stalled._grow_low_arena(need)
            elif code == 1:
                stalled._grow_high_arena(need)
            elif code == 2:
                stalled._grow_inline_pool()
            elif code == 3:
                stalled._grow_set_arena(need)
            else:
                stalled._grow_set_meta()
    for k in range(int(ctl[4])):
        code, a, b = (
            int(events[3 * k]),
            int(events[3 * k + 1]),
            int(events[3 * k + 2]),
        )
        store = in_store if code >= 4 else out_store
        store._replay_event(code & 3, a, b)
    return (
        int(ctl[3]), table_probes, hash_ops, inline_scanned,
        degree_queries, flushed, rehash_moves, hit, chunk,
    )


def make_vector_store(max_nodes, space, label, structure):
    """A kernel-backed vector store, or the plain one when gated off."""
    kernels = cingest.get(structure)
    if kernels is not None and not use_legacy_tasks():
        return NativeVectorStore(max_nodes, space, label, kernels)
    return VectorStore(max_nodes, space, label)


def make_blocked_store(max_nodes, space, label, structure="BA"):
    """A kernel-backed blocked store, or the plain one when gated off."""
    from repro.graph.blocked import _BlockedStore

    kernels = cingest.get(structure)
    if kernels is not None and not use_legacy_tasks():
        return NativeBlockedStore(max_nodes, space, label, kernels)
    return _BlockedStore(max_nodes, space, label)


def make_stinger_store(max_nodes, space, label, lock_base,
                       structure="Stinger"):
    """A kernel-backed Stinger store, or the plain one when gated off."""
    from repro.graph.stinger import _StingerStore

    kernels = cingest.get(structure)
    if kernels is not None and not use_legacy_tasks():
        return NativeStingerStore(max_nodes, space, label, lock_base, kernels)
    return _StingerStore(max_nodes, space, label, lock_base)


def make_dah_store(max_nodes, chunks, space, label, structure="DAH"):
    """A kernel-backed DAH store, or the plain one when gated off."""
    from repro.graph.dah import _DAHStore

    kernels = cingest.get(structure)
    if kernels is not None and not use_legacy_tasks():
        return NativeDAHStore(max_nodes, chunks, space, label, kernels)
    return _DAHStore(max_nodes, chunks, space, label)

"""Stinger: linked edge blocks with fine-grained locks (Section III-A3).

Each vertex owns a linked list of fixed-capacity *edge blocks* (16
edges per block, as in the paper's implementation).  Relative to AS,
Stinger trades two properties:

- **Intra-vertex parallelism.**  Locks are per edge block, not per
  vertex, so multiple threads can update one vertex's edges at once --
  the reason Stinger degrades gracefully on heavy-tailed batches.
- **Two scans per insert.**  A search scan establishes the edge is
  absent, then a second scan finds a block with free space; both
  involve pointer chasing between blocks.  This is why Stinger pays
  1.57x-1.76x over AS on short-tailed graphs (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.base import ExecutionContext, GraphDataStructure
from repro.graph.nativestore import make_stinger_store, native_stinger_ingest
from repro.sim.memory import AddressSpace, Region
from repro.sim.scheduler import (
    NO_LOCK,
    DynamicScheduler,
    ScheduleResult,
    Task,
    TaskArray,
)

#: Edges per edge block (paper Section III-A3).
BLOCK_CAPACITY = 16

#: Bytes per block: header (next pointer, count) + 16 packed entries.
BLOCK_HEADER_BYTES = 16
ENTRY_BYTES = 8
BLOCK_BYTES = BLOCK_HEADER_BYTES + BLOCK_CAPACITY * ENTRY_BYTES

#: Bytes per entry of the vertex array (id, degree, head pointer).
VERTEX_ENTRY_BYTES = 16


class _EdgeBlock:
    """One fixed-capacity block in a vertex's linked list."""

    __slots__ = ("block_id", "region", "entries")

    def __init__(
        self,
        block_id: int,
        region: Region,
        entries: Optional[List[Tuple[int, float]]] = None,
    ) -> None:
        self.block_id = block_id
        self.region = region
        self.entries = [] if entries is None else entries

    @property
    def full(self) -> bool:
        return len(self.entries) >= BLOCK_CAPACITY

    def entry_address(self, slot: int) -> int:
        return self.region.base + BLOCK_HEADER_BYTES + slot * ENTRY_BYTES


@dataclass
class _InsertOutcome:
    search_chases: int
    search_probes: int
    space_chases: int
    inserted: bool
    new_block: bool
    lock: Optional[int]


class _StingerStore:
    """One direction (out or in) of the Stinger structure."""

    def __init__(self, max_nodes: int, space: AddressSpace, label: str, lock_base: int) -> None:
        self.space = space
        self.label = label
        self.lock_base = lock_base
        self._blocks: List[List[_EdgeBlock]] = [[] for _ in range(max_nodes)]
        self._position: List[Dict[int, Tuple[int, int]]] = [{} for _ in range(max_nodes)]
        # Per-vertex degree, maintained on insert/remove so negative
        # searches charge their probe count without summing the blocks.
        self._degree: List[int] = [0] * max_nodes
        # While no edge has ever been removed, blocks fill strictly
        # front-to-back: every block before the tail is full.  The fused
        # emitter exploits this to compute scan lengths in O(1); any
        # remove may open a hole and permanently disables the shortcut.
        self._holes = False
        self._vertex_array = space.alloc(
            max_nodes * VERTEX_ENTRY_BYTES, f"{label}.vertices"
        )
        self._block_label = f"{label}.block"
        self._next_block_id = 0

    def _new_block(self) -> _EdgeBlock:
        block = _EdgeBlock(
            block_id=self._next_block_id,
            region=self.space.alloc(BLOCK_BYTES, self._block_label),
        )
        self._next_block_id += 1
        return block

    def insert(self, src: int, dst: int, weight: float, recorder) -> _InsertOutcome:
        """Two-scan search-then-insert of ``src -> dst``."""
        blocks = self._blocks[src]
        position = self._position[src]
        tracing = recorder.enabled
        if tracing:
            recorder.access(self._vertex_array.element(src, VERTEX_ENTRY_BYTES))
        existing = position.get(dst)
        if existing is not None:
            # Search scan stops at the block holding the edge.
            block_idx, slot = existing
            probes = slot + 1
            for i in range(block_idx):
                probes += len(blocks[i].entries)
            if tracing:
                self._trace_scan(blocks, block_idx + 1, recorder)
            return _InsertOutcome(
                search_chases=block_idx + 1,
                search_probes=probes,
                space_chases=0,
                inserted=False,
                new_block=False,
                lock=None,
            )
        # Negative search scans the entire list ...
        search_chases = len(blocks)
        search_probes = self._degree[src]
        if tracing:
            self._trace_scan(blocks, len(blocks), recorder)
        # ... then a second scan walks the list again looking for the
        # first block with free space (deletions can open holes in any
        # block; an insert-only stream always lands in the tail block).
        target_index = None
        for index, block in enumerate(blocks):
            if not block.full:
                target_index = index
                break
        new_block = False
        if target_index is None:
            space_chases = len(blocks)
            blocks.append(self._new_block())
            new_block = True
            target_index = len(blocks) - 1
        else:
            space_chases = target_index + 1
        target = blocks[target_index]
        slot = len(target.entries)
        target.entries.append((dst, weight))
        position[dst] = (target_index, slot)
        self._degree[src] += 1
        if tracing:
            recorder.access(target.entry_address(slot), write=True)
        return _InsertOutcome(
            search_chases=search_chases,
            search_probes=search_probes,
            space_chases=space_chases,
            inserted=True,
            new_block=new_block,
            lock=self.lock_base + target.block_id,
        )

    def remove(self, src: int, dst: int, recorder) -> _InsertOutcome:
        """Search for ``src -> dst`` and remove it from its block.

        The block's last entry backfills the vacated slot; a tail block
        left empty is unlinked and freed.  Reuses the insert outcome
        record (``new_block`` then means "a block was freed").
        """
        blocks = self._blocks[src]
        position = self._position[src]
        tracing = recorder.enabled
        if tracing:
            recorder.access(self._vertex_array.element(src, VERTEX_ENTRY_BYTES))
        existing = position.get(dst)
        if existing is None:
            if tracing:
                self._trace_scan(blocks, len(blocks), recorder)
            return _InsertOutcome(
                search_chases=len(blocks),
                search_probes=self._degree[src],
                space_chases=0,
                inserted=False,
                new_block=False,
                lock=None,
            )
        block_idx, slot = existing
        probes = slot + 1
        for i in range(block_idx):
            probes += len(blocks[i].entries)
        if tracing:
            self._trace_scan(blocks, block_idx + 1, recorder)
        block = blocks[block_idx]
        last = len(block.entries) - 1
        if slot != last:
            block.entries[slot] = block.entries[last]
            position[block.entries[slot][0]] = (block_idx, slot)
            if tracing:
                recorder.access(block.entry_address(slot), write=True)
        block.entries.pop()
        del position[dst]
        self._degree[src] -= 1
        self._holes = True
        freed = False
        if not block.entries and block_idx == len(blocks) - 1:
            self.space.free(blocks.pop().region)
            freed = True
        return _InsertOutcome(
            search_chases=block_idx + 1,
            search_probes=probes,
            space_chases=0,
            inserted=True,
            new_block=freed,
            lock=self.lock_base + block.block_id,
        )

    def _trace_scan(self, blocks: List[_EdgeBlock], block_count: int, recorder) -> None:
        for block in blocks[:block_count]:
            recorder.access(block.region.base)  # header / next pointer
            recorder.access_range(
                block.region.base + BLOCK_HEADER_BYTES, len(block.entries), ENTRY_BYTES
            )

    def neighbors(self, u: int) -> List[Tuple[int, float]]:
        result: List[Tuple[int, float]] = []
        for block in self._blocks[u]:
            result.extend(block.entries)
        return result

    def degree(self, u: int) -> int:
        return self._degree[u]

    def block_count(self, u: int) -> int:
        return len(self._blocks[u])

    def trace_traversal(self, u: int, recorder) -> None:
        recorder.access(self._vertex_array.element(u, VERTEX_ENTRY_BYTES))
        self._trace_scan(self._blocks[u], len(self._blocks[u]), recorder)


class _StingerEmitter:
    """Columnar task emitter for Stinger: block scans and fine locks."""

    __slots__ = (
        "_out",
        "_in",
        "_cost",
        "_delete",
        "_directed",
        "search_chases",
        "search_probes",
        "space_chases",
        "hit",
        "new_block",
        "lock",
    )

    def __init__(self, structure: "Stinger", delete: bool) -> None:
        self._out = structure._out
        self._in = structure._in
        self._cost = structure.cost
        self._delete = delete
        self._directed = structure.directed
        self.search_chases: List[int] = []
        self.search_probes: List[int] = []
        self.space_chases: List[int] = []
        self.hit: List[bool] = []
        self.new_block: List[bool] = []
        self.lock: List[int] = []

    @property
    def rows(self) -> int:
        return len(self.search_chases)

    def ingest_batch(self, batch) -> int:
        """Fused untraced ingest: inlined block scans, no outcome boxing."""
        directed = self._directed
        if getattr(self._out, "native", False):
            (
                positive,
                self.search_chases,
                self.search_probes,
                self.space_chases,
                self.hit,
                self.new_block,
                self.lock,
            ) = native_stinger_ingest(
                self._out,
                self._in if directed else self._out,
                batch,
                directed,
                self._delete,
            )
            return positive
        out = self._out
        mirror_store = self._in if directed else out
        src = batch.src.tolist()
        dst = batch.dst.tolist()
        positive = 0
        if self._delete:
            remove = self._fused_remove
            for u, v in zip(src, dst):
                if remove(out, u, v):
                    positive += 1
                if u != v or directed:
                    remove(mirror_store, v, u)
            return positive

        weight = batch.weight.tolist()
        app_chases = self.search_chases.append
        app_probes = self.search_probes.append
        app_space = self.space_chases.append
        app_hit = self.hit.append
        app_new = self.new_block.append
        app_lock = self.lock.append
        # Per-store state hoisted once; the insert body is duplicated
        # for the out and mirror operations so the hot loop runs on
        # locals only.  Inserts never open holes, so _holes is loop
        # invariant here (only removes set it).
        o_blocks_all = out._blocks
        o_pos_all = out._position
        o_degree = out._degree
        o_lock_base = out.lock_base
        o_alloc = out.space.alloc
        o_blabel = out._block_label
        o_holes = out._holes
        m_blocks_all = mirror_store._blocks
        m_pos_all = mirror_store._position
        m_degree = mirror_store._degree
        m_lock_base = mirror_store.lock_base
        m_alloc = mirror_store.space.alloc
        m_blabel = mirror_store._block_label
        m_holes = mirror_store._holes
        for u, v, w in zip(src, dst, weight):
            blocks = o_blocks_all[u]
            position = o_pos_all[u]
            existing = position.get(v)
            if existing is not None:
                block_idx, slot = existing
                if o_holes:
                    probes = slot + 1
                    for j in range(block_idx):
                        probes += len(blocks[j].entries)
                else:
                    probes = block_idx * BLOCK_CAPACITY + slot + 1
                app_chases(block_idx + 1)
                app_probes(probes)
                app_space(0)
                app_hit(False)
                app_new(False)
                app_lock(NO_LOCK)
            else:
                nblocks = len(blocks)
                app_chases(nblocks)
                deg = o_degree[u]
                app_probes(deg)
                o_degree[u] = deg + 1
                target = None
                if o_holes:
                    target_index = None
                    for index, block in enumerate(blocks):
                        if len(block.entries) < BLOCK_CAPACITY:
                            target_index = index
                            target = block
                            break
                elif nblocks:
                    # No holes: every block before the tail is full.
                    target = blocks[-1]
                    if len(target.entries) < BLOCK_CAPACITY:
                        target_index = nblocks - 1
                    else:
                        target = None
                if target is None:
                    app_space(nblocks)
                    target = _EdgeBlock(
                        out._next_block_id, o_alloc(BLOCK_BYTES, o_blabel)
                    )
                    out._next_block_id += 1
                    blocks.append(target)
                    target_index = nblocks
                    app_new(True)
                else:
                    app_space(target_index + 1)
                    app_new(False)
                entries = target.entries
                position[v] = (target_index, len(entries))
                entries.append((v, w))
                app_hit(True)
                app_lock(o_lock_base + target.block_id)
                positive += 1
            if u != v or directed:
                blocks = m_blocks_all[v]
                position = m_pos_all[v]
                existing = position.get(u)
                if existing is not None:
                    block_idx, slot = existing
                    if m_holes:
                        probes = slot + 1
                        for j in range(block_idx):
                            probes += len(blocks[j].entries)
                    else:
                        probes = block_idx * BLOCK_CAPACITY + slot + 1
                    app_chases(block_idx + 1)
                    app_probes(probes)
                    app_space(0)
                    app_hit(False)
                    app_new(False)
                    app_lock(NO_LOCK)
                else:
                    nblocks = len(blocks)
                    app_chases(nblocks)
                    deg = m_degree[v]
                    app_probes(deg)
                    m_degree[v] = deg + 1
                    target = None
                    if m_holes:
                        target_index = None
                        for index, block in enumerate(blocks):
                            if len(block.entries) < BLOCK_CAPACITY:
                                target_index = index
                                target = block
                                break
                    elif nblocks:
                        target = blocks[-1]
                        if len(target.entries) < BLOCK_CAPACITY:
                            target_index = nblocks - 1
                        else:
                            target = None
                    if target is None:
                        app_space(nblocks)
                        target = _EdgeBlock(
                            mirror_store._next_block_id, m_alloc(BLOCK_BYTES, m_blabel)
                        )
                        mirror_store._next_block_id += 1
                        blocks.append(target)
                        target_index = nblocks
                        app_new(True)
                    else:
                        app_space(target_index + 1)
                        app_new(False)
                    entries = target.entries
                    position[u] = (target_index, len(entries))
                    entries.append((u, w))
                    app_hit(True)
                    app_lock(m_lock_base + target.block_id)
        return positive

    def _fused_remove(self, store, src, dst) -> bool:
        """``_StingerStore.remove`` inlined, appending columns directly."""
        blocks = store._blocks[src]
        position = store._position[src]
        existing = position.get(dst)
        if existing is None:
            self.search_chases.append(len(blocks))
            self.search_probes.append(store._degree[src])
            self.space_chases.append(0)
            self.hit.append(False)
            self.new_block.append(False)
            self.lock.append(NO_LOCK)
            return False
        block_idx, slot = existing
        probes = slot + 1
        for i in range(block_idx):
            probes += len(blocks[i].entries)
        block = blocks[block_idx]
        entries = block.entries
        last = len(entries) - 1
        if slot != last:
            entries[slot] = entries[last]
            position[entries[slot][0]] = (block_idx, slot)
        entries.pop()
        del position[dst]
        store._degree[src] -= 1
        store._holes = True
        freed = False
        if not entries and block_idx == len(blocks) - 1:
            store.space.free(blocks.pop().region)
            freed = True
        self.search_chases.append(block_idx + 1)
        self.search_probes.append(probes)
        self.space_chases.append(0)
        self.hit.append(True)
        self.new_block.append(freed)
        self.lock.append(store.lock_base + block.block_id)
        return True

    def insert_out(self, src, dst, weight, recorder) -> bool:
        return self._record(self._out.insert(src, dst, weight, recorder))

    def insert_in(self, src, dst, weight, recorder) -> bool:
        return self._record(self._in.insert(src, dst, weight, recorder))

    def delete_out(self, src, dst, recorder) -> bool:
        return self._record(self._out.remove(src, dst, recorder))

    def delete_in(self, src, dst, recorder) -> bool:
        return self._record(self._in.remove(src, dst, recorder))

    def _record(self, outcome: _InsertOutcome) -> bool:
        self.search_chases.append(outcome.search_chases)
        self.search_probes.append(outcome.search_probes)
        self.space_chases.append(outcome.space_chases)
        self.hit.append(outcome.inserted)
        self.new_block.append(outcome.new_block)
        self.lock.append(NO_LOCK if outcome.lock is None else outcome.lock)
        return outcome.inserted

    def finish(self, batch_size: int) -> TaskArray:
        cost = self._cost
        n = self.rows
        search_chases = np.asarray(self.search_chases, dtype=np.int64)
        search_probes = np.asarray(self.search_probes, dtype=np.float64)
        hit = np.asarray(self.hit, dtype=bool)
        locked = np.zeros(n)
        if self._delete:
            unlocked = (
                cost.pointer_chase * search_chases.astype(np.float64)
                + cost.probe_block_element * search_probes
            )
            locked[hit] = 2 * cost.insert_slot  # clear + backfill
        else:
            space_chases = np.asarray(self.space_chases, dtype=np.int64)
            unlocked = (
                cost.pointer_chase * (search_chases + space_chases).astype(np.float64)
                + cost.probe_block_element * search_probes
            )
            # The space scan lock-couples block by block (see
            # _block_insert); same grouping as the scalar expression.
            per_chase = cost.lock_acquire + cost.lock_release + cost.probe_block_element
            locked[hit] = space_chases[hit] * per_chase + cost.insert_slot
            new_block = np.asarray(self.new_block, dtype=bool) & hit
            locked[new_block] += cost.insert_slot  # link the fresh block
        return TaskArray.build(
            n,
            unlocked_work=unlocked,
            locked_work=locked,
            lock=np.asarray(self.lock, dtype=np.int64),
            fine_lock=True,
        )


class Stinger(GraphDataStructure):
    """The paper's Stinger data structure."""

    name = "Stinger"

    #: Lock-id namespaces for the two stores' edge blocks.
    _OUT_LOCK_BASE = 2 << 40
    _IN_LOCK_BASE = 3 << 40

    def __init__(self, max_nodes, directed=True, cost_model=None, address_space=None):
        from repro.sim.cost_model import DEFAULT_COST_MODEL

        super().__init__(
            max_nodes,
            directed=directed,
            cost_model=cost_model or DEFAULT_COST_MODEL,
            address_space=address_space,
        )
        self._out = make_stinger_store(
            max_nodes, self.space, "Stinger.out", self._OUT_LOCK_BASE
        )
        self._in = (
            make_stinger_store(
                max_nodes, self.space, "Stinger.in", self._IN_LOCK_BASE
            )
            if directed
            else None
        )

    # -- mutation ------------------------------------------------------

    def _make_emitter(self, delete: bool) -> _StingerEmitter:
        return _StingerEmitter(self, delete)

    def _insert_out(self, src, dst, weight, recorder):
        return self._block_insert(self._out, src, dst, weight, recorder)

    def _insert_in(self, src, dst, weight, recorder):
        return self._block_insert(self._in, src, dst, weight, recorder)

    def _block_insert(self, store, src, dst, weight, recorder) -> Tuple[Task, bool]:
        outcome = store.insert(src, dst, weight, recorder)
        cost = self.cost
        # The search scan reads blocks without holding any lock.  The
        # space scan, however, must lock-couple: each block's lock is
        # acquired to check-and-claim a free slot before moving on, so
        # two threads cannot claim the same slot.  For a high-degree
        # vertex this couples through the whole list and is the
        # residual serialization of Stinger's fine-grained locking.
        unlocked = (
            cost.pointer_chase * (outcome.search_chases + outcome.space_chases)
            + cost.probe_block_element * outcome.search_probes
        )
        locked = 0.0
        if outcome.inserted:
            locked = (
                outcome.space_chases
                * (cost.lock_acquire + cost.lock_release + cost.probe_block_element)
                + cost.insert_slot
            )
            if outcome.new_block:
                locked += cost.insert_slot  # link the freshly allocated block
        return (
            Task(
                unlocked_work=unlocked,
                locked_work=locked,
                lock=outcome.lock,
                fine_lock=True,
            ),
            outcome.inserted,
        )

    def _delete_out(self, src, dst, recorder):
        return self._block_delete(self._out, src, dst, recorder)

    def _delete_in(self, src, dst, recorder):
        return self._block_delete(self._in, src, dst, recorder)

    def _block_delete(self, store, src, dst, recorder) -> Tuple[Task, bool]:
        outcome = store.remove(src, dst, recorder)
        cost = self.cost
        unlocked = (
            cost.pointer_chase * outcome.search_chases
            + cost.probe_block_element * outcome.search_probes
        )
        locked = 0.0
        if outcome.inserted:  # an edge was removed
            locked = 2 * cost.insert_slot  # clear + backfill
        return (
            Task(
                unlocked_work=unlocked,
                locked_work=locked,
                lock=outcome.lock,
                fine_lock=True,
            ),
            outcome.inserted,
        )

    def _schedule(self, tasks: List[Task], ctx: ExecutionContext) -> ScheduleResult:
        scheduler = DynamicScheduler(
            threads=ctx.threads,
            physical_cores=ctx.machine.physical_cores,
            cost_model=ctx.cost_model,
        )
        return scheduler.run(tasks)

    # -- queries -------------------------------------------------------

    def out_neigh(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._out.neighbors(u)

    def _in_neigh_directed(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._in.neighbors(u)

    def out_degree(self, u: int) -> int:
        return self._out.degree(u)

    def in_degree(self, u: int) -> int:
        if not self.directed:
            return self._out.degree(u)
        return self._in.degree(u)

    # -- compute-phase costs -------------------------------------------

    def out_traversal_cost(self, u: int) -> float:
        return self._traversal_cost(self._out, u)

    def _in_traversal_cost_directed(self, u: int) -> float:
        return self._traversal_cost(self._in, u)

    def _traversal_cost(self, store, u: int) -> float:
        cost = self.cost
        return (
            cost.probe_element  # vertex array entry
            + cost.pointer_chase * store.block_count(u)
            + cost.probe_block_element * store.degree(u)
        )

    @staticmethod
    def vector_traversal_cost(degrees, cost):
        """Vectorized traversal cost over a degree array.

        Blocks fill front-to-back and are never compacted, so the block
        count of a vertex with degree ``d`` is exactly ``ceil(d / 16)``.
        """
        import numpy as np

        blocks = np.ceil(degrees / BLOCK_CAPACITY)
        return (
            cost.probe_element
            + cost.pointer_chase * blocks
            + cost.probe_block_element * degrees
        )

    def _trace_traversal(self, u: int, recorder, out: bool) -> None:
        store = self._out if out else self._in
        store.trace_traversal(u, recorder)

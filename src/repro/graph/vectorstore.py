"""Shared internals of the two adjacency-list structures (AS and AC).

Both structures store, per vertex, a contiguous growable vector of
``(neighbor, weight)`` entries; they differ only in multithreading
style (per-vertex locks vs lockless chunks).  :class:`VectorStore`
implements the storage, duplicate detection, growth accounting, and
memory-trace emission once, and reports the primitive counts of each
operation so each structure can price them with the shared cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.memory import AddressSpace, Region

#: Bytes of one (neighbor, weight) entry: 4B id + 4B weight, packed.
ENTRY_BYTES = 8

#: Bytes of one per-vertex header (pointer, size, capacity, lock word).
HEADER_BYTES = 16

#: Initial capacity of a vertex's neighbor vector.
INITIAL_CAPACITY = 4


@dataclass
class InsertOutcome:
    """Primitive counts of one search-then-insert operation."""

    scanned: int  # entries compared during the search scan
    inserted: bool  # False when the edge already existed
    grew_from: int  # elements moved by a capacity doubling (0 if none)


@dataclass
class RemoveOutcome:
    """Primitive counts of one search-then-remove operation."""

    scanned: int  # entries compared during the search scan
    removed: bool  # False when the edge was absent
    moved: int  # entries moved to close the hole (swap-remove: 0 or 1)


class VectorStore:
    """Array-of-vectors storage for one direction of adjacency.

    Functionally a ``vertex -> [(neighbor, weight), ...]`` map with
    unique neighbors.  Membership checks use a per-vertex index dict
    (so the Python implementation is O(1)), but the *charged* cost is
    the linear scan a contiguous C++ vector would perform, and the
    emitted trace walks the vector's real simulated addresses.
    """

    def __init__(self, max_nodes: int, space: AddressSpace, label: str) -> None:
        self.max_nodes = max_nodes
        self.space = space
        self.label = label
        self._neighbors: List[List[Tuple[int, float]]] = [[] for _ in range(max_nodes)]
        self._position: List[Dict[int, int]] = [{} for _ in range(max_nodes)]
        self._capacity: List[int] = [0] * max_nodes
        self._region: List[Optional[Region]] = [None] * max_nodes
        self._header = space.alloc(max_nodes * HEADER_BYTES, f"{label}.headers")

    def insert(self, src: int, dst: int, weight: float, recorder) -> InsertOutcome:
        """Search for ``src -> dst`` and insert it if absent."""
        vec = self._neighbors[src]
        index = self._position[src]
        tracing = recorder.enabled
        if tracing:
            recorder.access(self._header.element(src, HEADER_BYTES))
        existing = index.get(dst)
        if existing is not None:
            scanned = existing + 1
            if tracing:
                self._trace_scan(src, scanned, recorder)
            return InsertOutcome(scanned=scanned, inserted=False, grew_from=0)
        scanned = len(vec)
        if tracing:
            self._trace_scan(src, scanned, recorder)
        grew_from = 0
        if len(vec) == self._capacity[src]:
            grew_from = self._grow(src)
        index[dst] = len(vec)
        vec.append((dst, weight))
        if tracing and self._region[src] is not None:
            recorder.access(
                self._region[src].element(len(vec) - 1, ENTRY_BYTES), write=True
            )
        return InsertOutcome(scanned=scanned, inserted=True, grew_from=grew_from)

    def _grow(self, src: int) -> int:
        """Double ``src``'s vector capacity; returns elements moved."""
        old_len = len(self._neighbors[src])
        new_capacity = max(INITIAL_CAPACITY, self._capacity[src] * 2)
        old_region = self._region[src]
        self._region[src] = self.space.alloc(
            new_capacity * ENTRY_BYTES, f"{self.label}.vec"
        )
        if old_region is not None:
            self.space.free(old_region)
        self._capacity[src] = new_capacity
        return old_len

    def _trace_scan(self, src: int, count: int, recorder) -> None:
        region = self._region[src]
        if region is None or count == 0:
            return
        recorder.access_range(region.base, min(count, len(self._neighbors[src])), ENTRY_BYTES)

    def remove(self, src: int, dst: int, recorder) -> RemoveOutcome:
        """Search for ``src -> dst`` and swap-remove it if present.

        The last entry moves into the vacated slot, keeping the vector
        dense (the standard unordered-vector deletion).
        """
        vec = self._neighbors[src]
        index = self._position[src]
        tracing = recorder.enabled
        if tracing:
            recorder.access(self._header.element(src, HEADER_BYTES))
        position = index.get(dst)
        if position is None:
            scanned = len(vec)
            if tracing:
                self._trace_scan(src, scanned, recorder)
            return RemoveOutcome(scanned=scanned, removed=False, moved=0)
        scanned = position + 1
        if tracing:
            self._trace_scan(src, scanned, recorder)
        last = len(vec) - 1
        moved = 0
        if position != last:
            vec[position] = vec[last]
            index[vec[position][0]] = position
            moved = 1
            if tracing and self._region[src] is not None:
                recorder.access(
                    self._region[src].element(position, ENTRY_BYTES), write=True
                )
        vec.pop()
        del index[dst]
        return RemoveOutcome(scanned=scanned, removed=True, moved=moved)

    def neighbors(self, u: int) -> List[Tuple[int, float]]:
        return self._neighbors[u]

    def degree(self, u: int) -> int:
        return len(self._neighbors[u])

    def trace_traversal(self, u: int, recorder) -> None:
        """Emit the accesses of one full traversal of ``u``'s vector."""
        recorder.access(self._header.element(u, HEADER_BYTES))
        region = self._region[u]
        if region is not None:
            recorder.access_range(region.base, len(self._neighbors[u]), ENTRY_BYTES)

    @property
    def header_region(self) -> Region:
        return self._header

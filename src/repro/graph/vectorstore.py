"""Shared internals of the two adjacency-list structures (AS and AC).

Both structures store, per vertex, a contiguous growable vector of
``(neighbor, weight)`` entries; they differ only in multithreading
style (per-vertex locks vs lockless chunks).  :class:`VectorStore`
implements the storage, duplicate detection, growth accounting, and
memory-trace emission once, and reports the primitive counts of each
operation so each structure can price them with the shared cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.memory import AddressSpace, Region

#: Bytes of one (neighbor, weight) entry: 4B id + 4B weight, packed.
ENTRY_BYTES = 8

#: Bytes of one per-vertex header (pointer, size, capacity, lock word).
HEADER_BYTES = 16

#: Initial capacity of a vertex's neighbor vector.
INITIAL_CAPACITY = 4


@dataclass
class InsertOutcome:
    """Primitive counts of one search-then-insert operation."""

    scanned: int  # entries compared during the search scan
    inserted: bool  # False when the edge already existed
    grew_from: int  # elements moved by a capacity doubling (0 if none)


@dataclass
class RemoveOutcome:
    """Primitive counts of one search-then-remove operation."""

    scanned: int  # entries compared during the search scan
    removed: bool  # False when the edge was absent
    moved: int  # entries moved to close the hole (swap-remove: 0 or 1)


class VectorStore:
    """Array-of-vectors storage for one direction of adjacency.

    Functionally a ``vertex -> [(neighbor, weight), ...]`` map with
    unique neighbors.  Membership checks use a per-vertex index dict
    (so the Python implementation is O(1)), but the *charged* cost is
    the linear scan a contiguous C++ vector would perform, and the
    emitted trace walks the vector's real simulated addresses.
    """

    def __init__(self, max_nodes: int, space: AddressSpace, label: str) -> None:
        self.max_nodes = max_nodes
        self.space = space
        self.label = label
        self._neighbors: List[List[Tuple[int, float]]] = [[] for _ in range(max_nodes)]
        self._position: List[Dict[int, int]] = [{} for _ in range(max_nodes)]
        self._capacity: List[int] = [0] * max_nodes
        self._region: List[Optional[Region]] = [None] * max_nodes
        self._header = space.alloc(max_nodes * HEADER_BYTES, f"{label}.headers")
        self._vec_label = f"{label}.vec"

    def insert(self, src: int, dst: int, weight: float, recorder) -> InsertOutcome:
        """Search for ``src -> dst`` and insert it if absent."""
        vec = self._neighbors[src]
        index = self._position[src]
        tracing = recorder.enabled
        if tracing:
            recorder.access(self._header.element(src, HEADER_BYTES))
        existing = index.get(dst)
        if existing is not None:
            scanned = existing + 1
            if tracing:
                self._trace_scan(src, scanned, recorder)
            return InsertOutcome(scanned=scanned, inserted=False, grew_from=0)
        scanned = len(vec)
        if tracing:
            self._trace_scan(src, scanned, recorder)
        grew_from = 0
        if len(vec) == self._capacity[src]:
            grew_from = self._grow(src)
        index[dst] = len(vec)
        vec.append((dst, weight))
        if tracing and self._region[src] is not None:
            recorder.access(
                self._region[src].element(len(vec) - 1, ENTRY_BYTES), write=True
            )
        return InsertOutcome(scanned=scanned, inserted=True, grew_from=grew_from)

    def _grow(self, src: int) -> int:
        """Double ``src``'s vector capacity; returns elements moved."""
        old_len = len(self._neighbors[src])
        capacity = self._capacity[src]
        new_capacity = capacity * 2 if capacity else INITIAL_CAPACITY
        old_region = self._region[src]
        self._region[src] = self.space.alloc(
            new_capacity * ENTRY_BYTES, self._vec_label
        )
        if old_region is not None:
            self.space.free(old_region)
        self._capacity[src] = new_capacity
        return old_len

    def _trace_scan(self, src: int, count: int, recorder) -> None:
        region = self._region[src]
        if region is None or count == 0:
            return
        recorder.access_range(region.base, min(count, len(self._neighbors[src])), ENTRY_BYTES)

    def remove(self, src: int, dst: int, recorder) -> RemoveOutcome:
        """Search for ``src -> dst`` and swap-remove it if present.

        The last entry moves into the vacated slot, keeping the vector
        dense (the standard unordered-vector deletion).
        """
        vec = self._neighbors[src]
        index = self._position[src]
        tracing = recorder.enabled
        if tracing:
            recorder.access(self._header.element(src, HEADER_BYTES))
        position = index.get(dst)
        if position is None:
            scanned = len(vec)
            if tracing:
                self._trace_scan(src, scanned, recorder)
            return RemoveOutcome(scanned=scanned, removed=False, moved=0)
        scanned = position + 1
        if tracing:
            self._trace_scan(src, scanned, recorder)
        last = len(vec) - 1
        moved = 0
        if position != last:
            vec[position] = vec[last]
            index[vec[position][0]] = position
            moved = 1
            if tracing and self._region[src] is not None:
                recorder.access(
                    self._region[src].element(position, ENTRY_BYTES), write=True
                )
        vec.pop()
        del index[dst]
        return RemoveOutcome(scanned=scanned, removed=True, moved=moved)

    def _bulk_parts(self):
        """(neighbors, index, capacity, grow) for :func:`bulk_ingest`."""
        return self._neighbors, self._position, self._capacity, self._grow

    def neighbors(self, u: int) -> List[Tuple[int, float]]:
        return self._neighbors[u]

    def degree(self, u: int) -> int:
        return len(self._neighbors[u])

    def trace_traversal(self, u: int, recorder) -> None:
        """Emit the accesses of one full traversal of ``u``'s vector."""
        recorder.access(self._header.element(u, HEADER_BYTES))
        region = self._region[u]
        if region is not None:
            recorder.access_range(region.base, len(self._neighbors[u]), ENTRY_BYTES)

    @property
    def header_region(self) -> Region:
        return self._header


def bulk_ingest(
    out_store,
    in_store,
    src,
    dst,
    weight,
    directed,
    delete,
    scanned,
    hit,
    aux,
    record_moved=True,
):
    """Fused, untraced ingest of one whole batch into a store pair.

    Operation for operation equivalent to the per-edge emitter loop
    with a disabled recorder -- same store mutations in the same order,
    same scanned/hit/aux rows -- with the method dispatch, per-op
    outcome objects, and tracing branches removed.  ``in_store`` is the
    out-store itself for undirected graphs (both orientations land in
    one store, and the mirror op is skipped for self-loops).  ``aux``
    receives grew_from (insert) or moved (delete; always 0 when
    ``record_moved`` is false, for stores that do not price backfill
    moves).  Returns the number of out-store operations that changed
    the store.
    """
    o_neighbors, o_index, o_capacity, o_grow = out_store._bulk_parts()
    i_neighbors, i_index, i_capacity, i_grow = in_store._bulk_parts()
    append_scanned = scanned.append
    append_hit = hit.append
    append_aux = aux.append
    positive = 0
    if delete:
        for u, v in zip(src, dst):
            vec = o_neighbors[u]
            index = o_index[u]
            position = index.get(v)
            if position is None:
                append_scanned(len(vec))
                append_hit(False)
                append_aux(0)
            else:
                append_scanned(position + 1)
                last = len(vec) - 1
                moved = 0
                if position != last:
                    vec[position] = vec[last]
                    index[vec[position][0]] = position
                    moved = 1
                vec.pop()
                del index[v]
                append_hit(True)
                append_aux(moved if record_moved else 0)
                positive += 1
            if u != v or directed:
                vec = i_neighbors[v]
                index = i_index[v]
                position = index.get(u)
                if position is None:
                    append_scanned(len(vec))
                    append_hit(False)
                    append_aux(0)
                else:
                    append_scanned(position + 1)
                    last = len(vec) - 1
                    moved = 0
                    if position != last:
                        vec[position] = vec[last]
                        index[vec[position][0]] = position
                        moved = 1
                    vec.pop()
                    del index[u]
                    append_hit(True)
                    append_aux(moved if record_moved else 0)
    else:
        for u, v, w in zip(src, dst, weight):
            index = o_index[u]
            position = index.get(v)
            if position is not None:
                append_scanned(position + 1)
                append_hit(False)
                append_aux(0)
            else:
                vec = o_neighbors[u]
                length = len(vec)
                append_scanned(length)
                grew = o_grow(u) if length == o_capacity[u] else 0
                index[v] = length
                vec.append((v, w))
                append_hit(True)
                append_aux(grew)
                positive += 1
            if u != v or directed:
                index = i_index[v]
                position = index.get(u)
                if position is not None:
                    append_scanned(position + 1)
                    append_hit(False)
                    append_aux(0)
                else:
                    vec = i_neighbors[v]
                    length = len(vec)
                    append_scanned(length)
                    grew = i_grow(v) if length == i_capacity[v] else 0
                    index[u] = length
                    vec.append((u, w))
                    append_hit(True)
                    append_aux(grew)
    return positive


def row_layout(src, dst, directed):
    """Per-row source vertex and mirror flag for one fused batch.

    Rows appear in ingest order -- each edge's out-store operation,
    then its mirror operation (skipped for undirected self-loops) --
    matching the per-edge loop, so per-row columns that depend only on
    the batch content (lock and chunk ids) can be rebuilt vectorized
    instead of appended inside the hot loop.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    n = len(src)
    if directed:
        row_src = np.empty(2 * n, dtype=np.int64)
        row_src[0::2] = src
        row_src[1::2] = dst
        mirror = np.zeros(2 * n, dtype=bool)
        mirror[1::2] = True
        return row_src, mirror
    mirrored = src != dst
    starts = np.zeros(n, dtype=np.int64)
    np.cumsum(1 + mirrored[:-1], out=starts[1:])
    row_src = np.empty(n + int(np.count_nonzero(mirrored)), dtype=np.int64)
    mirror = np.zeros(len(row_src), dtype=bool)
    row_src[starts] = src
    mirror_rows = starts[mirrored] + 1
    row_src[mirror_rows] = dst[mirrored]
    mirror[mirror_rows] = True
    return row_src, mirror

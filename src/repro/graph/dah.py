"""DAH: degree-aware hashing (Section III-A4, Fig. 5).

Each chunk of DAH owns two hash tables:

- a **low-degree table** (Robin Hood hashing) whose slots hold a vertex
  key plus a small inline array of neighbors, and
- a **high-degree table** (open addressing) mapping a vertex to a
  growable hashed neighbor set.

An edge insert first performs the *degree query* meta-operation to
decide which table owns the source vertex; when a vertex in the
low-degree table outgrows its inline array, its edges are *flushed* to
the high-degree table.  Hashing gives amortized O(1) insertion -- the
reason DAH is the most scalable structure for heavy-tailed batches --
but the meta-operations make it the slowest updater on short-tailed
ones, and hashed neighbor retrieval makes its compute phase the most
expensive of the four structures (Section V-B).

Chunks are single-threaded and lockless, like AC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StructureError
from repro.graph.base import ExecutionContext, GraphDataStructure
from repro.graph.hashtables import OpenAddressTable, RobinHoodTable
from repro.sim.memory import AddressSpace, Region
from repro.sim.scheduler import ChunkedScheduler, ScheduleResult, Task

#: A vertex moves to the high-degree table beyond this many neighbors.
LOW_DEGREE_THRESHOLD = 16

#: Slot sizes for trace-address computation.
LOW_SLOT_BYTES = 8 + LOW_DEGREE_THRESHOLD * 8  # key + inline neighbor array
HIGH_SLOT_BYTES = 16  # key + pointer to the neighbor set
NEIGHBOR_SLOT_BYTES = 8

#: Default chunk count; matches the paper's 64 hardware threads.
DEFAULT_CHUNKS = 64


class _TrackedTable:
    """A hash table plus the simulated region backing its slot array."""

    def __init__(self, table, space: AddressSpace, slot_bytes: int, label: str) -> None:
        self.table = table
        self.space = space
        self.slot_bytes = slot_bytes
        self.label = label
        self._generation = -1
        self.region: Optional[Region] = None
        self._sync_region()

    def _sync_region(self) -> None:
        if self.table.generation != self._generation:
            if self.region is not None:
                self.space.free(self.region)
            self.region = self.space.alloc(
                self.table.capacity * self.slot_bytes, self.label
            )
            self._generation = self.table.generation

    def trace_path(self, path: List[int], recorder, write_last: bool = False) -> None:
        """Emit the probe path's slot addresses; resync after resizes."""
        self._sync_region()
        if not recorder.enabled:
            return
        last = len(path) - 1
        for i, slot in enumerate(path):
            recorder.access(
                self.region.element(slot, self.slot_bytes),
                write=write_last and i == last,
            )


@dataclass
class _InsertStats:
    """Primitive counts of one DAH edge insert, for cost pricing."""

    table_probes: int = 0  # hash-table slots inspected (both tables)
    hash_ops: int = 0  # hash computations performed
    inline_scanned: int = 0  # inline-array entries compared
    degree_queries: int = 0  # table meta-queries
    flushed: int = 0  # entries migrated low -> high
    rehash_moves: int = 0  # entries moved by table resizes
    inserted: bool = False


class _NeighborSet:
    """Hashed neighbor container of one high-degree vertex."""

    def __init__(self, space: AddressSpace, label: str) -> None:
        self.table = OpenAddressTable(initial_capacity=32)
        self.tracked = _TrackedTable(self.table, space, NEIGHBOR_SLOT_BYTES, label)

    def insert(self, dst: int, weight: float, recorder, stats: _InsertStats) -> bool:
        # Search-then-insert, as everywhere in SAGA-Bench: a duplicate
        # edge must not overwrite the stored weight.
        _, found = self.table.get(dst)
        stats.hash_ops += 1
        stats.table_probes += found.probes
        self.tracked.trace_path(found.path, recorder)
        if found.found:
            return False
        outcome = self.table.put(dst, weight)
        stats.hash_ops += 1
        stats.table_probes += outcome.probes
        stats.rehash_moves += outcome.resized_moves
        self.tracked.trace_path(outcome.path, recorder, write_last=True)
        return True

    def neighbors(self) -> List[Tuple[int, float]]:
        return list(self.table.items())

    def __len__(self) -> int:
        return len(self.table)


class _DAHStore:
    """One direction (out or in) of degree-aware hashing."""

    def __init__(self, max_nodes: int, chunks: int, space: AddressSpace, label: str) -> None:
        self.max_nodes = max_nodes
        self.chunks = chunks
        self.space = space
        self.label = label
        self._low = [
            _TrackedTable(
                RobinHoodTable(initial_capacity=64),
                space,
                LOW_SLOT_BYTES,
                f"{label}.low{c}",
            )
            for c in range(chunks)
        ]
        self._high = [
            _TrackedTable(
                OpenAddressTable(initial_capacity=16),
                space,
                HIGH_SLOT_BYTES,
                f"{label}.high{c}",
            )
            for c in range(chunks)
        ]
        self._set_count = 0

    def chunk_of(self, u: int) -> int:
        return u % self.chunks

    def insert(self, src: int, dst: int, weight: float, recorder) -> _InsertStats:
        """Degree-aware search-then-insert of ``src -> dst``."""
        stats = _InsertStats()
        chunk = self.chunk_of(src)
        high = self._high[chunk]
        low = self._low[chunk]

        # Degree query 1: does the high-degree table own src?
        stats.degree_queries += 1
        neighbor_set, outcome = high.table.get(src)
        stats.hash_ops += 1
        stats.table_probes += outcome.probes
        high.trace_path(outcome.path, recorder)
        if outcome.found:
            stats.inserted = neighbor_set.insert(dst, weight, recorder, stats)
            return stats

        # Degree query 2: the low-degree table.
        stats.degree_queries += 1
        inline, outcome = low.table.get(src)
        stats.hash_ops += 1
        stats.table_probes += outcome.probes
        low.trace_path(outcome.path, recorder)
        if not outcome.found:
            put = low.table.put(src, [(dst, weight)])
            stats.hash_ops += 1
            stats.table_probes += put.probes
            stats.rehash_moves += put.resized_moves
            low.trace_path(put.path, recorder, write_last=True)
            stats.inserted = True
            return stats

        # Search the inline neighbor array (unique ingestion).
        for i, (existing, _) in enumerate(inline):
            stats.inline_scanned = i + 1
            if existing == dst:
                return stats  # duplicate
        stats.inline_scanned = len(inline)
        inline.append((dst, weight))
        stats.inserted = True
        if len(inline) <= LOW_DEGREE_THRESHOLD:
            return stats

        # Flush: src outgrew the inline array; migrate to the high table.
        delete = low.table.delete(src)
        stats.table_probes += delete.probes
        neighbor_set = _NeighborSet(self.space, f"{self.label}.nbr{self._set_count}")
        self._set_count += 1
        for flushed_dst, flushed_weight in inline:
            neighbor_set.insert(flushed_dst, flushed_weight, recorder, stats)
            stats.flushed += 1
        put = high.table.put(src, neighbor_set)
        stats.hash_ops += 1
        stats.table_probes += put.probes
        stats.rehash_moves += put.resized_moves
        high.trace_path(put.path, recorder, write_last=True)
        return stats

    def remove(self, src: int, dst: int, recorder) -> _InsertStats:
        """Degree-aware search-then-remove of ``src -> dst``.

        High-degree vertices tombstone the entry in their neighbor
        set; low-degree vertices compact their inline array.  Vertices
        never demote from the high-degree table (as in DegAwareRHH;
        re-promotion churn would dominate).  ``stats.inserted`` means
        "an edge was removed".
        """
        stats = _InsertStats()
        chunk = self.chunk_of(src)
        high = self._high[chunk]
        low = self._low[chunk]

        stats.degree_queries += 1
        neighbor_set, outcome = high.table.get(src)
        stats.hash_ops += 1
        stats.table_probes += outcome.probes
        high.trace_path(outcome.path, recorder)
        if outcome.found:
            delete = neighbor_set.table.delete(dst)
            stats.hash_ops += 1
            stats.table_probes += delete.probes
            neighbor_set.tracked.trace_path(delete.path, recorder, write_last=delete.found)
            stats.inserted = delete.found
            return stats

        stats.degree_queries += 1
        inline, outcome = low.table.get(src)
        stats.hash_ops += 1
        stats.table_probes += outcome.probes
        low.trace_path(outcome.path, recorder)
        if not outcome.found:
            return stats
        for index, (existing, _) in enumerate(inline):
            stats.inline_scanned = index + 1
            if existing == dst:
                inline[index] = inline[-1]
                inline.pop()
                stats.inserted = True
                if not inline:
                    drop = low.table.delete(src)
                    stats.table_probes += drop.probes
                return stats
        return stats

    def _lookup(self, u: int):
        """(container, is_high) for ``u``; container may be None."""
        chunk = self.chunk_of(u)
        neighbor_set, outcome = self._high[chunk].table.get(u)
        if outcome.found:
            return neighbor_set, True
        inline, outcome = self._low[chunk].table.get(u)
        if outcome.found:
            return inline, False
        return None, False

    def neighbors(self, u: int) -> List[Tuple[int, float]]:
        container, is_high = self._lookup(u)
        if container is None:
            return []
        return container.neighbors() if is_high else list(container)

    def degree(self, u: int) -> int:
        container, _ = self._lookup(u)
        return len(container) if container is not None else 0

    def is_high_degree(self, u: int) -> bool:
        _, is_high = self._lookup(u)
        return is_high

    def trace_traversal(self, u: int, recorder) -> None:
        chunk = self.chunk_of(u)
        high = self._high[chunk]
        neighbor_set, outcome = high.table.get(u)
        high.trace_path(outcome.path, recorder)
        if outcome.found:
            tracked = neighbor_set.tracked
            tracked._sync_region()
            # Enumerate the set's slot array sequentially (sparse scan).
            recorder.access_range(
                tracked.region.base, neighbor_set.table.capacity, NEIGHBOR_SLOT_BYTES
            )
            return
        low = self._low[chunk]
        _, outcome = low.table.get(u)
        low.trace_path(outcome.path, recorder)


class DegreeAwareHash(GraphDataStructure):
    """The paper's DAH data structure."""

    name = "DAH"

    def __init__(
        self,
        max_nodes,
        directed=True,
        cost_model=None,
        address_space=None,
        chunks: int = DEFAULT_CHUNKS,
    ):
        from repro.sim.cost_model import DEFAULT_COST_MODEL

        super().__init__(
            max_nodes,
            directed=directed,
            cost_model=cost_model or DEFAULT_COST_MODEL,
            address_space=address_space,
        )
        if chunks < 1:
            raise StructureError(f"chunks must be >= 1, got {chunks}")
        self.chunks = chunks
        self._out = _DAHStore(max_nodes, chunks, self.space, "DAH.out")
        self._in = (
            _DAHStore(max_nodes, chunks, self.space, "DAH.in") if directed else None
        )

    # -- mutation ------------------------------------------------------

    def _insert_out(self, src, dst, weight, recorder):
        return self._hashed_insert(self._out, src, dst, weight, recorder)

    def _insert_in(self, src, dst, weight, recorder):
        return self._hashed_insert(self._in, src, dst, weight, recorder)

    def _hashed_insert(self, store, src, dst, weight, recorder) -> Tuple[Task, bool]:
        stats = store.insert(src, dst, weight, recorder)
        cost = self.cost
        work = (
            cost.hash_compute * stats.hash_ops
            + cost.hash_probe * stats.table_probes
            + cost.probe_element * stats.inline_scanned
            + cost.degree_query * stats.degree_queries
            + cost.flush_per_edge * stats.flushed
            + cost.rehash_per_element * stats.rehash_moves
        )
        if stats.inserted:
            work += cost.insert_slot
        return (
            Task(unlocked_work=work, chunk=store.chunk_of(src)),
            stats.inserted,
        )

    def _delete_out(self, src, dst, recorder):
        return self._hashed_delete(self._out, src, dst, recorder)

    def _delete_in(self, src, dst, recorder):
        return self._hashed_delete(self._in, src, dst, recorder)

    def _hashed_delete(self, store, src, dst, recorder) -> Tuple[Task, bool]:
        stats = store.remove(src, dst, recorder)
        cost = self.cost
        work = (
            cost.hash_compute * stats.hash_ops
            + cost.hash_probe * stats.table_probes
            + cost.probe_element * stats.inline_scanned
            + cost.degree_query * stats.degree_queries
        )
        if stats.inserted:
            work += cost.insert_slot
        return (
            Task(unlocked_work=work, chunk=store.chunk_of(src)),
            stats.inserted,
        )

    def _batch_overhead_tasks(self, batch_size: int) -> List[Task]:
        directions = 2
        route = self.cost.route_edge * batch_size * directions
        return [
            Task(unlocked_work=route, chunk=c, overhead=True)
            for c in range(self.chunks)
        ]

    def _schedule(self, tasks: List[Task], ctx: ExecutionContext) -> ScheduleResult:
        scheduler = ChunkedScheduler(
            threads=ctx.threads,
            physical_cores=ctx.machine.physical_cores,
            cost_model=ctx.cost_model,
        )
        return scheduler.run(tasks)

    # -- queries -------------------------------------------------------

    def out_neigh(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._out.neighbors(u)

    def _in_neigh_directed(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._in.neighbors(u)

    def out_degree(self, u: int) -> int:
        return self._out.degree(u)

    def in_degree(self, u: int) -> int:
        if not self.directed:
            return self._out.degree(u)
        return self._in.degree(u)

    # -- compute-phase costs -------------------------------------------

    def out_traversal_cost(self, u: int) -> float:
        return self._traversal_cost(self._out, u)

    def _in_traversal_cost_directed(self, u: int) -> float:
        return self._traversal_cost(self._in, u)

    def _traversal_cost(self, store, u: int) -> float:
        cost = self.cost
        base = cost.degree_query + cost.hash_compute + cost.hash_probe
        degree = store.degree(u)
        if store.is_high_degree(u):
            # Sparse enumeration of the hashed neighbor set.
            return base + cost.hash_iterate_slot * degree
        # Inline array: contiguous, but behind a hashed lookup.
        return base + cost.probe_element * degree

    def degree_query_cost(self) -> float:
        """Degree lookups require a table meta-query (Section III-A4)."""
        return self.cost.degree_query + self.cost.hash_probe

    @staticmethod
    def vector_traversal_cost(degrees, cost):
        """Vectorized traversal cost over a degree array.

        A vertex lives in the high-degree table exactly when its degree
        exceeds :data:`LOW_DEGREE_THRESHOLD` (the flush is triggered on
        the insert that crosses it).
        """
        import numpy as np

        base = cost.degree_query + cost.hash_compute + cost.hash_probe
        high = degrees > LOW_DEGREE_THRESHOLD
        per_neighbor = np.where(high, cost.hash_iterate_slot, cost.probe_element)
        return base + per_neighbor * degrees

    def _trace_traversal(self, u: int, recorder, out: bool) -> None:
        store = self._out if out else self._in
        store.trace_traversal(u, recorder)

"""DAH: degree-aware hashing (Section III-A4, Fig. 5).

Each chunk of DAH owns two hash tables:

- a **low-degree table** (Robin Hood hashing) whose slots hold a vertex
  key plus a small inline array of neighbors, and
- a **high-degree table** (open addressing) mapping a vertex to a
  growable hashed neighbor set.

An edge insert first performs the *degree query* meta-operation to
decide which table owns the source vertex; when a vertex in the
low-degree table outgrows its inline array, its edges are *flushed* to
the high-degree table.  Hashing gives amortized O(1) insertion -- the
reason DAH is the most scalable structure for heavy-tailed batches --
but the meta-operations make it the slowest updater on short-tailed
ones, and hashed neighbor retrieval makes its compute phase the most
expensive of the four structures (Section V-B).

Chunks are single-threaded and lockless, like AC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StructureError
from repro.graph.adjacency_chunked import chunk_overhead_array
from repro.graph.base import ExecutionContext, GraphDataStructure
from repro.graph.hashtables import (
    _EMPTY,
    _HASH_MULT,
    _HASH_WRAP,
    OpenAddressTable,
    RobinHoodTable,
)
from repro.graph.nativestore import make_dah_store, native_dah_ingest
from repro.sim.memory import AddressSpace, Region
from repro.sim.scheduler import ChunkedScheduler, ScheduleResult, Task, TaskArray

#: A vertex moves to the high-degree table beyond this many neighbors.
LOW_DEGREE_THRESHOLD = 16

#: Slot sizes for trace-address computation.
LOW_SLOT_BYTES = 8 + LOW_DEGREE_THRESHOLD * 8  # key + inline neighbor array
HIGH_SLOT_BYTES = 16  # key + pointer to the neighbor set
NEIGHBOR_SLOT_BYTES = 8

#: Default chunk count; matches the paper's 64 hardware threads.
DEFAULT_CHUNKS = 64


class _TrackedTable:
    """A hash table plus the simulated region backing its slot array."""

    def __init__(self, table, space: AddressSpace, slot_bytes: int, label: str) -> None:
        self.table = table
        self.space = space
        self.slot_bytes = slot_bytes
        self.label = label
        self._generation = -1
        self.region: Optional[Region] = None
        self._sync_region()

    def _sync_region(self) -> None:
        if self.table.generation != self._generation:
            if self.region is not None:
                self.space.free(self.region)
            self.region = self.space.alloc(
                self.table.capacity * self.slot_bytes, self.label
            )
            self._generation = self.table.generation

    def trace_path(self, path: List[int], recorder, write_last: bool = False) -> None:
        """Emit the probe path's slot addresses; resync after resizes."""
        self._sync_region()
        if not recorder.enabled:
            return
        last = len(path) - 1
        for i, slot in enumerate(path):
            recorder.access(
                self.region.element(slot, self.slot_bytes),
                write=write_last and i == last,
            )


@dataclass
class _InsertStats:
    """Primitive counts of one DAH edge insert, for cost pricing."""

    table_probes: int = 0  # hash-table slots inspected (both tables)
    hash_ops: int = 0  # hash computations performed
    inline_scanned: int = 0  # inline-array entries compared
    degree_queries: int = 0  # table meta-queries
    flushed: int = 0  # entries migrated low -> high
    rehash_moves: int = 0  # entries moved by table resizes
    inserted: bool = False


class _NeighborSet:
    """Hashed neighbor container of one high-degree vertex."""

    def __init__(self, space: AddressSpace, label: str) -> None:
        self.table = OpenAddressTable(initial_capacity=32)
        self.tracked = _TrackedTable(self.table, space, NEIGHBOR_SLOT_BYTES, label)

    def insert(self, dst: int, weight: float, recorder, stats: _InsertStats) -> bool:
        # Search-then-insert, as everywhere in SAGA-Bench: a duplicate
        # edge must not overwrite the stored weight.
        _, found = self.table.get(dst)
        stats.hash_ops += 1
        stats.table_probes += found.probes
        self.tracked.trace_path(found.path, recorder)
        if found.found:
            return False
        outcome = self.table.put(dst, weight)
        stats.hash_ops += 1
        stats.table_probes += outcome.probes
        stats.rehash_moves += outcome.resized_moves
        self.tracked.trace_path(outcome.path, recorder, write_last=True)
        return True

    def neighbors(self) -> List[Tuple[int, float]]:
        return list(self.table.items())

    def __len__(self) -> int:
        return len(self.table)


class _DAHStore:
    """One direction (out or in) of degree-aware hashing."""

    def __init__(self, max_nodes: int, chunks: int, space: AddressSpace, label: str) -> None:
        self.max_nodes = max_nodes
        self.chunks = chunks
        self.space = space
        self.label = label
        self._low = [
            _TrackedTable(
                RobinHoodTable(initial_capacity=64),
                space,
                LOW_SLOT_BYTES,
                f"{label}.low{c}",
            )
            for c in range(chunks)
        ]
        self._high = [
            _TrackedTable(
                OpenAddressTable(initial_capacity=16),
                space,
                HIGH_SLOT_BYTES,
                f"{label}.high{c}",
            )
            for c in range(chunks)
        ]
        self._set_count = 0

    def chunk_of(self, u: int) -> int:
        return u % self.chunks

    def insert(self, src: int, dst: int, weight: float, recorder) -> _InsertStats:
        """Degree-aware search-then-insert of ``src -> dst``."""
        stats = _InsertStats()
        chunk = self.chunk_of(src)
        high = self._high[chunk]
        low = self._low[chunk]

        # Degree query 1: does the high-degree table own src?
        stats.degree_queries += 1
        neighbor_set, outcome = high.table.get(src)
        stats.hash_ops += 1
        stats.table_probes += outcome.probes
        high.trace_path(outcome.path, recorder)
        if outcome.found:
            stats.inserted = neighbor_set.insert(dst, weight, recorder, stats)
            return stats

        # Degree query 2: the low-degree table.
        stats.degree_queries += 1
        inline, outcome = low.table.get(src)
        stats.hash_ops += 1
        stats.table_probes += outcome.probes
        low.trace_path(outcome.path, recorder)
        if not outcome.found:
            put = low.table.put(src, [(dst, weight)])
            stats.hash_ops += 1
            stats.table_probes += put.probes
            stats.rehash_moves += put.resized_moves
            low.trace_path(put.path, recorder, write_last=True)
            stats.inserted = True
            return stats

        # Search the inline neighbor array (unique ingestion).
        for i, (existing, _) in enumerate(inline):
            stats.inline_scanned = i + 1
            if existing == dst:
                return stats  # duplicate
        stats.inline_scanned = len(inline)
        inline.append((dst, weight))
        stats.inserted = True
        if len(inline) <= LOW_DEGREE_THRESHOLD:
            return stats

        # Flush: src outgrew the inline array; migrate to the high table.
        delete = low.table.delete(src)
        stats.table_probes += delete.probes
        neighbor_set = _NeighborSet(self.space, f"{self.label}.nbr{self._set_count}")
        self._set_count += 1
        for flushed_dst, flushed_weight in inline:
            neighbor_set.insert(flushed_dst, flushed_weight, recorder, stats)
            stats.flushed += 1
        put = high.table.put(src, neighbor_set)
        stats.hash_ops += 1
        stats.table_probes += put.probes
        stats.rehash_moves += put.resized_moves
        high.trace_path(put.path, recorder, write_last=True)
        return stats

    def remove(self, src: int, dst: int, recorder) -> _InsertStats:
        """Degree-aware search-then-remove of ``src -> dst``.

        High-degree vertices tombstone the entry in their neighbor
        set; low-degree vertices compact their inline array.  Vertices
        never demote from the high-degree table (as in DegAwareRHH;
        re-promotion churn would dominate).  ``stats.inserted`` means
        "an edge was removed".
        """
        stats = _InsertStats()
        chunk = self.chunk_of(src)
        high = self._high[chunk]
        low = self._low[chunk]

        stats.degree_queries += 1
        neighbor_set, outcome = high.table.get(src)
        stats.hash_ops += 1
        stats.table_probes += outcome.probes
        high.trace_path(outcome.path, recorder)
        if outcome.found:
            delete = neighbor_set.table.delete(dst)
            stats.hash_ops += 1
            stats.table_probes += delete.probes
            neighbor_set.tracked.trace_path(delete.path, recorder, write_last=delete.found)
            stats.inserted = delete.found
            return stats

        stats.degree_queries += 1
        inline, outcome = low.table.get(src)
        stats.hash_ops += 1
        stats.table_probes += outcome.probes
        low.trace_path(outcome.path, recorder)
        if not outcome.found:
            return stats
        for index, (existing, _) in enumerate(inline):
            stats.inline_scanned = index + 1
            if existing == dst:
                inline[index] = inline[-1]
                inline.pop()
                stats.inserted = True
                if not inline:
                    drop = low.table.delete(src)
                    stats.table_probes += drop.probes
                return stats
        return stats

    def _lookup(self, u: int):
        """(container, is_high) for ``u``; container may be None."""
        chunk = self.chunk_of(u)
        neighbor_set, outcome = self._high[chunk].table.get(u)
        if outcome.found:
            return neighbor_set, True
        inline, outcome = self._low[chunk].table.get(u)
        if outcome.found:
            return inline, False
        return None, False

    def neighbors(self, u: int) -> List[Tuple[int, float]]:
        container, is_high = self._lookup(u)
        if container is None:
            return []
        return container.neighbors() if is_high else list(container)

    def degree(self, u: int) -> int:
        container, _ = self._lookup(u)
        return len(container) if container is not None else 0

    def is_high_degree(self, u: int) -> bool:
        _, is_high = self._lookup(u)
        return is_high

    def trace_traversal(self, u: int, recorder) -> None:
        chunk = self.chunk_of(u)
        high = self._high[chunk]
        neighbor_set, outcome = high.table.get(u)
        high.trace_path(outcome.path, recorder)
        if outcome.found:
            tracked = neighbor_set.tracked
            tracked._sync_region()
            # Enumerate the set's slot array sequentially (sparse scan).
            recorder.access_range(
                tracked.region.base, neighbor_set.table.capacity, NEIGHBOR_SLOT_BYTES
            )
            return
        low = self._low[chunk]
        _, outcome = low.table.get(u)
        low.trace_path(outcome.path, recorder)


class _DAHEmitter:
    """Columnar task emitter for DAH: hash meta-operation counts."""

    __slots__ = (
        "_out",
        "_in",
        "_cost",
        "_chunks",
        "_delete",
        "_directed",
        "table_probes",
        "hash_ops",
        "inline_scanned",
        "degree_queries",
        "flushed",
        "rehash_moves",
        "hit",
        "chunk",
    )

    def __init__(self, structure: "DegreeAwareHash", delete: bool) -> None:
        self._out = structure._out
        self._in = structure._in
        self._cost = structure.cost
        self._chunks = structure.chunks
        self._delete = delete
        self._directed = structure.directed
        self.table_probes: List[int] = []
        self.hash_ops: List[int] = []
        self.inline_scanned: List[int] = []
        self.degree_queries: List[int] = []
        self.flushed: List[int] = []
        self.rehash_moves: List[int] = []
        self.hit: List[bool] = []
        self.chunk: List[int] = []

    @property
    def rows(self) -> int:
        return len(self.table_probes)

    def ingest_batch(self, batch) -> int:
        """Fused untraced ingest via the tables' path-free fast ops.

        Resizing puts re-sync the table's simulated region immediately
        (the per-edge path syncs inside ``trace_path``), keeping the
        address-space allocation sequence identical for later traces.
        """
        directed = self._directed
        out = self._out
        mirror_store = self._in if directed else out
        if getattr(out, "native", False):
            (
                positive,
                self.table_probes,
                self.hash_ops,
                self.inline_scanned,
                self.degree_queries,
                self.flushed,
                self.rehash_moves,
                self.hit,
                self.chunk,
            ) = native_dah_ingest(
                out, mirror_store, batch, directed, self._delete
            )
            return positive
        src = batch.src.tolist()
        dst = batch.dst.tolist()
        positive = 0
        if self._delete:
            remove = self._fused_remove
            for u, v in zip(src, dst):
                if remove(out, u, v):
                    positive += 1
                if u != v or directed:
                    remove(mirror_store, v, u)
            return positive

        weight = batch.weight.tolist()
        chunks = self._chunks
        app_probes = self.table_probes.append
        app_ops = self.hash_ops.append
        app_inline = self.inline_scanned.append
        app_deg = self.degree_queries.append
        app_flush = self.flushed.append
        app_rehash = self.rehash_moves.append
        app_hit = self.hit.append
        app_chunk = self.chunk.append
        out_row = (
            out._high,
            out._low,
            [h.table for h in out._high],
            [lo.table for lo in out._low],
            out,
        )
        mirror_row = (
            mirror_store._high,
            mirror_store._low,
            [h.table for h in mirror_store._high],
            [lo.table for lo in mirror_store._low],
            mirror_store,
        )
        for u, v, w in zip(src, dst, weight):
            s = u
            d = v
            row = out_row
            mirrored = False
            while True:
                highs, lows, high_tables, low_tables, store = row
                chunk = s % chunks
                high_table = high_tables[chunk]
                # First-probe fast path: the overwhelmingly common case
                # is an immediate hit or an empty home slot; fall back to
                # the full probe loop on any collision (a tombstone never
                # compares equal to an int key, so it falls through too).
                hkeys = high_table._keys
                hmask = len(hkeys) - 1
                hslot = ((s * _HASH_MULT & _HASH_WRAP) >> 17) & hmask
                occupant = hkeys[hslot]
                if occupant is _EMPTY:
                    value = None
                    probes = 1
                    found = False
                elif occupant == s:
                    value = high_table._values[hslot]
                    probes = 1
                    found = True
                else:
                    value, probes, found = high_table.get_fast(s)
                hash_ops = 1
                table_probes = probes
                inline_scanned = 0
                degree_queries = 1
                flushed = 0
                rehash_moves = 0
                inserted = False
                if found:
                    neighbor_table = value.table
                    nkeys = neighbor_table._keys
                    nmask = len(nkeys) - 1
                    occupant = nkeys[((d * _HASH_MULT & _HASH_WRAP) >> 17) & nmask]
                    if occupant is _EMPTY:
                        probes = 1
                        duplicate = False
                    elif occupant == d:
                        probes = 1
                        duplicate = True
                    else:
                        _, probes, duplicate = neighbor_table.get_fast(d)
                    hash_ops = 2
                    table_probes += probes
                    if not duplicate:
                        probes, moves, _ = neighbor_table.put_fast(d, w)
                        hash_ops = 3
                        table_probes += probes
                        if moves:
                            rehash_moves = moves
                            value.tracked._sync_region()
                        inserted = True
                else:
                    low_table = low_tables[chunk]
                    degree_queries = 2
                    lkeys = low_table._keys
                    lmask = len(lkeys) - 1
                    lslot = ((s * _HASH_MULT & _HASH_WRAP) >> 17) & lmask
                    occupant = lkeys[lslot]
                    if occupant is _EMPTY:
                        inline = None
                        probes = 1
                        found_low = False
                    elif occupant == s:
                        inline = low_table._values[lslot]
                        probes = 1
                        found_low = True
                    else:
                        inline, probes, found_low = low_table.get_fast(s)
                    hash_ops = 2
                    table_probes += probes
                    if not found_low:
                        probes, moves, _ = low_table.put_fast(s, [(d, w)])
                        hash_ops = 3
                        table_probes += probes
                        if moves:
                            rehash_moves = moves
                            lows[chunk]._sync_region()
                        inserted = True
                    else:
                        duplicate = False
                        for j, (existing, _w) in enumerate(inline):
                            inline_scanned = j + 1
                            if existing == d:
                                duplicate = True
                                break
                        if not duplicate:
                            inline_scanned = len(inline)
                            inline.append((d, w))
                            inserted = True
                            if len(inline) > LOW_DEGREE_THRESHOLD:
                                probes, _found = low_table.delete_fast(s)
                                table_probes += probes
                                neighbor_set = _NeighborSet(
                                    store.space, f"{store.label}.nbr{store._set_count}"
                                )
                                store._set_count += 1
                                neighbor_table = neighbor_set.table
                                for flushed_dst, flushed_weight in inline:
                                    _, probes, duplicate = neighbor_table.get_fast(
                                        flushed_dst
                                    )
                                    hash_ops += 1
                                    table_probes += probes
                                    if not duplicate:
                                        probes, moves, _ = neighbor_table.put_fast(
                                            flushed_dst, flushed_weight
                                        )
                                        hash_ops += 1
                                        table_probes += probes
                                        if moves:
                                            rehash_moves += moves
                                            neighbor_set.tracked._sync_region()
                                    flushed += 1
                                probes, moves, _ = high_table.put_fast(s, neighbor_set)
                                hash_ops += 1
                                table_probes += probes
                                if moves:
                                    rehash_moves += moves
                                    highs[chunk]._sync_region()
                app_probes(table_probes)
                app_ops(hash_ops)
                app_inline(inline_scanned)
                app_deg(degree_queries)
                app_flush(flushed)
                app_rehash(rehash_moves)
                app_hit(inserted)
                app_chunk(chunk)
                if not mirrored and inserted:
                    positive += 1
                if mirrored or (u == v and not directed):
                    break
                mirrored = True
                s = v
                d = u
                row = mirror_row
        return positive

    def _fused_remove(self, store, src, dst) -> bool:
        """``_DAHStore.remove`` inlined with fast table ops, no stats."""
        chunk = src % self._chunks
        high = store._high[chunk]
        value, probes, found = high.table.get_fast(src)
        hash_ops = 1
        table_probes = probes
        inline_scanned = 0
        degree_queries = 1
        removed = False
        if found:
            probes, was_present = value.table.delete_fast(dst)
            hash_ops += 1
            table_probes += probes
            removed = was_present
        else:
            low = store._low[chunk]
            degree_queries = 2
            inline, probes, found_low = low.table.get_fast(src)
            hash_ops += 1
            table_probes += probes
            if found_low:
                for index, (existing, _w) in enumerate(inline):
                    inline_scanned = index + 1
                    if existing == dst:
                        inline[index] = inline[-1]
                        inline.pop()
                        removed = True
                        if not inline:
                            probes, _found = low.table.delete_fast(src)
                            table_probes += probes
                        break
        self.table_probes.append(table_probes)
        self.hash_ops.append(hash_ops)
        self.inline_scanned.append(inline_scanned)
        self.degree_queries.append(degree_queries)
        self.flushed.append(0)
        self.rehash_moves.append(0)
        self.hit.append(removed)
        self.chunk.append(chunk)
        return removed

    def insert_out(self, src, dst, weight, recorder) -> bool:
        return self._record(self._out.insert(src, dst, weight, recorder), src)

    def insert_in(self, src, dst, weight, recorder) -> bool:
        return self._record(self._in.insert(src, dst, weight, recorder), src)

    def delete_out(self, src, dst, recorder) -> bool:
        return self._record(self._out.remove(src, dst, recorder), src)

    def delete_in(self, src, dst, recorder) -> bool:
        return self._record(self._in.remove(src, dst, recorder), src)

    def _record(self, stats: _InsertStats, src) -> bool:
        self.table_probes.append(stats.table_probes)
        self.hash_ops.append(stats.hash_ops)
        self.inline_scanned.append(stats.inline_scanned)
        self.degree_queries.append(stats.degree_queries)
        self.flushed.append(stats.flushed)
        self.rehash_moves.append(stats.rehash_moves)
        self.hit.append(stats.inserted)
        self.chunk.append(src % self._chunks)
        return stats.inserted

    def finish(self, batch_size: int) -> TaskArray:
        cost = self._cost
        work = (
            cost.hash_compute * np.asarray(self.hash_ops, dtype=np.float64)
            + cost.hash_probe * np.asarray(self.table_probes, dtype=np.float64)
            + cost.probe_element * np.asarray(self.inline_scanned, dtype=np.float64)
            + cost.degree_query * np.asarray(self.degree_queries, dtype=np.float64)
        )
        if not self._delete:
            work += cost.flush_per_edge * np.asarray(self.flushed, dtype=np.float64)
            work += cost.rehash_per_element * np.asarray(
                self.rehash_moves, dtype=np.float64
            )
        hit = np.asarray(self.hit, dtype=bool)
        work[hit] += cost.insert_slot
        edges = TaskArray.build(
            self.rows,
            unlocked_work=work,
            chunk=np.asarray(self.chunk, dtype=np.int64),
        )
        return TaskArray.concatenate(
            [edges, chunk_overhead_array(cost, batch_size, self._chunks)]
        )


class DegreeAwareHash(GraphDataStructure):
    """The paper's DAH data structure."""

    name = "DAH"

    def __init__(
        self,
        max_nodes,
        directed=True,
        cost_model=None,
        address_space=None,
        chunks: int = DEFAULT_CHUNKS,
    ):
        from repro.sim.cost_model import DEFAULT_COST_MODEL

        super().__init__(
            max_nodes,
            directed=directed,
            cost_model=cost_model or DEFAULT_COST_MODEL,
            address_space=address_space,
        )
        if chunks < 1:
            raise StructureError(f"chunks must be >= 1, got {chunks}")
        self.chunks = chunks
        self._out = make_dah_store(max_nodes, chunks, self.space, "DAH.out")
        self._in = (
            make_dah_store(max_nodes, chunks, self.space, "DAH.in")
            if directed
            else None
        )

    # -- mutation ------------------------------------------------------

    def _make_emitter(self, delete: bool) -> _DAHEmitter:
        return _DAHEmitter(self, delete)

    def _insert_out(self, src, dst, weight, recorder):
        return self._hashed_insert(self._out, src, dst, weight, recorder)

    def _insert_in(self, src, dst, weight, recorder):
        return self._hashed_insert(self._in, src, dst, weight, recorder)

    def _hashed_insert(self, store, src, dst, weight, recorder) -> Tuple[Task, bool]:
        stats = store.insert(src, dst, weight, recorder)
        cost = self.cost
        work = (
            cost.hash_compute * stats.hash_ops
            + cost.hash_probe * stats.table_probes
            + cost.probe_element * stats.inline_scanned
            + cost.degree_query * stats.degree_queries
            + cost.flush_per_edge * stats.flushed
            + cost.rehash_per_element * stats.rehash_moves
        )
        if stats.inserted:
            work += cost.insert_slot
        return (
            Task(unlocked_work=work, chunk=store.chunk_of(src)),
            stats.inserted,
        )

    def _delete_out(self, src, dst, recorder):
        return self._hashed_delete(self._out, src, dst, recorder)

    def _delete_in(self, src, dst, recorder):
        return self._hashed_delete(self._in, src, dst, recorder)

    def _hashed_delete(self, store, src, dst, recorder) -> Tuple[Task, bool]:
        stats = store.remove(src, dst, recorder)
        cost = self.cost
        work = (
            cost.hash_compute * stats.hash_ops
            + cost.hash_probe * stats.table_probes
            + cost.probe_element * stats.inline_scanned
            + cost.degree_query * stats.degree_queries
        )
        if stats.inserted:
            work += cost.insert_slot
        return (
            Task(unlocked_work=work, chunk=store.chunk_of(src)),
            stats.inserted,
        )

    def _batch_overhead_tasks(self, batch_size: int) -> List[Task]:
        directions = 2
        route = self.cost.route_edge * batch_size * directions
        return [
            Task(unlocked_work=route, chunk=c, overhead=True)
            for c in range(self.chunks)
        ]

    def _schedule(self, tasks: List[Task], ctx: ExecutionContext) -> ScheduleResult:
        scheduler = ChunkedScheduler(
            threads=ctx.threads,
            physical_cores=ctx.machine.physical_cores,
            cost_model=ctx.cost_model,
        )
        return scheduler.run(tasks)

    # -- queries -------------------------------------------------------

    def out_neigh(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._out.neighbors(u)

    def _in_neigh_directed(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._in.neighbors(u)

    def out_degree(self, u: int) -> int:
        return self._out.degree(u)

    def in_degree(self, u: int) -> int:
        if not self.directed:
            return self._out.degree(u)
        return self._in.degree(u)

    # -- compute-phase costs -------------------------------------------

    def out_traversal_cost(self, u: int) -> float:
        return self._traversal_cost(self._out, u)

    def _in_traversal_cost_directed(self, u: int) -> float:
        return self._traversal_cost(self._in, u)

    def _traversal_cost(self, store, u: int) -> float:
        cost = self.cost
        base = cost.degree_query + cost.hash_compute + cost.hash_probe
        degree = store.degree(u)
        if store.is_high_degree(u):
            # Sparse enumeration of the hashed neighbor set.
            return base + cost.hash_iterate_slot * degree
        # Inline array: contiguous, but behind a hashed lookup.
        return base + cost.probe_element * degree

    def degree_query_cost(self) -> float:
        """Degree lookups require a table meta-query (Section III-A4)."""
        return self.cost.degree_query + self.cost.hash_probe

    @staticmethod
    def vector_traversal_cost(degrees, cost):
        """Vectorized traversal cost over a degree array.

        A vertex lives in the high-degree table exactly when its degree
        exceeds :data:`LOW_DEGREE_THRESHOLD` (the flush is triggered on
        the insert that crosses it).
        """
        import numpy as np

        base = cost.degree_query + cost.hash_compute + cost.hash_probe
        high = degrees > LOW_DEGREE_THRESHOLD
        per_neighbor = np.where(high, cost.hash_iterate_slot, cost.probe_element)
        return base + per_neighbor * degrees

    def _trace_traversal(self, u: int, recorder, out: bool) -> None:
        store = self._out if out else self._in
        store.trace_traversal(u, recorder)

"""Graph data structures of SAGA-Bench.

Four streaming structures behind one API (paper Section III):

======== =============================== ==================== =================
 Name     Storage                         Multithreading       Intra-vertex par.
======== =============================== ==================== =================
 AS       array of vectors                shared, per-vertex   no
                                          locks
 AC       chunked array of vectors        chunked, lockless    no
 Stinger  linked 16-edge blocks           shared, per-block    yes
                                          locks
 DAH      low/high-degree hash tables     chunked, lockless    no
======== =============================== ==================== =================

Plus :class:`~repro.graph.csr.CSRGraph` (static snapshots) and
:class:`~repro.graph.reference.ReferenceGraph` (uninstrumented ground
truth).
"""

from typing import Optional

from repro.errors import StructureError
from repro.graph.adjacency_chunked import AdjacencyListChunked
from repro.graph.adjacency_shared import AdjacencyListShared
from repro.graph.base import ExecutionContext, GraphDataStructure, UpdateResult
from repro.graph.blocked import BlockedAdjacency
from repro.graph.csr import CSRGraph, snapshot_in, snapshot_out
from repro.graph.dah import DegreeAwareHash
from repro.graph.edge import Edge, EdgeBatch
from repro.graph.properties import VertexProperties
from repro.graph.reference import ReferenceGraph
from repro.graph.stinger import Stinger

#: Registry mapping structure names to classes.  The first four are
#: the paper's; "BA" is the post-paper Hornet-style extension (the
#: characterization pipelines default to the original four).
STRUCTURES = {
    "AS": AdjacencyListShared,
    "AC": AdjacencyListChunked,
    "Stinger": Stinger,
    "DAH": DegreeAwareHash,
    "BA": BlockedAdjacency,
}


def make_structure(
    name: str,
    max_nodes: int,
    directed: bool = True,
    cost_model=None,
    address_space=None,
    **kwargs,
) -> GraphDataStructure:
    """Instantiate a data structure by its paper name.

    ``name`` is one of ``"AS"``, ``"AC"``, ``"Stinger"``, ``"DAH"``
    (case-insensitive).  Extra keyword arguments (e.g. ``chunks`` for
    the chunked structures) are forwarded to the constructor.
    """
    key = {
        "as": "AS",
        "ac": "AC",
        "stinger": "Stinger",
        "dah": "DAH",
        "ba": "BA",
    }.get(name.lower())
    if key is None:
        raise StructureError(
            f"unknown data structure {name!r}; expected one of {sorted(STRUCTURES)}"
        )
    cls = STRUCTURES[key]
    return cls(
        max_nodes,
        directed=directed,
        cost_model=cost_model,
        address_space=address_space,
        **kwargs,
    )


__all__ = [
    "AdjacencyListChunked",
    "AdjacencyListShared",
    "BlockedAdjacency",
    "CSRGraph",
    "DegreeAwareHash",
    "Edge",
    "EdgeBatch",
    "ExecutionContext",
    "GraphDataStructure",
    "ReferenceGraph",
    "STRUCTURES",
    "Stinger",
    "UpdateResult",
    "VertexProperties",
    "make_structure",
    "snapshot_in",
    "snapshot_out",
]

"""AS: adjacency list with shared-style multithreading (Section III-A1).

An array of per-vertex vectors updated by many threads.  A thread
updating edge ``(u, v)`` locks u's *entire* vector, scans it for the
edge, and inserts on a negative search.  There is no intra-vertex
parallelism: all updates to one source vertex serialize behind its
lock, which is exactly why AS collapses on heavy-tailed batches
(paper Section V-B) while remaining the fastest structure on
short-tailed ones (no chunk-routing overhead, contiguous scans).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.graph.base import (
    ExecutionContext,
    GraphDataStructure,
    IN_STORE_LOCK_BASE,
)
from repro.graph.nativestore import make_vector_store, native_vec_ingest
from repro.graph.vectorstore import bulk_ingest, row_layout
from repro.sim.scheduler import DynamicScheduler, ScheduleResult, Task, TaskArray


class _SharedEmitter:
    """Columnar task emitter for AS: locked vector-store operations.

    Records, per operation, the slots scanned, whether the store
    changed, the growth/backfill count, and the lock id; ``finish``
    prices all rows with the same arithmetic (and the same operation
    order, for bit-identity) as the per-object path.
    """

    __slots__ = (
        "_out",
        "_in",
        "_cost",
        "_delete",
        "_directed",
        "_layout",
        "scanned",
        "hit",
        "aux",
        "lock",
    )

    def __init__(self, structure: "AdjacencyListShared", delete: bool) -> None:
        self._out = structure._out
        self._in = structure._in
        self._cost = structure.cost
        self._delete = delete
        self._directed = structure.directed
        self._layout = None  # (src, dst) of a fused batch, for finish()
        self.scanned: List[int] = []
        self.hit: List[bool] = []
        self.aux: List[int] = []  # grew_from (insert) / moved (delete)
        self.lock: List[int] = []

    @property
    def rows(self) -> int:
        return len(self.scanned)

    def ingest_batch(self, batch) -> int:
        """Fused untraced ingest: one flat pass over the whole batch.

        Lock ids are not appended per operation; they depend only on
        the batch content and are rebuilt vectorized in ``finish``.
        """
        self._layout = (batch.src, batch.dst)
        if getattr(self._out, "native", False):
            positive, self.scanned, self.hit, self.aux = native_vec_ingest(
                self._out,
                self._in if self._directed else self._out,
                batch,
                self._directed,
                self._delete,
            )
            return positive
        return bulk_ingest(
            self._out,
            self._in if self._directed else self._out,
            batch.src.tolist(),
            batch.dst.tolist(),
            None if self._delete else batch.weight.tolist(),
            self._directed,
            self._delete,
            self.scanned,
            self.hit,
            self.aux,
        )

    def insert_out(self, src, dst, weight, recorder) -> bool:
        return self._insert(self._out, src, dst, weight, recorder, src)

    def insert_in(self, src, dst, weight, recorder) -> bool:
        return self._insert(
            self._in, src, dst, weight, recorder, IN_STORE_LOCK_BASE + src
        )

    def _insert(self, store, src, dst, weight, recorder, lock) -> bool:
        outcome = store.insert(src, dst, weight, recorder)
        self.scanned.append(outcome.scanned)
        self.hit.append(outcome.inserted)
        self.aux.append(outcome.grew_from)
        self.lock.append(lock)
        return outcome.inserted

    def delete_out(self, src, dst, recorder) -> bool:
        return self._remove(self._out, src, dst, recorder, src)

    def delete_in(self, src, dst, recorder) -> bool:
        return self._remove(self._in, src, dst, recorder, IN_STORE_LOCK_BASE + src)

    def _remove(self, store, src, dst, recorder, lock) -> bool:
        outcome = store.remove(src, dst, recorder)
        self.scanned.append(outcome.scanned)
        self.hit.append(outcome.removed)
        self.aux.append(outcome.moved)
        self.lock.append(lock)
        return outcome.removed

    def finish(self, batch_size: int) -> TaskArray:
        if self._layout is not None:
            row_src, mirror = row_layout(*self._layout, self._directed)
            if self._directed:
                lock = np.where(mirror, IN_STORE_LOCK_BASE + row_src, row_src)
            else:
                lock = row_src
        else:
            lock = np.asarray(self.lock, dtype=np.int64)
        return TaskArray.build(
            self.rows,
            locked_work=_price_vector_ops(
                self._cost, self.scanned, self.hit, self.aux, self._delete
            ),
            lock=lock,
        )


def _price_vector_ops(cost, scanned, hit, aux, delete) -> np.ndarray:
    """Vectorized pricing of vector-store scans (shared by AS and AC).

    Replicates the scalar expressions term by term: the probe charge,
    then the slot charge on changed rows, then the grow/backfill charge.
    """
    work = cost.probe_element * np.asarray(scanned, dtype=np.float64)
    hit = np.asarray(hit, dtype=bool)
    aux = np.asarray(aux, dtype=np.int64)
    if delete:
        work[hit] += cost.insert_slot * (1 + aux[hit])  # clear + backfill
    else:
        work[hit] += cost.insert_slot
        work[hit] += cost.vector_grow_per_element * aux[hit].astype(np.float64)
    return work


class AdjacencyListShared(GraphDataStructure):
    """The paper's AS data structure."""

    name = "AS"

    def __init__(self, max_nodes, directed=True, cost_model=None, address_space=None):
        from repro.sim.cost_model import DEFAULT_COST_MODEL

        super().__init__(
            max_nodes,
            directed=directed,
            cost_model=cost_model or DEFAULT_COST_MODEL,
            address_space=address_space,
        )
        self._out = make_vector_store(max_nodes, self.space, "AS.out", "AS")
        self._in = (
            make_vector_store(max_nodes, self.space, "AS.in", "AS")
            if directed
            else None
        )

    # -- mutation ------------------------------------------------------

    def _make_emitter(self, delete: bool) -> _SharedEmitter:
        return _SharedEmitter(self, delete)

    def _insert_out(self, src, dst, weight, recorder):
        return self._locked_insert(self._out, src, dst, weight, recorder, lock=src)

    def _insert_in(self, src, dst, weight, recorder):
        return self._locked_insert(
            self._in, src, dst, weight, recorder, lock=IN_STORE_LOCK_BASE + src
        )

    def _locked_insert(self, store, src, dst, weight, recorder, lock) -> Tuple[Task, bool]:
        outcome = store.insert(src, dst, weight, recorder)
        cost = self.cost
        # The entire search-and-insert happens under the vertex lock.
        work = cost.probe_element * outcome.scanned
        if outcome.inserted:
            work += cost.insert_slot
            work += cost.vector_grow_per_element * outcome.grew_from
        return (
            Task(unlocked_work=0.0, locked_work=work, lock=lock),
            outcome.inserted,
        )

    def _delete_out(self, src, dst, recorder):
        return self._locked_delete(self._out, src, dst, recorder, lock=src)

    def _delete_in(self, src, dst, recorder):
        return self._locked_delete(
            self._in, src, dst, recorder, lock=IN_STORE_LOCK_BASE + src
        )

    def _locked_delete(self, store, src, dst, recorder, lock) -> Tuple[Task, bool]:
        outcome = store.remove(src, dst, recorder)
        cost = self.cost
        work = cost.probe_element * outcome.scanned
        if outcome.removed:
            work += cost.insert_slot * (1 + outcome.moved)  # clear + backfill
        return (
            Task(unlocked_work=0.0, locked_work=work, lock=lock),
            outcome.removed,
        )

    def _schedule(self, tasks: List[Task], ctx: ExecutionContext) -> ScheduleResult:
        scheduler = DynamicScheduler(
            threads=ctx.threads,
            physical_cores=ctx.machine.physical_cores,
            cost_model=ctx.cost_model,
        )
        return scheduler.run(tasks)

    # -- queries -------------------------------------------------------

    def out_neigh(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._out.neighbors(u)

    def _in_neigh_directed(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._in.neighbors(u)

    def out_degree(self, u: int) -> int:
        return self._out.degree(u)

    def in_degree(self, u: int) -> int:
        if not self.directed:
            return self._out.degree(u)
        return self._in.degree(u)

    # -- compute-phase costs -------------------------------------------

    def out_traversal_cost(self, u: int) -> float:
        cost = self.cost
        return cost.probe_element * (1 + self._out.degree(u))

    def _in_traversal_cost_directed(self, u: int) -> float:
        cost = self.cost
        return cost.probe_element * (1 + self._in.degree(u))

    @staticmethod
    def vector_traversal_cost(degrees, cost):
        """Vectorized :meth:`out_traversal_cost` over a degree array."""
        return cost.probe_element * (1.0 + degrees)

    def _trace_traversal(self, u: int, recorder, out: bool) -> None:
        store = self._out if out else self._in
        store.trace_traversal(u, recorder)

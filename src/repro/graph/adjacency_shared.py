"""AS: adjacency list with shared-style multithreading (Section III-A1).

An array of per-vertex vectors updated by many threads.  A thread
updating edge ``(u, v)`` locks u's *entire* vector, scans it for the
edge, and inserts on a negative search.  There is no intra-vertex
parallelism: all updates to one source vertex serialize behind its
lock, which is exactly why AS collapses on heavy-tailed batches
(paper Section V-B) while remaining the fastest structure on
short-tailed ones (no chunk-routing overhead, contiguous scans).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.graph.base import (
    ExecutionContext,
    GraphDataStructure,
    IN_STORE_LOCK_BASE,
)
from repro.graph.vectorstore import VectorStore
from repro.sim.scheduler import DynamicScheduler, ScheduleResult, Task


class AdjacencyListShared(GraphDataStructure):
    """The paper's AS data structure."""

    name = "AS"

    def __init__(self, max_nodes, directed=True, cost_model=None, address_space=None):
        from repro.sim.cost_model import DEFAULT_COST_MODEL

        super().__init__(
            max_nodes,
            directed=directed,
            cost_model=cost_model or DEFAULT_COST_MODEL,
            address_space=address_space,
        )
        self._out = VectorStore(max_nodes, self.space, "AS.out")
        self._in = VectorStore(max_nodes, self.space, "AS.in") if directed else None

    # -- mutation ------------------------------------------------------

    def _insert_out(self, src, dst, weight, recorder):
        return self._locked_insert(self._out, src, dst, weight, recorder, lock=src)

    def _insert_in(self, src, dst, weight, recorder):
        return self._locked_insert(
            self._in, src, dst, weight, recorder, lock=IN_STORE_LOCK_BASE + src
        )

    def _locked_insert(self, store, src, dst, weight, recorder, lock) -> Tuple[Task, bool]:
        outcome = store.insert(src, dst, weight, recorder)
        cost = self.cost
        # The entire search-and-insert happens under the vertex lock.
        work = cost.probe_element * outcome.scanned
        if outcome.inserted:
            work += cost.insert_slot
            work += cost.vector_grow_per_element * outcome.grew_from
        return (
            Task(unlocked_work=0.0, locked_work=work, lock=lock),
            outcome.inserted,
        )

    def _delete_out(self, src, dst, recorder):
        return self._locked_delete(self._out, src, dst, recorder, lock=src)

    def _delete_in(self, src, dst, recorder):
        return self._locked_delete(
            self._in, src, dst, recorder, lock=IN_STORE_LOCK_BASE + src
        )

    def _locked_delete(self, store, src, dst, recorder, lock) -> Tuple[Task, bool]:
        outcome = store.remove(src, dst, recorder)
        cost = self.cost
        work = cost.probe_element * outcome.scanned
        if outcome.removed:
            work += cost.insert_slot * (1 + outcome.moved)  # clear + backfill
        return (
            Task(unlocked_work=0.0, locked_work=work, lock=lock),
            outcome.removed,
        )

    def _schedule(self, tasks: List[Task], ctx: ExecutionContext) -> ScheduleResult:
        scheduler = DynamicScheduler(
            threads=ctx.threads,
            physical_cores=ctx.machine.physical_cores,
            cost_model=ctx.cost_model,
        )
        return scheduler.run(tasks)

    # -- queries -------------------------------------------------------

    def out_neigh(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._out.neighbors(u)

    def _in_neigh_directed(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._in.neighbors(u)

    def out_degree(self, u: int) -> int:
        return self._out.degree(u)

    def in_degree(self, u: int) -> int:
        if not self.directed:
            return self._out.degree(u)
        return self._in.degree(u)

    # -- compute-phase costs -------------------------------------------

    def out_traversal_cost(self, u: int) -> float:
        cost = self.cost
        return cost.probe_element * (1 + self._out.degree(u))

    def _in_traversal_cost_directed(self, u: int) -> float:
        cost = self.cost
        return cost.probe_element * (1 + self._in.degree(u))

    @staticmethod
    def vector_traversal_cost(degrees, cost):
        """Vectorized :meth:`out_traversal_cost` over a degree array."""
        return cost.probe_element * (1.0 + degrees)

    def _trace_traversal(self, u: int, recorder, out: bool) -> None:
        store = self._out if out else self._in
        store.trace_traversal(u, recorder)

"""Open-addressing hash tables used by degree-aware hashing (DAH).

The paper's DAH (Fig. 5, after Iwabuchi et al.) keeps a *low-degree
table* using Robin Hood hashing -- displacement-balanced linear probing
-- and a *high-degree table* using plain open addressing.  These are
real hash tables, implemented from scratch: probing, displacement
stealing, backward-shift deletion, and load-factor-driven resizing all
actually happen, and every operation reports the slots it probed so the
caller can charge cycle costs and emit memory traces from the genuine
probe sequence.

Keys are non-negative integers (vertex ids or packed edge keys); values
are arbitrary Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import StructureError

#: Grow when occupancy exceeds this fraction of capacity.
MAX_LOAD_FACTOR = 0.7

_EMPTY = object()


#: Fibonacci hashing multiplier and 64-bit wrap mask.  The fast-path
#: methods inline the hash expression rather than calling _hash_key --
#: the occupant re-hash inside Robin Hood probing runs once per probe.
_HASH_MULT = 0x9E3779B97F4A7C15
_HASH_WRAP = 0xFFFFFFFFFFFFFFFF


def _hash_key(key: int, mask: int) -> int:
    """Fibonacci-style integer hash mapped onto ``mask + 1`` slots."""
    h = (key * _HASH_MULT) & _HASH_WRAP
    return (h >> 17) & mask


@dataclass
class ProbeOutcome:
    """Result of one table operation, with its real probe path."""

    found: bool
    probes: int
    path: List[int]  # slot indices inspected, in order
    resized_moves: int = 0  # elements re-inserted by a resize


class _OpenTableBase:
    """Shared machinery of the two open-addressing variants."""

    def __init__(self, initial_capacity: int = 8) -> None:
        if initial_capacity < 1:
            raise StructureError("initial_capacity must be >= 1")
        capacity = 1
        while capacity < initial_capacity:
            capacity *= 2
        self._keys: List[Any] = [_EMPTY] * capacity
        self._values: List[Any] = [None] * capacity
        self._size = 0
        self.generation = 0  # bumped on resize (regions must be re-allocated)

    @property
    def capacity(self) -> int:
        return len(self._keys)

    def __len__(self) -> int:
        return self._size

    @property
    def load_factor(self) -> float:
        return self._size / self.capacity

    def items(self) -> Iterator[Tuple[int, Any]]:
        for key, value in zip(self._keys, self._values):
            if key is not _EMPTY:
                yield key, value

    def _mask(self) -> int:
        return self.capacity - 1

    def _snapshot(self) -> List[Tuple[int, Any]]:
        """Live (key, value) pairs as a list (rehash-time helper)."""
        return [
            (key, value)
            for key, value in zip(self._keys, self._values)
            if key is not _EMPTY
        ]

    def _maybe_grow(self) -> int:
        """Double capacity if over the load factor; returns moved count."""
        if (self._size + 1) / len(self._keys) <= MAX_LOAD_FACTOR:
            return 0
        old_items = self._snapshot()
        self._keys = [_EMPTY] * (len(self._keys) * 2)
        self._values = [None] * len(self._keys)
        self._size = 0
        self.generation += 1
        for key, value in old_items:
            self._raw_insert(key, value)
        return len(old_items)

    def _raw_insert(self, key: int, value: Any) -> None:
        raise NotImplementedError


class RobinHoodTable(_OpenTableBase):
    """Robin Hood hashing: rich entries yield slots to poor ones.

    On insertion, if the incumbent of a probed slot is closer to its
    home slot than the incoming key is to its own, the incoming key
    steals the slot and the incumbent continues probing -- bounding the
    variance of probe distances.  Deletion uses backward shifting, so
    no tombstones exist and probe paths stay short.
    """

    def get(self, key: int) -> Tuple[Any, ProbeOutcome]:
        mask = self._mask()
        slot = _hash_key(key, mask)
        path = []
        distance = 0
        while True:
            path.append(slot)
            occupant = self._keys[slot]
            if occupant is _EMPTY:
                return None, ProbeOutcome(found=False, probes=len(path), path=path)
            if occupant == key:
                return self._values[slot], ProbeOutcome(
                    found=True, probes=len(path), path=path
                )
            # Robin Hood invariant: if the occupant is closer to home
            # than we are, the key cannot be further along the chain.
            occupant_distance = (slot - _hash_key(occupant, mask)) & mask
            if occupant_distance < distance:
                return None, ProbeOutcome(found=False, probes=len(path), path=path)
            slot = (slot + 1) & mask
            distance += 1

    def put(self, key: int, value: Any) -> ProbeOutcome:
        """Insert or replace ``key``; returns the probe outcome."""
        moved = self._maybe_grow()
        outcome = self._put_no_grow(key, value)
        outcome.resized_moves = moved
        return outcome

    def _put_no_grow(self, key: int, value: Any) -> ProbeOutcome:
        mask = self._mask()
        slot = _hash_key(key, mask)
        path = []
        distance = 0
        cur_key, cur_value, cur_distance = key, value, distance
        inserted_new = True
        while True:
            path.append(slot)
            occupant = self._keys[slot]
            if occupant is _EMPTY:
                self._keys[slot] = cur_key
                self._values[slot] = cur_value
                if inserted_new:
                    self._size += 1
                break
            if occupant == cur_key:
                self._values[slot] = cur_value
                inserted_new = False
                break
            occupant_distance = (slot - _hash_key(occupant, mask)) & mask
            if occupant_distance < cur_distance:
                # Steal the slot; the displaced entry keeps probing.
                self._keys[slot], cur_key = cur_key, self._keys[slot]
                self._values[slot], cur_value = cur_value, self._values[slot]
                cur_distance = occupant_distance
            slot = (slot + 1) & mask
            cur_distance += 1
        return ProbeOutcome(found=not inserted_new, probes=len(path), path=path)

    def _raw_insert(self, key: int, value: Any) -> None:
        # Rehash-time insert: the same probe/steal sequence as
        # _put_no_grow with no outcome to report (keys are unique during
        # a rehash, so the replace branch reduces to the _EMPTY stop).
        keys = self._keys
        values = self._values
        mask = len(keys) - 1
        slot = ((key * _HASH_MULT & _HASH_WRAP) >> 17) & mask
        cur_key, cur_value, cur_distance = key, value, 0
        while True:
            occupant = keys[slot]
            if occupant is _EMPTY:
                keys[slot] = cur_key
                values[slot] = cur_value
                self._size += 1
                return
            occupant_distance = (
                slot - (((occupant * _HASH_MULT & _HASH_WRAP) >> 17) & mask)
            ) & mask
            if occupant_distance < cur_distance:
                keys[slot], cur_key = cur_key, keys[slot]
                values[slot], cur_value = cur_value, values[slot]
                cur_distance = occupant_distance
            slot = (slot + 1) & mask
            cur_distance += 1

    def delete(self, key: int) -> ProbeOutcome:
        """Remove ``key`` with backward-shift deletion."""
        _, outcome = self.get(key)
        if not outcome.found:
            return outcome
        mask = self._mask()
        slot = outcome.path[-1]
        # Shift successors back until an empty slot or a home entry.
        while True:
            next_slot = (slot + 1) & mask
            occupant = self._keys[next_slot]
            if occupant is _EMPTY or (_hash_key(occupant, mask) == next_slot):
                break
            self._keys[slot] = occupant
            self._values[slot] = self._values[next_slot]
            slot = next_slot
        self._keys[slot] = _EMPTY
        self._values[slot] = None
        self._size -= 1
        return outcome

    def max_displacement(self) -> int:
        """Largest distance of any entry from its home slot."""
        mask = self._mask()
        worst = 0
        for slot, key in enumerate(self._keys):
            if key is not _EMPTY:
                worst = max(worst, (slot - _hash_key(key, mask)) & mask)
        return worst

    # -- untraced fast path --------------------------------------------
    # The same probe sequences as get/put/delete, counted with an int
    # instead of materializing a ProbeOutcome and its path list.  Used
    # by the fused batch-ingest loops, where no trace is recorded.

    def get_fast(self, key: int) -> Tuple[Any, int, bool]:
        """``get`` without the probe path: (value, probes, found)."""
        mask = len(self._keys) - 1
        keys = self._keys
        slot = ((key * _HASH_MULT & _HASH_WRAP) >> 17) & mask
        probes = 0
        distance = 0
        while True:
            probes += 1
            occupant = keys[slot]
            if occupant is _EMPTY:
                return None, probes, False
            if occupant == key:
                return self._values[slot], probes, True
            if ((slot - (((occupant * _HASH_MULT & _HASH_WRAP) >> 17) & mask)) & mask) < distance:
                return None, probes, False
            slot = (slot + 1) & mask
            distance += 1

    def put_fast(self, key: int, value: Any) -> Tuple[int, int, bool]:
        """``put`` without the probe path: (probes, resized_moves, found)."""
        moved = self._maybe_grow()
        mask = len(self._keys) - 1
        keys = self._keys
        values = self._values
        slot = ((key * _HASH_MULT & _HASH_WRAP) >> 17) & mask
        probes = 0
        cur_key, cur_value, cur_distance = key, value, 0
        inserted_new = True
        while True:
            probes += 1
            occupant = keys[slot]
            if occupant is _EMPTY:
                keys[slot] = cur_key
                values[slot] = cur_value
                if inserted_new:
                    self._size += 1
                break
            if occupant == cur_key:
                values[slot] = cur_value
                inserted_new = False
                break
            occupant_distance = (
                slot - (((occupant * _HASH_MULT & _HASH_WRAP) >> 17) & mask)
            ) & mask
            if occupant_distance < cur_distance:
                keys[slot], cur_key = cur_key, keys[slot]
                values[slot], cur_value = cur_value, values[slot]
                cur_distance = occupant_distance
            slot = (slot + 1) & mask
            cur_distance += 1
        return probes, moved, not inserted_new

    def delete_fast(self, key: int) -> Tuple[int, bool]:
        """``delete`` without the probe path: (probes, found)."""
        mask = len(self._keys) - 1
        keys = self._keys
        slot = ((key * _HASH_MULT & _HASH_WRAP) >> 17) & mask
        probes = 0
        distance = 0
        while True:
            probes += 1
            occupant = keys[slot]
            if occupant is _EMPTY:
                return probes, False
            if occupant == key:
                break
            if ((slot - (((occupant * _HASH_MULT & _HASH_WRAP) >> 17) & mask)) & mask) < distance:
                return probes, False
            slot = (slot + 1) & mask
            distance += 1
        values = self._values
        while True:
            next_slot = (slot + 1) & mask
            occupant = keys[next_slot]
            if occupant is _EMPTY or (_hash_key(occupant, mask) == next_slot):
                break
            keys[slot] = occupant
            values[slot] = values[next_slot]
            slot = next_slot
        keys[slot] = _EMPTY
        values[slot] = None
        self._size -= 1
        return probes, True


class OpenAddressTable(_OpenTableBase):
    """Plain linear-probing open addressing with tombstones."""

    _TOMBSTONE = object()

    def get(self, key: int) -> Tuple[Any, ProbeOutcome]:
        mask = self._mask()
        slot = _hash_key(key, mask)
        path = []
        for _ in range(self.capacity):
            path.append(slot)
            occupant = self._keys[slot]
            if occupant is _EMPTY:
                return None, ProbeOutcome(found=False, probes=len(path), path=path)
            if occupant is not self._TOMBSTONE and occupant == key:
                return self._values[slot], ProbeOutcome(
                    found=True, probes=len(path), path=path
                )
            slot = (slot + 1) & mask
        return None, ProbeOutcome(found=False, probes=len(path), path=path)

    def put(self, key: int, value: Any) -> ProbeOutcome:
        moved = self._maybe_grow()
        outcome = self._put_no_grow(key, value)
        outcome.resized_moves = moved
        return outcome

    def _put_no_grow(self, key: int, value: Any) -> ProbeOutcome:
        mask = self._mask()
        slot = _hash_key(key, mask)
        path = []
        first_tombstone = None
        for _ in range(self.capacity + 1):
            path.append(slot)
            occupant = self._keys[slot]
            if occupant is _EMPTY:
                target = first_tombstone if first_tombstone is not None else slot
                self._keys[target] = key
                self._values[target] = value
                self._size += 1
                return ProbeOutcome(found=False, probes=len(path), path=path)
            if occupant is self._TOMBSTONE:
                if first_tombstone is None:
                    first_tombstone = slot
            elif occupant == key:
                self._values[slot] = value
                return ProbeOutcome(found=True, probes=len(path), path=path)
            slot = (slot + 1) & mask
        raise StructureError("open-address table overflow (load factor violated)")

    def _raw_insert(self, key: int, value: Any) -> None:
        # Rehash-time insert: a fresh table has no tombstones and keys
        # are unique, so linear probing stops at the first empty slot.
        keys = self._keys
        mask = len(keys) - 1
        slot = ((key * _HASH_MULT & _HASH_WRAP) >> 17) & mask
        while keys[slot] is not _EMPTY:
            slot = (slot + 1) & mask
        keys[slot] = key
        self._values[slot] = value
        self._size += 1

    def delete(self, key: int) -> ProbeOutcome:
        """Remove ``key``, leaving a tombstone."""
        _, outcome = self.get(key)
        if outcome.found:
            slot = outcome.path[-1]
            self._keys[slot] = self._TOMBSTONE
            self._values[slot] = None
            self._size -= 1
        return outcome

    def items(self) -> Iterator[Tuple[int, Any]]:
        for key, value in zip(self._keys, self._values):
            if key is not _EMPTY and key is not self._TOMBSTONE:
                yield key, value

    def _snapshot(self) -> List[Tuple[int, Any]]:
        tombstone = self._TOMBSTONE
        return [
            (key, value)
            for key, value in zip(self._keys, self._values)
            if key is not _EMPTY and key is not tombstone
        ]

    # -- untraced fast path (see RobinHoodTable) -----------------------

    def get_fast(self, key: int) -> Tuple[Any, int, bool]:
        """``get`` without the probe path: (value, probes, found)."""
        mask = len(self._keys) - 1
        keys = self._keys
        tombstone = self._TOMBSTONE
        slot = ((key * _HASH_MULT & _HASH_WRAP) >> 17) & mask
        probes = 0
        for _ in range(len(keys)):
            probes += 1
            occupant = keys[slot]
            if occupant is _EMPTY:
                return None, probes, False
            if occupant is not tombstone and occupant == key:
                return self._values[slot], probes, True
            slot = (slot + 1) & mask
        return None, probes, False

    def put_fast(self, key: int, value: Any) -> Tuple[int, int, bool]:
        """``put`` without the probe path: (probes, resized_moves, found)."""
        moved = self._maybe_grow()
        mask = len(self._keys) - 1
        keys = self._keys
        tombstone = self._TOMBSTONE
        slot = ((key * _HASH_MULT & _HASH_WRAP) >> 17) & mask
        probes = 0
        first_tombstone = None
        for _ in range(len(keys) + 1):
            probes += 1
            occupant = keys[slot]
            if occupant is _EMPTY:
                target = first_tombstone if first_tombstone is not None else slot
                keys[target] = key
                self._values[target] = value
                self._size += 1
                return probes, moved, False
            if occupant is tombstone:
                if first_tombstone is None:
                    first_tombstone = slot
            elif occupant == key:
                self._values[slot] = value
                return probes, moved, True
            slot = (slot + 1) & mask
        raise StructureError("open-address table overflow (load factor violated)")

    def delete_fast(self, key: int) -> Tuple[int, bool]:
        """``delete`` without the probe path: (probes, found)."""
        mask = len(self._keys) - 1
        keys = self._keys
        tombstone = self._TOMBSTONE
        slot = ((key * _HASH_MULT & _HASH_WRAP) >> 17) & mask
        probes = 0
        for _ in range(len(keys)):
            probes += 1
            occupant = keys[slot]
            if occupant is _EMPTY:
                return probes, False
            if occupant is not tombstone and occupant == key:
                keys[slot] = tombstone
                self._values[slot] = None
                self._size -= 1
                return probes, True
            slot = (slot + 1) & mask
        return probes, False

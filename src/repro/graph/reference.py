"""Uninstrumented reference adjacency.

A plain dict-of-dicts graph with the same unique-ingestion semantics as
the four instrumented structures.  It serves two roles:

- the ground truth the test suite cross-checks every structure against;
- the fast neutral view the streaming driver runs algorithms on when it
  only needs *operation counts* (per-structure compute latencies are
  then priced analytically, since vertex values are independent of
  which structure stores the topology).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import StructureError
from repro.graph.edge import EdgeBatch


class ReferenceGraph:
    """Ground-truth adjacency with unique edge ingestion."""

    def __init__(self, max_nodes: int, directed: bool = True) -> None:
        if max_nodes < 1:
            raise StructureError(f"max_nodes must be >= 1, got {max_nodes}")
        self.max_nodes = max_nodes
        self.directed = directed
        self._out: List[Dict[int, float]] = [dict() for _ in range(max_nodes)]
        self._in: List[Dict[int, float]] = (
            [dict() for _ in range(max_nodes)] if directed else self._out
        )
        self._num_edges = 0
        self._max_seen = -1

    def update(self, batch: EdgeBatch) -> int:
        """Ingest a batch; returns the number of new unique edges."""
        return len(self.update_collect(batch))

    def update_collect(self, batch: EdgeBatch):
        """Ingest a batch; returns the list of newly inserted edges.

        Each element is ``(src, dst, weight)``.  For undirected graphs
        the reverse orientation is ingested too but reported once.  The
        streaming driver uses the returned list to maintain incremental
        degree and in-edge arrays.
        """
        inserted = []
        for i in range(len(batch)):
            u = int(batch.src[i])
            v = int(batch.dst[i])
            w = float(batch.weight[i])
            if not (0 <= u < self.max_nodes and 0 <= v < self.max_nodes):
                raise StructureError(f"edge ({u}, {v}) out of range")
            if v not in self._out[u]:
                self._out[u][v] = w
                inserted.append((u, v, w))
                if self.directed:
                    self._in[v][u] = w
                elif u != v:
                    self._out[v][u] = w
            self._max_seen = max(self._max_seen, u, v)
        self._num_edges += len(inserted)
        return inserted

    def delete_collect(self, batch: EdgeBatch):
        """Remove a batch's edges; returns the list actually removed."""
        removed = []
        for i in range(len(batch)):
            u = int(batch.src[i])
            v = int(batch.dst[i])
            if not (0 <= u < self.max_nodes and 0 <= v < self.max_nodes):
                raise StructureError(f"edge ({u}, {v}) out of range")
            weight = self._out[u].pop(v, None)
            if weight is None:
                continue
            removed.append((u, v, weight))
            if self.directed:
                del self._in[v][u]
            elif u != v:
                del self._out[v][u]
        self._num_edges -= len(removed)
        return removed

    @property
    def num_nodes(self) -> int:
        return self._max_seen + 1

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def out_neigh(self, u: int) -> Sequence[Tuple[int, float]]:
        return list(self._out[u].items())

    def in_neigh(self, u: int) -> Sequence[Tuple[int, float]]:
        return list(self._in[u].items())

    def out_degree(self, u: int) -> int:
        return len(self._out[u])

    def in_degree(self, u: int) -> int:
        return len(self._in[u])

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._out[u]

    def vertices(self) -> range:
        return range(self.num_nodes)

    def out_items(self, u: int) -> Dict[int, float]:
        """Direct (read-only by convention) access to u's out-dict."""
        return self._out[u]

    def in_items(self, u: int) -> Dict[int, float]:
        return self._in[u]

    def csr_arrays(self, direction: str = "out"):
        """Columnar CSR snapshot (dict iteration order preserved)."""
        # Imported lazily: repro.compute.pricing imports repro.graph.
        from repro.compute.kernels import csr_from_rows

        n = self.num_nodes
        store = self._out if direction == "out" else self._in
        return csr_from_rows((store[u].items() for u in range(n)), n)

"""Vertex property storage.

Per the paper (footnote 4), vertex property values are kept in a
separate contiguous array regardless of data structure.  The compute
phase's large working set -- edge data *plus* property arrays -- is what
drives its LLC-friendly / L2-hostile cache behavior (Section VI-C), so
properties get their own simulated region for trace emission.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import StructureError
from repro.sim.memory import AddressSpace, Region

#: Bytes per property value (double precision).
VALUE_BYTES = 8


class VertexProperties:
    """Named per-vertex value arrays backed by simulated regions."""

    def __init__(self, max_nodes: int, space: AddressSpace) -> None:
        if max_nodes < 1:
            raise StructureError(f"max_nodes must be >= 1, got {max_nodes}")
        self.max_nodes = max_nodes
        self.space = space
        self._arrays: Dict[str, np.ndarray] = {}
        self._regions: Dict[str, Region] = {}

    def add(self, name: str, initial: float = 0.0) -> np.ndarray:
        """Create (or reset) the property ``name``; returns its array."""
        array = np.full(self.max_nodes, initial, dtype=np.float64)
        self._arrays[name] = array
        if name not in self._regions:
            self._regions[name] = self.space.alloc(
                self.max_nodes * VALUE_BYTES, f"prop.{name}"
            )
        return array

    def get(self, name: str) -> np.ndarray:
        if name not in self._arrays:
            raise StructureError(f"unknown property {name!r}")
        return self._arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def address_of(self, name: str, vertex: int) -> int:
        """Simulated byte address of ``name[vertex]`` (for tracing)."""
        return self._regions[name].element(vertex, VALUE_BYTES)

    def names(self):
        return self._arrays.keys()

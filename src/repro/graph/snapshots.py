"""Multi-snapshot storage: the paper's stated future extension.

SAGA-Bench v1 maintains only the *latest* snapshot of the evolving
graph (footnote 1 of the paper); systems like Chronos and LLAMA instead
keep every batch boundary queryable.  This module implements that
multi-snapshot model with LLAMA-style multi-versioned adjacency: each
vertex's neighbor list is a single append-only array whose entries are
tagged with the batch that added them, so

- storage is shared across snapshots (no copies), and
- a snapshot view is just a per-vertex cutoff, found by binary search
  (entries are appended in batch order).

Snapshot views satisfy the same read protocol as the live structures
(``out_neigh`` / ``in_neigh`` / degrees / ``num_nodes``), so every FS
algorithm runs on historical snapshots unchanged -- see
``examples/temporal_analysis.py``.

The multi-snapshot model is insert-only (as in Chronos): deletions
would require tombstone versions and are out of scope here.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

from repro.errors import StructureError
from repro.graph.edge import EdgeBatch


class _VersionedAdjacency:
    """One direction of multi-versioned neighbor lists."""

    def __init__(self, max_nodes: int) -> None:
        # Per vertex: parallel arrays (neighbor, weight, batch) in
        # append order; batches are non-decreasing within a vertex.
        self._neighbors: List[List[int]] = [[] for _ in range(max_nodes)]
        self._weights: List[List[float]] = [[] for _ in range(max_nodes)]
        self._batches: List[List[int]] = [[] for _ in range(max_nodes)]
        self._seen: List[Dict[int, int]] = [{} for _ in range(max_nodes)]

    def append(self, src: int, dst: int, weight: float, batch: int) -> bool:
        """Add ``src -> dst`` at ``batch``; False if already present."""
        if dst in self._seen[src]:
            return False
        self._seen[src][dst] = len(self._neighbors[src])
        self._neighbors[src].append(dst)
        self._weights[src].append(weight)
        self._batches[src].append(batch)
        return True

    def cutoff(self, u: int, batch: int) -> int:
        """Entries of ``u`` visible at snapshot ``batch`` (inclusive)."""
        return bisect_right(self._batches[u], batch)

    def neighbors_at(self, u: int, batch: int) -> List[Tuple[int, float]]:
        end = self.cutoff(u, batch)
        return list(zip(self._neighbors[u][:end], self._weights[u][:end]))

    def degree_at(self, u: int, batch: int) -> int:
        return self.cutoff(u, batch)


class SnapshotView:
    """A read-only view of the graph as of one committed snapshot."""

    def __init__(self, store: "SnapshotStore", snapshot: int) -> None:
        self._store = store
        self.snapshot = snapshot

    @property
    def num_nodes(self) -> int:
        return self._store.num_nodes_at(self.snapshot)

    @property
    def num_edges(self) -> int:
        return self._store.num_edges_at(self.snapshot)

    def out_neigh(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._store._out.neighbors_at(u, self.snapshot)

    def in_neigh(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._store._in.neighbors_at(u, self.snapshot)

    def out_degree(self, u: int) -> int:
        return self._store._out.degree_at(u, self.snapshot)

    def in_degree(self, u: int) -> int:
        return self._store._in.degree_at(u, self.snapshot)

    def vertices(self) -> range:
        return range(self.num_nodes)

    def csr_arrays(self, direction: str = "out"):
        """Columnar CSR of this snapshot's visible prefix per vertex.

        Entries are appended in batch order, so slicing each vertex's
        arrays at the snapshot cutoff preserves the exact neighbor
        order ``neighbors_at`` iterates.
        """
        # Imported lazily: repro.compute.pricing imports repro.graph.
        from repro.compute.kernels import csr_from_rows

        adj = self._store._out if direction == "out" else self._store._in
        n = self.num_nodes
        snapshot = self.snapshot
        return csr_from_rows(
            (
                zip(
                    adj._neighbors[u][: adj.cutoff(u, snapshot)],
                    adj._weights[u][: adj.cutoff(u, snapshot)],
                )
                for u in range(n)
            ),
            n,
        )


class SnapshotStore:
    """Append-only multi-snapshot graph store.

    ``commit(batch)`` ingests one edge batch and returns the new
    snapshot id; ``snapshot(t)`` returns a view of the graph as of
    batch ``t``.  All snapshots share one copy of the edge data.
    """

    def __init__(self, max_nodes: int, directed: bool = True) -> None:
        if max_nodes < 1:
            raise StructureError(f"max_nodes must be >= 1, got {max_nodes}")
        self.max_nodes = max_nodes
        self.directed = directed
        self._out = _VersionedAdjacency(max_nodes)
        self._in = _VersionedAdjacency(max_nodes) if directed else self._out
        self._edge_counts: List[int] = []
        self._node_counts: List[int] = []
        self._max_seen = -1
        self._total_edges = 0

    @property
    def num_snapshots(self) -> int:
        return len(self._edge_counts)

    def commit(self, batch: EdgeBatch) -> int:
        """Ingest ``batch`` and seal it as the next snapshot."""
        snapshot = self.num_snapshots
        for i in range(len(batch)):
            u = int(batch.src[i])
            v = int(batch.dst[i])
            w = float(batch.weight[i])
            if not (0 <= u < self.max_nodes and 0 <= v < self.max_nodes):
                raise StructureError(f"edge ({u}, {v}) out of range")
            if self._out.append(u, v, w, snapshot):
                self._total_edges += 1
                if self.directed:
                    self._in.append(v, u, w, snapshot)
                elif u != v:
                    self._out.append(v, u, w, snapshot)
            self._max_seen = max(self._max_seen, u, v)
        self._edge_counts.append(self._total_edges)
        self._node_counts.append(self._max_seen + 1)
        return snapshot

    def snapshot(self, t: int) -> SnapshotView:
        """The graph as of committed batch ``t`` (0-based)."""
        if not 0 <= t < self.num_snapshots:
            raise StructureError(
                f"snapshot {t} out of range [0, {self.num_snapshots})"
            )
        return SnapshotView(self, t)

    def latest(self) -> SnapshotView:
        """The most recent snapshot."""
        if not self.num_snapshots:
            raise StructureError("no snapshots committed yet")
        return self.snapshot(self.num_snapshots - 1)

    def num_edges_at(self, t: int) -> int:
        return self._edge_counts[t]

    def num_nodes_at(self, t: int) -> int:
        return self._node_counts[t]

    def history(self) -> List[Tuple[int, int, int]]:
        """(snapshot, nodes, edges) for every committed batch."""
        return [
            (t, self._node_counts[t], self._edge_counts[t])
            for t in range(self.num_snapshots)
        ]

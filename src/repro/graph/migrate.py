"""Live structure migration for the adaptive driver.

When the auto-tuner (:mod:`repro.streaming.autotune`) decides a
different data structure would serve the remaining stream better, the
graph built so far has to move: the live logical edge set is bulk-
exported from the reference graph into one columnar
:class:`~repro.graph.edge.EdgeBatch` and bulk-ingested into a freshly
constructed target structure through the ordinary
:meth:`~repro.graph.base.GraphDataStructure.update` path -- which means
the ``cingest`` fast path fires when loaded, and the simulated makespan
of the ingest tasks is the migration's price.  That price is charged to
the batch that triggered the switch, so adaptive timings stay honest.

Vertex values never move: algorithms run on the reference graph, so a
migration cannot change algorithm results -- only update latencies and
the per-structure compute *pricing* change.  The CSR compute view is
rebuilt by the caller (``ViewMaintainer.reset()``), taking the proven
full-rebuild path on the next batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph import make_structure
from repro.graph.base import ExecutionContext, GraphDataStructure
from repro.graph.edge import EdgeBatch
from repro.graph.reference import ReferenceGraph
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER


@dataclass
class MigrationResult:
    """One completed structure migration."""

    structure: GraphDataStructure
    target: str
    edges_moved: int
    latency_cycles: float


def export_live_edges(reference: ReferenceGraph) -> EdgeBatch:
    """The live logical edge set as one columnar batch.

    Deterministic vertex-major order (dict insertion order per row).
    Undirected graphs store both orientations in the reference rows, so
    each pair is emitted once, from the row of its smaller endpoint
    (self-loops appear in one row only and are emitted once); directed
    graphs emit every stored entry.
    """
    srcs: list = []
    dsts: list = []
    weights: list = []
    directed = reference.directed
    for u in reference.vertices():
        for v, w in reference.out_items(u).items():
            if not directed and v < u:
                continue
            srcs.append(u)
            dsts.append(v)
            weights.append(w)
    return EdgeBatch(
        src=np.asarray(srcs, dtype=np.int64),
        dst=np.asarray(dsts, dtype=np.int64),
        weight=np.asarray(weights, dtype=np.float64),
    )


def migrate_structure(
    reference: ReferenceGraph,
    target: str,
    ctx: ExecutionContext,
    cost_model=None,
) -> MigrationResult:
    """Move the live graph into a fresh ``target`` structure.

    Exports the reference graph's logical edges and bulk-ingests them
    as a single batch; the ingest schedule's simulated makespan is the
    migration latency the caller charges to the triggering batch.
    """
    with TRACER.span("autotune.migrate") as span:
        structure = make_structure(
            target,
            reference.max_nodes,
            directed=reference.directed,
            cost_model=cost_model if cost_model is not None else ctx.cost_model,
        )
        batch = export_live_edges(reference)
        latency_cycles = 0.0
        if len(batch):
            update = structure.update(batch, ctx)
            latency_cycles = update.latency_cycles
            assert update.edges_inserted == reference.num_edges, (
                f"migration to {target} ingested {update.edges_inserted} "
                f"edges where the reference graph holds "
                f"{reference.num_edges}"
            )
        span.add_cycles(latency_cycles)
    if METRICS.enabled:
        METRICS.counter(
            "autotune_migrated_edges_total",
            "edges moved by live structure migrations",
            target=target,
        ).inc(len(batch))
        METRICS.histogram(
            "autotune_migration_latency_seconds",
            "simulated latency of live structure migrations",
            target=target,
        ).observe(ctx.seconds(latency_cycles))
    return MigrationResult(
        structure=structure,
        target=target,
        edges_moved=len(batch),
        latency_cycles=latency_cycles,
    )

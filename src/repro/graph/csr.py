"""Compressed Sparse Row snapshots.

Static graph analytics builds the whole graph once in CSR (Section
II-A); streaming systems avoid CSR because rebuilding it per batch
would dominate the update latency.  This module provides CSR both as
the static-baseline substrate (for the static-vs-streaming comparisons
in the examples) and as a fast frozen snapshot for verifying the
streaming structures.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import StructureError
from repro.graph.base import GraphDataStructure


class CSRGraph:
    """An immutable CSR adjacency (one direction)."""

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray) -> None:
        if indptr.ndim != 1 or indptr[0] != 0:
            raise StructureError("indptr must be 1-D and start at 0")
        if len(indices) != len(weights) or indptr[-1] != len(indices):
            raise StructureError("indices/weights inconsistent with indptr")
        self.indptr = indptr
        self.indices = indices
        self.weights = weights

    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def neighbors(self, u: int) -> Sequence[Tuple[int, float]]:
        start, stop = int(self.indptr[u]), int(self.indptr[u + 1])
        return list(zip(self.indices[start:stop].tolist(), self.weights[start:stop].tolist()))

    def degree(self, u: int) -> int:
        return int(self.indptr[u + 1] - self.indptr[u])

    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: Sequence[Tuple[int, int, float]]
    ) -> "CSRGraph":
        """Build CSR from (src, dst, weight) triples (one direction)."""
        degree = np.zeros(num_nodes + 1, dtype=np.int64)
        for u, _, _ in edges:
            degree[u + 1] += 1
        indptr = np.cumsum(degree)
        indices = np.zeros(len(edges), dtype=np.int64)
        weights = np.zeros(len(edges), dtype=np.float64)
        cursor = indptr[:-1].copy()
        for u, v, w in edges:
            slot = cursor[u]
            indices[slot] = v
            weights[slot] = w
            cursor[u] += 1
        return cls(indptr=indptr, indices=indices, weights=weights)


def csr_build_cost(num_nodes: int, num_edges: int, cost, directed: bool = True) -> float:
    """Simulated cycles to build CSR from scratch (GAP-style).

    The standard two-pass counting build: one pass over the edges to
    histogram degrees, a prefix sum over the vertices, and a second
    pass placing each edge.  Directed graphs build both the out- and
    in-CSR.  This is the cost static graph analytics treats as a
    one-time overhead -- and the cost a streaming system would pay on
    *every batch* if it borrowed the CSR layout (paper Section II-C).
    """
    directions = 2 if directed else 1
    per_direction = (
        num_edges * (cost.probe_element + cost.insert_slot)  # count + place
        + num_nodes * cost.probe_element  # prefix sum
    )
    return directions * per_direction


class StaticRebuildBaseline:
    """The anti-pattern baseline: rebuild CSR on every batch.

    Maintains the edge list and, per batch, pays the full CSR rebuild
    cost (perfectly parallelized across threads, which is generous to
    the baseline).  Used to quantify why streaming systems need
    dedicated data structures rather than the static-analytics layout.
    """

    name = "CSR-rebuild"

    def __init__(self, max_nodes: int, directed: bool = True) -> None:
        self.max_nodes = max_nodes
        self.directed = directed
        self._edges: List[Tuple[int, int, float]] = []
        self._seen = set()
        self._max_node = -1
        self.csr: CSRGraph = CSRGraph.from_edges(1, [])

    @property
    def num_nodes(self) -> int:
        return self._max_node + 1

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def update(self, batch, ctx) -> float:
        """Ingest a batch and rebuild; returns simulated seconds."""
        for i in range(len(batch)):
            u = int(batch.src[i])
            v = int(batch.dst[i])
            key = (u, v)
            if key not in self._seen:
                self._seen.add(key)
                self._edges.append((u, v, float(batch.weight[i])))
            self._max_node = max(self._max_node, u, v)
        self.csr = CSRGraph.from_edges(max(self.num_nodes, 1), self._edges)
        cycles = csr_build_cost(
            self.num_nodes, len(self._edges), ctx.cost_model, self.directed
        )
        return ctx.machine.cycles_to_seconds(cycles / ctx.threads)


def snapshot_out(structure: GraphDataStructure) -> CSRGraph:
    """Freeze a streaming structure's out-adjacency into CSR."""
    edges: List[Tuple[int, int, float]] = []
    n = structure.num_nodes
    for u in range(n):
        for v, w in structure.out_neigh(u):
            edges.append((u, v, w))
    return CSRGraph.from_edges(max(n, 1), edges)


def snapshot_in(structure: GraphDataStructure) -> CSRGraph:
    """Freeze a streaming structure's in-adjacency into CSR."""
    edges: List[Tuple[int, int, float]] = []
    n = structure.num_nodes
    for u in range(n):
        for v, w in structure.in_neigh(u):
            edges.append((u, v, w))
    return CSRGraph.from_edges(max(n, 1), edges)

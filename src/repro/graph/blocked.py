"""BA: Hornet-style blocked adjacency (a post-paper structure).

The paper positions SAGA-Bench as a living benchmark that will absorb
future data structures (Section III); Hornet (Busato et al., HPEC'18)
is one it cites.  This module adds a simplified Hornet-like structure:

- every vertex's neighbors live in **one contiguous segment** drawn
  from power-of-two *block pools* (capacities 4, 8, 16, ...);
- when a segment fills, the vertex **relocates** to a segment of twice
  the capacity (one memcpy, amortized O(1) per insert) and the old
  segment returns to its pool for reuse;
- duplicate detection uses a per-vertex index (charged as a segment
  scan, like the adjacency lists);
- multithreading is chunked and lockless, like AC/DAH.

Compared with the paper's four structures it trades Stinger's
fragmented blocks for Hornet's contiguous-but-relocating segments:
traversal is as cheap as AS (contiguous), updates avoid AS's locks,
and memory waste is bounded by the power-of-two rounding.

Registered as ``"BA"`` in :data:`repro.graph.STRUCTURES`; the paper
reproduction pipelines keep using the original four by default.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StructureError
from repro.graph.adjacency_chunked import chunk_overhead_array
from repro.graph.base import ExecutionContext, GraphDataStructure
from repro.graph.nativestore import make_blocked_store, native_vec_ingest
from repro.graph.vectorstore import bulk_ingest, row_layout
from repro.sim.memory import AddressSpace, Region
from repro.sim.scheduler import ChunkedScheduler, ScheduleResult, Task, TaskArray

ENTRY_BYTES = 8
MIN_SEGMENT = 4

#: Default chunk count; matches the paper's 64 hardware threads.
DEFAULT_CHUNKS = 64


class _SegmentPool:
    """A free list of equal-capacity segments (one Hornet block pool)."""

    def __init__(self, capacity: int, space: AddressSpace, label: str) -> None:
        self.capacity = capacity
        self.space = space
        self.label = label
        self._free: List[Region] = []
        self._alloc_bytes = capacity * ENTRY_BYTES
        self._alloc_label = f"{label}.seg{capacity}"
        self.allocations = 0
        self.reuses = 0

    def acquire(self) -> Region:
        if self._free:
            self.reuses += 1
            return self._free.pop()
        self.allocations += 1
        return self.space.alloc(self._alloc_bytes, self._alloc_label)

    def release(self, region: Region) -> None:
        self._free.append(region)


class _BlockedStore:
    """One direction of the blocked adjacency."""

    def __init__(self, max_nodes: int, space: AddressSpace, label: str) -> None:
        self.max_nodes = max_nodes
        self.space = space
        self.label = label
        self._neighbors: List[List[Tuple[int, float]]] = [[] for _ in range(max_nodes)]
        self._index: List[Dict[int, int]] = [{} for _ in range(max_nodes)]
        self._segment: List[Optional[Region]] = [None] * max_nodes
        self._capacity: List[int] = [0] * max_nodes
        self._pools: Dict[int, _SegmentPool] = {}
        self._header = space.alloc(max_nodes * 16, f"{label}.headers")

    def _pool(self, capacity: int) -> _SegmentPool:
        pool = self._pools.get(capacity)
        if pool is None:
            pool = _SegmentPool(capacity, self.space, self.label)
            self._pools[capacity] = pool
        return pool

    def insert(self, src: int, dst: int, weight: float, recorder):
        """Search-then-insert; returns (scanned, inserted, relocated)."""
        vec = self._neighbors[src]
        index = self._index[src]
        tracing = recorder.enabled
        if tracing:
            recorder.access(self._header.element(src, 16))
        existing = index.get(dst)
        if existing is not None:
            scanned = existing + 1
            if tracing and self._segment[src] is not None:
                recorder.access_range(self._segment[src].base, scanned, ENTRY_BYTES)
            return scanned, False, 0
        scanned = len(vec)
        if tracing and self._segment[src] is not None:
            recorder.access_range(self._segment[src].base, scanned, ENTRY_BYTES)
        relocated = 0
        if len(vec) == self._capacity[src]:
            relocated = self._relocate(src)
        index[dst] = len(vec)
        vec.append((dst, weight))
        if tracing:
            recorder.access(
                self._segment[src].element(len(vec) - 1, ENTRY_BYTES), write=True
            )
        return scanned, True, relocated

    def _relocate(self, src: int) -> int:
        """Move ``src`` to a doubled segment; returns entries copied."""
        old_capacity = self._capacity[src]
        new_capacity = old_capacity * 2 if old_capacity else MIN_SEGMENT
        old_segment = self._segment[src]
        self._segment[src] = self._pool(new_capacity).acquire()
        self._capacity[src] = new_capacity
        if old_segment is not None:
            self._pool(old_capacity).release(old_segment)
        return len(self._neighbors[src])

    def remove(self, src: int, dst: int, recorder):
        """Swap-remove; returns (scanned, removed)."""
        vec = self._neighbors[src]
        index = self._index[src]
        position = index.get(dst)
        if position is None:
            return len(vec), False
        last = len(vec) - 1
        if position != last:
            vec[position] = vec[last]
            index[vec[position][0]] = position
        vec.pop()
        del index[dst]
        return position + 1, True

    def _bulk_parts(self):
        """(neighbors, index, capacity, grow) for :func:`bulk_ingest`."""
        return self._neighbors, self._index, self._capacity, self._relocate

    def neighbors(self, u: int) -> List[Tuple[int, float]]:
        return self._neighbors[u]

    def degree(self, u: int) -> int:
        return len(self._neighbors[u])

    def trace_traversal(self, u: int, recorder) -> None:
        recorder.access(self._header.element(u, 16))
        segment = self._segment[u]
        if segment is not None:
            recorder.access_range(segment.base, len(self._neighbors[u]), ENTRY_BYTES)

    def pool_stats(self) -> Dict[int, Tuple[int, int]]:
        """{capacity: (allocations, reuses)} across all pools."""
        return {
            capacity: (pool.allocations, pool.reuses)
            for capacity, pool in sorted(self._pools.items())
        }


class _BlockedEmitter:
    """Columnar task emitter for BA: segment scans plus relocations."""

    __slots__ = (
        "_out",
        "_in",
        "_cost",
        "_chunks",
        "_delete",
        "_directed",
        "_layout",
        "scanned",
        "hit",
        "relocated",
        "chunk",
    )

    def __init__(self, structure: "BlockedAdjacency", delete: bool) -> None:
        self._out = structure._out
        self._in = structure._in
        self._cost = structure.cost
        self._chunks = structure.chunks
        self._delete = delete
        self._directed = structure.directed
        self._layout = None  # (src, dst) of a fused batch, for finish()
        self.scanned: List[int] = []
        self.hit: List[bool] = []
        self.relocated: List[int] = []
        self.chunk: List[int] = []

    @property
    def rows(self) -> int:
        return len(self.scanned)

    def ingest_batch(self, batch) -> int:
        """Fused untraced ingest; chunk ids are rebuilt in ``finish``.

        BA prices deletions as a flat clear+backfill, so the moved
        count is not recorded (``record_moved=False``).
        """
        self._layout = (batch.src, batch.dst)
        if getattr(self._out, "native", False):
            positive, self.scanned, self.hit, self.relocated = native_vec_ingest(
                self._out,
                self._in if self._directed else self._out,
                batch,
                self._directed,
                self._delete,
                record_moved=False,
            )
            return positive
        return bulk_ingest(
            self._out,
            self._in if self._directed else self._out,
            batch.src.tolist(),
            batch.dst.tolist(),
            None if self._delete else batch.weight.tolist(),
            self._directed,
            self._delete,
            self.scanned,
            self.hit,
            self.relocated,
            record_moved=False,
        )

    def insert_out(self, src, dst, weight, recorder) -> bool:
        return self._insert(self._out, src, dst, weight, recorder)

    def insert_in(self, src, dst, weight, recorder) -> bool:
        return self._insert(self._in, src, dst, weight, recorder)

    def _insert(self, store, src, dst, weight, recorder) -> bool:
        scanned, inserted, relocated = store.insert(src, dst, weight, recorder)
        self.scanned.append(scanned)
        self.hit.append(inserted)
        self.relocated.append(relocated)
        self.chunk.append(src % self._chunks)
        return inserted

    def delete_out(self, src, dst, recorder) -> bool:
        return self._remove(self._out, src, dst, recorder)

    def delete_in(self, src, dst, recorder) -> bool:
        return self._remove(self._in, src, dst, recorder)

    def _remove(self, store, src, dst, recorder) -> bool:
        scanned, removed = store.remove(src, dst, recorder)
        self.scanned.append(scanned)
        self.hit.append(removed)
        self.relocated.append(0)
        self.chunk.append(src % self._chunks)
        return removed

    def finish(self, batch_size: int) -> TaskArray:
        cost = self._cost
        work = cost.probe_element * np.asarray(self.scanned, dtype=np.float64)
        hit = np.asarray(self.hit, dtype=bool)
        if self._delete:
            work[hit] += 2 * cost.insert_slot  # clear + backfill
        else:
            work[hit] += cost.insert_slot
            # Relocation copies the whole segment (Hornet's memcpy).
            relocated = np.asarray(self.relocated, dtype=np.float64)
            work[hit] += cost.vector_grow_per_element * relocated[hit]
        if self._layout is not None:
            row_src, _ = row_layout(*self._layout, self._directed)
            chunk = row_src % self._chunks
        else:
            chunk = np.asarray(self.chunk, dtype=np.int64)
        edges = TaskArray.build(
            self.rows,
            unlocked_work=work,
            chunk=chunk,
        )
        return TaskArray.concatenate(
            [edges, chunk_overhead_array(cost, batch_size, self._chunks)]
        )


class BlockedAdjacency(GraphDataStructure):
    """Hornet-like blocked adjacency ("BA")."""

    name = "BA"

    def __init__(
        self,
        max_nodes,
        directed=True,
        cost_model=None,
        address_space=None,
        chunks: int = DEFAULT_CHUNKS,
    ):
        from repro.sim.cost_model import DEFAULT_COST_MODEL

        super().__init__(
            max_nodes,
            directed=directed,
            cost_model=cost_model or DEFAULT_COST_MODEL,
            address_space=address_space,
        )
        if chunks < 1:
            raise StructureError(f"chunks must be >= 1, got {chunks}")
        self.chunks = chunks
        self._out = make_blocked_store(max_nodes, self.space, "BA.out")
        self._in = (
            make_blocked_store(max_nodes, self.space, "BA.in")
            if directed
            else None
        )

    def chunk_of(self, u: int) -> int:
        return u % self.chunks

    # -- mutation ------------------------------------------------------

    def _make_emitter(self, delete: bool) -> _BlockedEmitter:
        return _BlockedEmitter(self, delete)

    def _insert_out(self, src, dst, weight, recorder):
        return self._blocked_insert(self._out, src, dst, weight, recorder)

    def _insert_in(self, src, dst, weight, recorder):
        return self._blocked_insert(self._in, src, dst, weight, recorder)

    def _blocked_insert(self, store, src, dst, weight, recorder) -> Tuple[Task, bool]:
        scanned, inserted, relocated = store.insert(src, dst, weight, recorder)
        cost = self.cost
        work = cost.probe_element * scanned
        if inserted:
            work += cost.insert_slot
            # Relocation copies the whole segment (Hornet's memcpy).
            work += cost.vector_grow_per_element * relocated
        return (
            Task(unlocked_work=work, chunk=self.chunk_of(src)),
            inserted,
        )

    def _delete_out(self, src, dst, recorder):
        return self._blocked_delete(self._out, src, dst, recorder)

    def _delete_in(self, src, dst, recorder):
        return self._blocked_delete(self._in, src, dst, recorder)

    def _blocked_delete(self, store, src, dst, recorder) -> Tuple[Task, bool]:
        scanned, removed = store.remove(src, dst, recorder)
        cost = self.cost
        work = cost.probe_element * scanned
        if removed:
            work += 2 * cost.insert_slot
        return (
            Task(unlocked_work=work, chunk=self.chunk_of(src)),
            removed,
        )

    def _batch_overhead_tasks(self, batch_size: int) -> List[Task]:
        directions = 2
        route = self.cost.route_edge * batch_size * directions
        return [
            Task(unlocked_work=route, chunk=c, overhead=True)
            for c in range(self.chunks)
        ]

    def _schedule(self, tasks: List[Task], ctx: ExecutionContext) -> ScheduleResult:
        scheduler = ChunkedScheduler(
            threads=ctx.threads,
            physical_cores=ctx.machine.physical_cores,
            cost_model=ctx.cost_model,
        )
        return scheduler.run(tasks)

    # -- queries -------------------------------------------------------

    def out_neigh(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._out.neighbors(u)

    def _in_neigh_directed(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._in.neighbors(u)

    def out_degree(self, u: int) -> int:
        return self._out.degree(u)

    def in_degree(self, u: int) -> int:
        if not self.directed:
            return self._out.degree(u)
        return self._in.degree(u)

    # -- compute-phase costs -------------------------------------------

    def out_traversal_cost(self, u: int) -> float:
        return self.cost.probe_element * (1 + self._out.degree(u))

    def _in_traversal_cost_directed(self, u: int) -> float:
        return self.cost.probe_element * (1 + self._in.degree(u))

    @staticmethod
    def vector_traversal_cost(degrees, cost):
        """Contiguous segments traverse like plain vectors."""
        return cost.probe_element * (1.0 + degrees)

    def _trace_traversal(self, u: int, recorder, out: bool) -> None:
        store = self._out if out else self._in
        store.trace_traversal(u, recorder)

"""AC: adjacency list with chunked-style multithreading (Section III-A2).

The adjacency list is partitioned into chunks, each owning the
neighbor vectors of a subset of source vertices (``vertex % chunks``
here).  A chunk is single-threaded, so intra-chunk updates need no
locks; parallelism comes from running chunks on different threads.
The price of the lockless design is routing: every chunk scans the
whole incoming batch to pick out its own edges, a fixed per-batch
overhead that makes AC slower than AS on short-tailed graphs but lets
it sail past AS's lock convoy on heavy-tailed ones (Section V-B).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import StructureError
from repro.graph.adjacency_shared import _price_vector_ops
from repro.graph.base import ExecutionContext, GraphDataStructure
from repro.graph.nativestore import make_vector_store, native_vec_ingest
from repro.graph.vectorstore import bulk_ingest, row_layout
from repro.sim.scheduler import ChunkedScheduler, ScheduleResult, Task, TaskArray

#: Default chunk count; matches the paper's 64 hardware threads.
DEFAULT_CHUNKS = 64


def chunk_overhead_array(cost, batch_size: int, chunks: int) -> TaskArray:
    """The per-batch routing overhead of chunked structures, columnar.

    Mirrors ``_batch_overhead_tasks``: every chunk scans the whole
    batch once per store direction to find the edges it owns.
    """
    directions = 2  # out+in stores (directed) or both orientations
    route = cost.route_edge * batch_size * directions
    return TaskArray.build(
        chunks,
        unlocked_work=route,
        chunk=np.arange(chunks, dtype=np.int64),
        overhead=True,
    )


class _ChunkedEmitter:
    """Columnar task emitter for AC: lockless chunk-pinned scans."""

    __slots__ = (
        "_out",
        "_in",
        "_cost",
        "_chunks",
        "_delete",
        "_directed",
        "_layout",
        "scanned",
        "hit",
        "aux",
        "chunk",
    )

    def __init__(self, structure: "AdjacencyListChunked", delete: bool) -> None:
        self._out = structure._out
        self._in = structure._in
        self._cost = structure.cost
        self._chunks = structure.chunks
        self._delete = delete
        self._directed = structure.directed
        self._layout = None  # (src, dst) of a fused batch, for finish()
        self.scanned: List[int] = []
        self.hit: List[bool] = []
        self.aux: List[int] = []  # grew_from (insert) / moved (delete)
        self.chunk: List[int] = []

    @property
    def rows(self) -> int:
        return len(self.scanned)

    def ingest_batch(self, batch) -> int:
        """Fused untraced ingest; chunk ids are rebuilt in ``finish``."""
        self._layout = (batch.src, batch.dst)
        if getattr(self._out, "native", False):
            positive, self.scanned, self.hit, self.aux = native_vec_ingest(
                self._out,
                self._in if self._directed else self._out,
                batch,
                self._directed,
                self._delete,
            )
            return positive
        return bulk_ingest(
            self._out,
            self._in if self._directed else self._out,
            batch.src.tolist(),
            batch.dst.tolist(),
            None if self._delete else batch.weight.tolist(),
            self._directed,
            self._delete,
            self.scanned,
            self.hit,
            self.aux,
        )

    def insert_out(self, src, dst, weight, recorder) -> bool:
        return self._insert(self._out, src, dst, weight, recorder)

    def insert_in(self, src, dst, weight, recorder) -> bool:
        return self._insert(self._in, src, dst, weight, recorder)

    def _insert(self, store, src, dst, weight, recorder) -> bool:
        outcome = store.insert(src, dst, weight, recorder)
        self.scanned.append(outcome.scanned)
        self.hit.append(outcome.inserted)
        self.aux.append(outcome.grew_from)
        self.chunk.append(src % self._chunks)
        return outcome.inserted

    def delete_out(self, src, dst, recorder) -> bool:
        return self._remove(self._out, src, dst, recorder)

    def delete_in(self, src, dst, recorder) -> bool:
        return self._remove(self._in, src, dst, recorder)

    def _remove(self, store, src, dst, recorder) -> bool:
        outcome = store.remove(src, dst, recorder)
        self.scanned.append(outcome.scanned)
        self.hit.append(outcome.removed)
        self.aux.append(outcome.moved)
        self.chunk.append(src % self._chunks)
        return outcome.removed

    def finish(self, batch_size: int) -> TaskArray:
        if self._layout is not None:
            row_src, _ = row_layout(*self._layout, self._directed)
            chunk = row_src % self._chunks
        else:
            chunk = np.asarray(self.chunk, dtype=np.int64)
        edges = TaskArray.build(
            self.rows,
            unlocked_work=_price_vector_ops(
                self._cost, self.scanned, self.hit, self.aux, self._delete
            ),
            chunk=chunk,
        )
        return TaskArray.concatenate(
            [edges, chunk_overhead_array(self._cost, batch_size, self._chunks)]
        )


class AdjacencyListChunked(GraphDataStructure):
    """The paper's AC data structure."""

    name = "AC"

    def __init__(
        self,
        max_nodes,
        directed=True,
        cost_model=None,
        address_space=None,
        chunks: int = DEFAULT_CHUNKS,
    ):
        from repro.sim.cost_model import DEFAULT_COST_MODEL

        super().__init__(
            max_nodes,
            directed=directed,
            cost_model=cost_model or DEFAULT_COST_MODEL,
            address_space=address_space,
        )
        if chunks < 1:
            raise StructureError(f"chunks must be >= 1, got {chunks}")
        self.chunks = chunks
        self._out = make_vector_store(max_nodes, self.space, "AC.out", "AC")
        self._in = (
            make_vector_store(max_nodes, self.space, "AC.in", "AC")
            if directed
            else None
        )

    def chunk_of(self, u: int) -> int:
        """Chunk owning vertex ``u``'s neighbor vector."""
        return u % self.chunks

    # -- mutation ------------------------------------------------------

    def _make_emitter(self, delete: bool) -> _ChunkedEmitter:
        return _ChunkedEmitter(self, delete)

    def _insert_out(self, src, dst, weight, recorder):
        return self._chunked_insert(self._out, src, dst, weight, recorder)

    def _insert_in(self, src, dst, weight, recorder):
        return self._chunked_insert(self._in, src, dst, weight, recorder)

    def _chunked_insert(self, store, src, dst, weight, recorder) -> Tuple[Task, bool]:
        outcome = store.insert(src, dst, weight, recorder)
        cost = self.cost
        work = cost.probe_element * outcome.scanned
        if outcome.inserted:
            work += cost.insert_slot
            work += cost.vector_grow_per_element * outcome.grew_from
        return (
            Task(unlocked_work=work, chunk=self.chunk_of(src)),
            outcome.inserted,
        )

    def _delete_out(self, src, dst, recorder):
        return self._chunked_delete(self._out, src, dst, recorder)

    def _delete_in(self, src, dst, recorder):
        return self._chunked_delete(self._in, src, dst, recorder)

    def _chunked_delete(self, store, src, dst, recorder) -> Tuple[Task, bool]:
        outcome = store.remove(src, dst, recorder)
        cost = self.cost
        work = cost.probe_element * outcome.scanned
        if outcome.removed:
            work += cost.insert_slot * (1 + outcome.moved)
        return (
            Task(unlocked_work=work, chunk=self.chunk_of(src)),
            outcome.removed,
        )

    def _batch_overhead_tasks(self, batch_size: int) -> List[Task]:
        # Every chunk scans the whole batch once per store direction to
        # find the edges it owns.
        directions = 2  # out+in stores (directed) or both orientations
        route = self.cost.route_edge * batch_size * directions
        return [
            Task(unlocked_work=route, chunk=c, overhead=True)
            for c in range(self.chunks)
        ]

    def _schedule(self, tasks: List[Task], ctx: ExecutionContext) -> ScheduleResult:
        scheduler = ChunkedScheduler(
            threads=ctx.threads,
            physical_cores=ctx.machine.physical_cores,
            cost_model=ctx.cost_model,
        )
        return scheduler.run(tasks)

    # -- queries -------------------------------------------------------

    def out_neigh(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._out.neighbors(u)

    def _in_neigh_directed(self, u: int) -> Sequence[Tuple[int, float]]:
        return self._in.neighbors(u)

    def out_degree(self, u: int) -> int:
        return self._out.degree(u)

    def in_degree(self, u: int) -> int:
        if not self.directed:
            return self._out.degree(u)
        return self._in.degree(u)

    # -- compute-phase costs -------------------------------------------

    def out_traversal_cost(self, u: int) -> float:
        cost = self.cost
        return cost.probe_element * (1 + self._out.degree(u))

    def _in_traversal_cost_directed(self, u: int) -> float:
        cost = self.cost
        return cost.probe_element * (1 + self._in.degree(u))

    @staticmethod
    def vector_traversal_cost(degrees, cost):
        """Vectorized :meth:`out_traversal_cost` over a degree array."""
        return cost.probe_element * (1.0 + degrees)

    def _trace_traversal(self, u: int, recorder, out: bool) -> None:
        store = self._out if out else self._in
        store.trace_traversal(u, recorder)

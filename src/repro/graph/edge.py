"""Edge and edge-batch types.

A streaming graph's input is a stream of weighted edges, consumed in
fixed-size batches (Section II-A of the paper).  :class:`EdgeBatch`
stores one batch as parallel numpy arrays; it is the unit handed to
:meth:`repro.graph.base.GraphDataStructure.update`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError


class Edge(NamedTuple):
    """A single weighted directed edge ``src -> dst``."""

    src: int
    dst: int
    weight: float = 1.0


@dataclass(frozen=True)
class EdgeBatch:
    """A batch of edges as parallel arrays (src, dst, weight)."""

    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.src) == len(self.dst) == len(self.weight)):
            raise DatasetError("edge batch arrays must have equal length")

    @classmethod
    def from_edges(cls, edges: Sequence[Tuple[int, int, float]]) -> "EdgeBatch":
        """Build a batch from ``(src, dst, weight)`` tuples.

        Two-tuples ``(src, dst)`` are accepted with an implied weight
        of 1.0.
        """
        srcs, dsts, weights = [], [], []
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                w = 1.0
            else:
                u, v, w = edge
            srcs.append(u)
            dsts.append(v)
            weights.append(w)
        return cls(
            src=np.asarray(srcs, dtype=np.int64),
            dst=np.asarray(dsts, dtype=np.int64),
            weight=np.asarray(weights, dtype=np.float64),
        )

    @classmethod
    def from_mmap(cls, directory, mode: str = "r") -> "EdgeBatch":
        """Open a memory-mapped edge-stream directory zero-copy.

        The arrays are ``np.memmap`` views over the on-disk columns
        written by :mod:`repro.datasets.mmapio`; nothing is read until
        a batch slice touches its pages.
        """
        # Local import: mmapio imports EdgeBatch at module level.
        from repro.datasets.mmapio import open_edge_mmap

        return open_edge_mmap(directory, mode=mode)

    def to_mmap(self, directory, source=None):
        """Persist this batch as a memory-mapped edge-stream directory."""
        from repro.datasets.mmapio import write_edge_mmap

        return write_edge_mmap(directory, self, source=source)

    @classmethod
    def empty(cls) -> "EdgeBatch":
        return cls(
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
            weight=np.empty(0, dtype=np.float64),
        )

    def __len__(self) -> int:
        return len(self.src)

    def __iter__(self) -> Iterator[Edge]:
        for i in range(len(self.src)):
            yield Edge(int(self.src[i]), int(self.dst[i]), float(self.weight[i]))

    @property
    def max_vertex(self) -> int:
        """Largest vertex id referenced by the batch (-1 if empty)."""
        if len(self) == 0:
            return -1
        return int(max(self.src.max(), self.dst.max()))

    def slice(self, start: int, stop: int) -> "EdgeBatch":
        """The sub-batch ``[start:stop)``."""
        return EdgeBatch(
            src=self.src[start:stop],
            dst=self.dst[start:stop],
            weight=self.weight[start:stop],
        )

    def concat(self, other: "EdgeBatch") -> "EdgeBatch":
        """This batch followed by ``other``."""
        return EdgeBatch(
            src=np.concatenate([self.src, other.src]),
            dst=np.concatenate([self.dst, other.dst]),
            weight=np.concatenate([self.weight, other.weight]),
        )

    def shuffled(self, seed: int) -> "EdgeBatch":
        """A random permutation of this batch (paper Section IV-B)."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        return EdgeBatch(
            src=self.src[order], dst=self.dst[order], weight=self.weight[order]
        )

    def max_in_out_degree(self) -> Tuple[int, int]:
        """(max in-degree, max out-degree) of this batch alone.

        Used for Table IV's per-batch degree columns: parallel edges
        within the batch count once, matching unique ingestion.
        """
        if len(self) == 0:
            return (0, 0)
        unique = np.unique(np.stack([self.src, self.dst], axis=1), axis=0)
        out_deg = np.bincount(unique[:, 0])
        in_deg = np.bincount(unique[:, 1])
        return int(in_deg.max()), int(out_deg.max())

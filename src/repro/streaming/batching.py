"""Stream preparation: shuffling and batch slicing (Section IV-B).

The paper randomly shuffles each input file to break any ordering --
streaming edges do not arrive in a predefined order -- then reads it in
fixed-size batches.  Repetitions reshuffle with different seeds, which
is where the run-to-run variation behind the confidence intervals
comes from.
"""

from __future__ import annotations

from typing import List

from repro.errors import DatasetError
from repro.graph.edge import EdgeBatch


def make_batches(
    edges: EdgeBatch,
    batch_size: int,
    shuffle_seed: int = 0,
    shuffle: bool = True,
) -> List[EdgeBatch]:
    """Shuffle ``edges`` and slice the stream into batches.

    The final batch may be smaller than ``batch_size``; it is dropped
    only if empty.
    """
    if batch_size < 1:
        raise DatasetError(f"batch_size must be >= 1, got {batch_size}")
    stream = edges.shuffled(shuffle_seed) if shuffle else edges
    batches = [
        stream.slice(start, min(start + batch_size, len(stream)))
        for start in range(0, len(stream), batch_size)
    ]
    return [batch for batch in batches if len(batch)]

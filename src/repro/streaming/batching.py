"""Stream preparation: shuffling and batch slicing (Section IV-B).

The paper randomly shuffles each input file to break any ordering --
streaming edges do not arrive in a predefined order -- then reads it in
fixed-size batches.  Repetitions reshuffle with different seeds, which
is where the run-to-run variation behind the confidence intervals
comes from.

:func:`make_batches` returns a lazy :class:`BatchView` rather than a
list of copies: the shuffle is a permutation *index* and each batch is
gathered from the backing arrays only when accessed.  Peak memory is
one batch (plus the 8-byte-per-edge permutation), not 2x the stream --
which is what lets a memory-mapped stream be driven without ever
materializing it.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.graph.edge import EdgeBatch


def _validate_schedule(schedule: Sequence[int]) -> Tuple[int, ...]:
    sizes = tuple(int(size) for size in schedule)
    if not sizes:
        raise DatasetError("batch schedule must not be empty")
    for size in sizes:
        if size < 1:
            raise DatasetError(f"batch schedule sizes must be >= 1, got {size}")
    return sizes


def _schedule_offsets(num_edges: int, schedule: Tuple[int, ...]) -> np.ndarray:
    """Batch boundary offsets [0, ..., num_edges] under a cycled schedule."""
    offsets = [0]
    index = 0
    while offsets[-1] < num_edges:
        offsets.append(
            min(offsets[-1] + schedule[index % len(schedule)], num_edges)
        )
        index += 1
    return np.asarray(offsets, dtype=np.int64)


def batch_count(
    num_edges: int,
    batch_size: int,
    schedule: Optional[Sequence[int]] = None,
) -> int:
    """How many batches a stream splits into, without building the view.

    With ``schedule`` (a cycled sequence of per-batch sizes, e.g. the
    regime-shifting streams of the auto-tuner bench), the count follows
    the schedule; otherwise it is the usual ceil division.
    """
    if schedule is not None:
        return len(_schedule_offsets(num_edges, _validate_schedule(schedule))) - 1
    return (num_edges + batch_size - 1) // batch_size


class BatchView:
    """A lazy sequence of the batches of one (shuffled) stream.

    Batch ``i`` is ``edges[order][i*b : (i+1)*b]``, produced on access
    as a single fancy-index gather (``src[order[i*b:(i+1)*b]]``) --
    bit-identical to the eager shuffle-then-slice it replaced.  With
    ``order=None`` (unshuffled) batches are zero-copy slices of the
    backing arrays, memory-mapped or not.

    ``schedule`` overrides the fixed ``batch_size`` with a cycled
    sequence of per-batch sizes (batch ``i`` holds
    ``schedule[i % len(schedule)]`` edges, the final batch truncated):
    the regime-shifting streams the adaptive driver is benchmarked on.

    Supports ``len``, indexing (negative too), iteration, and equality
    with lists/tuples of batches so existing call sites and tests that
    treated the result as a list keep working.
    """

    def __init__(
        self,
        edges: EdgeBatch,
        batch_size: int,
        order: Optional[np.ndarray] = None,
        schedule: Optional[Sequence[int]] = None,
    ) -> None:
        if batch_size < 1:
            raise DatasetError(f"batch_size must be >= 1, got {batch_size}")
        if order is not None and len(order) != len(edges):
            raise DatasetError(
                f"permutation length {len(order)} != stream length {len(edges)}"
            )
        self.edges = edges
        self.batch_size = batch_size
        self.order = order
        self.schedule = None
        self._offsets = None
        if schedule is not None:
            self.schedule = _validate_schedule(schedule)
            self._offsets = _schedule_offsets(len(edges), self.schedule)
            self._count = len(self._offsets) - 1
        else:
            self._count = (len(edges) + batch_size - 1) // batch_size

    def __len__(self) -> int:
        return self._count

    def size_of(self, index: int) -> int:
        """Length of batch ``index`` without gathering its edges."""
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(f"batch index {index} out of range")
        if self._offsets is not None:
            return int(self._offsets[index + 1] - self._offsets[index])
        start = index * self.batch_size
        return min(start + self.batch_size, len(self.edges)) - start

    def __getitem__(self, index: int) -> EdgeBatch:
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(f"batch index {index} out of range")
        if self._offsets is not None:
            start = int(self._offsets[index])
            stop = int(self._offsets[index + 1])
        else:
            start = index * self.batch_size
            stop = min(start + self.batch_size, len(self.edges))
        if self.order is None:
            return self.edges.slice(start, stop)
        take = self.order[start:stop]
        return EdgeBatch(
            src=np.asarray(self.edges.src[take]),
            dst=np.asarray(self.edges.dst[take]),
            weight=np.asarray(self.edges.weight[take]),
        )

    def __iter__(self) -> Iterator[EdgeBatch]:
        for index in range(self._count):
            yield self[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, tuple)):
            if len(other) != self._count:
                return False
            return all(
                len(mine) == len(theirs)
                and np.array_equal(mine.src, theirs.src)
                and np.array_equal(mine.dst, theirs.dst)
                and np.array_equal(mine.weight, theirs.weight)
                for mine, theirs in zip(self, other)
            )
        if isinstance(other, BatchView):
            return self == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        kind = "shuffled" if self.order is not None else "ordered"
        width = (
            f"schedule{self.schedule}" if self.schedule is not None
            else str(self.batch_size)
        )
        return (
            f"BatchView({self._count} x {width} {kind} batches "
            f"over {len(self.edges)} edges)"
        )


def make_batches(
    edges: EdgeBatch,
    batch_size: int,
    shuffle_seed: int = 0,
    shuffle: bool = True,
    schedule: Optional[Sequence[int]] = None,
) -> BatchView:
    """Shuffle ``edges`` and slice the stream into batches, lazily.

    The final batch may be smaller than ``batch_size``; empty streams
    produce an empty view.  Batch contents are bit-identical to the
    eager ``edges.shuffled(seed)`` + ``slice`` pipeline this replaces:
    the same ``default_rng(seed).permutation`` order, applied per batch.
    ``schedule`` cycles per-batch sizes instead of the fixed
    ``batch_size`` (the shuffle order is unaffected -- only where the
    batch boundaries fall).
    """
    order = None
    if shuffle and len(edges):
        rng = np.random.default_rng(shuffle_seed)
        order = rng.permutation(len(edges))
    return BatchView(edges, batch_size, order, schedule=schedule)

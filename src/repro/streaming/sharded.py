"""Partition-parallel simulation of one stream (``StreamConfig.shards``).

The paper's update phase models one multi-threaded machine ingesting
each batch whole.  This module models the natural scale-out step:
vertex-partitioned **shards**, each ingesting the slice of every batch
it owns into its own structure instance, followed by a merge step that
ships cross-partition state over the remote-socket interconnect.

Partitioning is by *home vertex*, so every dedup decision stays
shard-local and therefore exact:

* directed streams route edge ``(u, v)`` by ``u`` -- all of ``u``'s
  out-adjacency, and hence every duplicate test for ``(u, *)``, lives
  on one shard;
* undirected streams route by ``min(u, v)`` -- both orientations of
  ``{u, v}`` land on the same shard.

Consequently the sum of per-shard inserted counts equals the serial
reference count batch for batch, and the driver's reference-graph
cross-check keeps holding.

The sharded driver splits the run in two phases:

1. **Shard simulation** (:func:`_simulate_shard`): each shard replays
   the whole stream against its own structures, producing per
   ``(repetition, batch, structure)`` makespan/work/count arrays.  A
   pure function of ``(stream, config, shard)``, so running shards in
   a process pool or in-process yields bit-identical arrays; workers
   read the stream through the mmap directory or a shared-memory
   segment -- never a pickled copy.
2. **Replay** (the inherited :class:`StreamDriver` loop): the parent
   runs reference graph, degrees, incidence, and the full compute
   phase exactly as the serial driver -- so algorithm values, inserted
   counts, and compute cycles are bit-identical to ``shards=1`` -- and
   fills each batch's update latency from the plan:
   ``max over shards of the shard makespan + the cross-shard merge
   charge`` (:func:`repro.sim.counters.shard_merge_cycles`).

The per-update simulated timeline is not traced in sharded mode (there
is no single schedule to draw); metrics histograms are still recorded.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.graph import make_structure
from repro.graph.base import ExecutionContext
from repro.graph.edge import EdgeBatch
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.sim.cost_model import CostModel
from repro.sim.counters import shard_merge_cycles
from repro.sim.machine import MachineConfig
from repro.streaming import shm
from repro.streaming.batching import make_batches
from repro.streaming.driver import (
    REP_SEED_STRIDE,
    StreamConfig,
    StreamDriver,
)
from repro.streaming.results import BatchRecord


def shard_of(
    src: np.ndarray,
    dst: np.ndarray,
    shards: int,
    max_nodes: int,
    directed: bool,
) -> np.ndarray:
    """Home shard of each edge (vectorized).

    The vertex space ``[0, max_nodes)`` is cut into ``shards``
    contiguous ranges; an edge lives with its routing key's range --
    ``src`` for directed streams, ``min(src, dst)`` for undirected
    ones (see the module docstring for why this keeps dedup exact).
    """
    key = src if directed else np.minimum(src, dst)
    return (key * shards) // max_nodes


def cross_shard_count(
    src: np.ndarray,
    dst: np.ndarray,
    shards: int,
    max_nodes: int,
) -> int:
    """Edges whose endpoints live in different vertex partitions.

    This is the merge traffic: each such edge forces the owning shard
    to publish updated state to the remote endpoint's partition.
    """
    if shards < 2 or len(src) == 0:
        return 0
    home_src = (src * shards) // max_nodes
    home_dst = (dst * shards) // max_nodes
    return int(np.count_nonzero(home_src != home_dst))


@dataclass(frozen=True)
class _ShardTask:
    """Everything one shard needs to replay the stream; picklable."""

    shard: int
    shards: int
    source: tuple  # ("edges", EdgeBatch) | ("mmap", dir) | ("shm", handle)
    max_nodes: int
    directed: bool
    batch_size: int
    structures: Tuple[str, ...]
    machine: MachineConfig
    threads: Optional[int]
    cost_model: CostModel
    shuffle_seed: int
    repetitions: int
    churn_fraction: float


@dataclass
class ShardPlan:
    """Merged per-shard schedules, indexed ``[rep, batch, shard, structure]``."""

    shards: int
    update_makespan: np.ndarray
    update_work: np.ndarray
    inserted: np.ndarray
    delete_makespan: np.ndarray
    removed: np.ndarray
    sim_seconds: float


def _resolve_edges(source: tuple) -> EdgeBatch:
    kind = source[0]
    if kind == "edges":
        return source[1]
    if kind == "mmap":
        from repro.datasets.mmapio import open_edge_mmap

        return open_edge_mmap(source[1])
    if kind == "shm":
        return shm.attach(source[1])
    raise SimulationError(f"unknown shard edge source {kind!r}")


def _simulate_shard(task: _ShardTask) -> dict:
    """Replay the whole stream for one shard; returns schedule arrays.

    Observability is forced off for the duration: the shard replay must
    produce identical numbers whether it runs in-process or in a pool
    worker, and the parent records everything user-visible from the
    returned arrays instead.
    """
    edges = _resolve_edges(task.source)
    metrics_was = METRICS.enabled
    tracer_state = (TRACER.enabled, TRACER.keep_events, TRACER.sim_timeline)
    METRICS.enabled = False
    TRACER.enabled = False
    try:
        return _simulate_shard_inner(task, edges)
    finally:
        METRICS.enabled = metrics_was
        TRACER.enabled, TRACER.keep_events, TRACER.sim_timeline = tracer_state


def _simulate_shard_inner(task: _ShardTask, edges: EdgeBatch) -> dict:
    ctx = ExecutionContext(
        machine=task.machine, threads=task.threads, cost_model=task.cost_model
    )
    reps = task.repetitions
    num_batches = (len(edges) + task.batch_size - 1) // task.batch_size
    num_structs = len(task.structures)
    shape = (reps, num_batches, num_structs)
    update_makespan = np.zeros(shape)
    update_work = np.zeros(shape)
    inserted = np.zeros(shape, dtype=np.int64)
    delete_makespan = np.zeros(shape)
    removed = np.zeros(shape, dtype=np.int64)
    started = time.perf_counter()
    for rep in range(reps):
        batches = make_batches(
            edges,
            task.batch_size,
            shuffle_seed=task.shuffle_seed + REP_SEED_STRIDE * rep,
        )
        structures = {
            name: make_structure(
                name,
                task.max_nodes,
                directed=task.directed,
                cost_model=task.cost_model,
            )
            for name in task.structures
        }
        for batch_index, batch in enumerate(batches):
            ids = shard_of(
                batch.src, batch.dst, task.shards, task.max_nodes, task.directed
            )
            mask = ids == task.shard
            sub = EdgeBatch(
                src=batch.src[mask],
                dst=batch.dst[mask],
                weight=batch.weight[mask],
            )
            for si, name in enumerate(task.structures):
                update = structures[name].update(sub, ctx)
                update_makespan[rep, batch_index, si] = update.latency_cycles
                update_work[rep, batch_index, si] = (
                    update.schedule.total_work_cycles
                )
                inserted[rep, batch_index, si] = update.edges_inserted
            if task.churn_fraction > 0.0 and len(batch):
                victims = batch.slice(
                    0, max(1, int(len(batch) * task.churn_fraction))
                )
                vids = shard_of(
                    victims.src, victims.dst, task.shards, task.max_nodes,
                    task.directed,
                )
                vmask = vids == task.shard
                sub_victims = EdgeBatch(
                    src=victims.src[vmask],
                    dst=victims.dst[vmask],
                    weight=victims.weight[vmask],
                )
                for si, name in enumerate(task.structures):
                    deletion = structures[name].delete(sub_victims, ctx)
                    delete_makespan[rep, batch_index, si] = (
                        deletion.latency_cycles
                    )
                    removed[rep, batch_index, si] = deletion.edges_inserted
    return {
        "update_makespan": update_makespan,
        "update_work": update_work,
        "inserted": inserted,
        "delete_makespan": delete_makespan,
        "removed": removed,
        "wall_seconds": time.perf_counter() - started,
    }


def _mmap_directory(edges: EdgeBatch) -> Optional[str]:
    """The stream directory behind a fully mmap-backed batch, if any."""
    from repro.datasets.mmapio import META_FILE, read_meta

    columns = (edges.src, edges.dst, edges.weight)
    if not all(isinstance(col, np.memmap) for col in columns):
        return None
    try:
        directory = Path(columns[0].filename).parent
        if not (directory / META_FILE).exists():
            return None
        if read_meta(directory)["edges"] != len(edges):
            return None  # a slice, not the whole stream
    except Exception:
        return None
    return str(directory)


class ShardedStreamDriver(StreamDriver):
    """Drives one dataset with partition-parallel update simulation.

    ``parallel=True`` (default) fans the shard replays out over a
    process pool, reading the stream through its mmap directory when
    the dataset is mmap-backed, else through a temporary shared-memory
    segment (else falling back in-process, e.g. ``SAGA_BENCH_SHM=0``
    with an in-RAM stream).  ``parallel=False`` replays shards in this
    process; the resulting numbers are bit-identical either way.
    """

    def __init__(
        self, config: Optional[StreamConfig] = None, parallel: bool = True
    ) -> None:
        super().__init__(config)
        self.parallel = parallel
        self._plan: Optional[ShardPlan] = None

    # -- phase 1: shard simulation --------------------------------------

    def _shard_tasks(self, dataset, source: tuple) -> list:
        cfg = self.config
        return [
            _ShardTask(
                shard=shard,
                shards=cfg.shards,
                source=source,
                max_nodes=dataset.max_nodes,
                directed=dataset.directed,
                batch_size=cfg.batch_size,
                structures=tuple(cfg.structures),
                machine=cfg.machine,
                threads=cfg.threads,
                cost_model=cfg.cost_model,
                shuffle_seed=cfg.shuffle_seed,
                repetitions=cfg.repetitions,
                churn_fraction=cfg.churn_fraction,
            )
            for shard in range(cfg.shards)
        ]

    def _simulate_shards(self, dataset) -> ShardPlan:
        cfg = self.config
        started = time.perf_counter()
        stream = None
        try:
            source: Optional[tuple] = None
            if self.parallel and cfg.shards > 1:
                directory = _mmap_directory(dataset.edges)
                if directory is not None:
                    source = ("mmap", directory)
                elif shm.shm_enabled():
                    stream = shm.SharedEdgeStream.publish(dataset.edges)
                    source = ("shm", stream.handle)
            if source is not None:
                workers = min(cfg.shards, os.cpu_count() or 1)
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    outs = list(
                        pool.map(
                            _simulate_shard, self._shard_tasks(dataset, source)
                        )
                    )
            else:
                outs = [
                    _simulate_shard(task)
                    for task in self._shard_tasks(
                        dataset, ("edges", dataset.edges)
                    )
                ]
        finally:
            if stream is not None:
                stream.close()
                stream.unlink()
        plan = ShardPlan(
            shards=cfg.shards,
            update_makespan=np.stack(
                [out["update_makespan"] for out in outs], axis=2
            ),
            update_work=np.stack([out["update_work"] for out in outs], axis=2),
            inserted=np.stack([out["inserted"] for out in outs], axis=2),
            delete_makespan=np.stack(
                [out["delete_makespan"] for out in outs], axis=2
            ),
            removed=np.stack([out["removed"] for out in outs], axis=2),
            sim_seconds=time.perf_counter() - started,
        )
        if METRICS.enabled:
            METRICS.histogram(
                "shard_sim_seconds",
                "wall time of the whole-stream shard simulation phase",
                dataset=dataset.name,
            ).observe(plan.sim_seconds)
        return plan

    # -- phase 2: replay with plan lookups ------------------------------

    def run(self, dataset):
        self._plan = self._simulate_shards(dataset)
        try:
            return super().run(dataset)
        finally:
            self._plan = None

    def _make_structures(self, dataset) -> Dict[str, object]:
        # Structures were already simulated shard by shard in phase 1.
        return {}

    def _update_structures(
        self,
        structures: Dict[str, object],
        batch,
        dataset,
        ctx: ExecutionContext,
        record: BatchRecord,
        sim_clocks: Dict[str, float],
    ) -> Dict[str, int]:
        cfg = self.config
        plan = self._plan
        r, b = record.repetition, record.batch_index
        merge_started = time.perf_counter()
        cross = cross_shard_count(
            batch.src, batch.dst, cfg.shards, dataset.max_nodes
        )
        merge = shard_merge_cycles(cross, ctx.machine)
        inserted: Dict[str, int] = {}
        for si, name in enumerate(cfg.structures):
            makespan = float(plan.update_makespan[r, b, :, si].max())
            record.update_cycles[name] = makespan + merge
            inserted[name] = int(plan.inserted[r, b, :, si].sum())
            if METRICS.enabled:
                METRICS.histogram(
                    "stream_update_latency_seconds",
                    "simulated per-batch update latency",
                    structure=name,
                ).observe(ctx.seconds(makespan + merge))
        if METRICS.enabled:
            METRICS.counter(
                "shard_cross_edges_total",
                "edges crossing vertex partitions (merge traffic units)",
                dataset=dataset.name,
            ).inc(cross)
            METRICS.histogram(
                "shard_merge_seconds",
                "wall time of the per-batch cross-shard merge step",
                dataset=dataset.name,
            ).observe(time.perf_counter() - merge_started)
        return inserted

    def _delete_structures(
        self,
        structures: Dict[str, object],
        victims,
        dataset,
        ctx: ExecutionContext,
        record: BatchRecord,
        sim_clocks: Dict[str, float],
    ) -> None:
        cfg = self.config
        plan = self._plan
        r, b = record.repetition, record.batch_index
        cross = cross_shard_count(
            victims.src, victims.dst, cfg.shards, dataset.max_nodes
        )
        merge = shard_merge_cycles(cross, ctx.machine)
        for si, name in enumerate(cfg.structures):
            makespan = float(plan.delete_makespan[r, b, :, si].max())
            record.update_cycles[name] += makespan + merge
            if METRICS.enabled:
                METRICS.histogram(
                    "stream_update_latency_seconds",
                    "simulated per-batch update latency",
                    structure=name,
                ).observe(ctx.seconds(makespan + merge))

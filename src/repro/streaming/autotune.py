"""Online auto-tuner: model-guided (structure, model) selection.

The paper's central finding (Table 3, Figs. 6-8) is that the best
(data structure, compute model) pair flips with algorithm and batch
size.  The fitted cost models of :mod:`repro.obs.model` predict those
crossovers; this module makes the driver *act* on them:

- :class:`AdaptiveController` keeps one :class:`OnlineGroupFit` per
  (phase, structure, algorithm, model) group -- exponentially-decayed
  least squares over the same (ops, seconds) pairs the feature log
  records, warm-started from a persisted :class:`FittedCostModel` when
  one is supplied and cold-started with a short round-robin exploration
  phase otherwise.  Before each batch it predicts every candidate's
  Equation-1 latency and switches structure only when the predicted
  savings over a look-ahead horizon exceed the priced migration cost by
  a safety margin (hysteresis).
- :class:`AdaptiveStreamDriver` runs the stream with a single live
  structure, migrating it through
  :func:`repro.graph.migrate.migrate_structure` when the controller
  says so and charging the migration to the triggering batch.  Every
  candidate compute model still *executes* each batch (INC must, to
  keep its incremental state bit-identical to a static INC run; FS runs
  are pure), and every candidate structure's compute latency is priced
  analytically -- so the controller observes the full matrix each batch
  while only the chosen combination is recorded as the batch's latency.

Algorithm results are therefore bit-identical to the static runs by
construction: values live on the reference graph, never inside the
migrating structure.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.registry import COMPUTE_MODELS, get_algorithm
from repro.compute import kernels
from repro.compute.pricing import price_compute_run
from repro.errors import ConfigError
from repro.graph import ReferenceGraph, make_structure
from repro.graph.migrate import migrate_structure
from repro.obs.features import FEATURES
from repro.obs.metrics import METRICS
from repro.obs.model import FittedCostModel, GroupFit, GroupKey, group_key
from repro.obs.tracer import TRACER
from repro.streaming.driver import (
    ALL_STRUCTURES,
    REP_SEED_STRIDE,
    StreamConfig,
    StreamDriver,
    _EMPTY_IDS,
    _InEdgeBuffer,
    _run_ops_decomposition,
    make_batches,
)
from repro.streaming.results import BatchRecord

#: The decision log of the most recent adaptive run in this process:
#: one dict per batch (see AdaptiveController.complete_batch) plus the
#: run-level summary.  The CLI report writer picks this up after the
#: run, the same way it collects the tracer and metrics registries.
LAST_DECISION_LOG: Optional[dict] = None

_ENV_PREFIX = "SAGA_BENCH_AUTOTUNE_"


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(_ENV_PREFIX + name, "")
    return int(raw) if raw else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(_ENV_PREFIX + name, "")
    return float(raw) if raw else default


@dataclass(frozen=True)
class TunerConfig:
    """The auto-tuner's knobs (see docs/AUTOTUNE.md).

    Every field has an environment override so benches and CI can
    steer the policy without code changes:
    ``SAGA_BENCH_AUTOTUNE_{EXPLORE,HORIZON,MARGIN,COOLDOWN}``.
    """

    #: Cold start: batches spent on each candidate structure before the
    #: predictive policy takes over (round-robin exploration).
    explore_rounds: int = 2
    #: Batches of predicted savings a switch is amortized over (capped
    #: at the remaining stream length).
    horizon_batches: int = 25
    #: Safety margin: predicted savings must exceed the estimated
    #: migration cost by this fraction before a switch fires.
    switch_margin: float = 0.25
    #: Batches to hold the current structure after a switch.
    cooldown_batches: int = 2
    #: Smoothing of the per-(algorithm, model) ops forecast.
    ewma_alpha: float = 0.5
    #: Per-observation decay of the online least-squares statistics
    #: (recent batches dominate, old regimes fade).
    decay: float = 0.9
    #: Pseudo-sample weight of the warm-start model when blending it
    #: with the online fit.
    prior_weight: float = 8.0
    #: Path of a persisted FittedCostModel to warm-start from.
    model_path: Optional[str] = None

    @classmethod
    def from_env(cls, **overrides) -> "TunerConfig":
        """Defaults with ``SAGA_BENCH_AUTOTUNE_*`` environment overrides."""
        values = dict(
            explore_rounds=_env_int("EXPLORE", cls.explore_rounds),
            horizon_batches=_env_int("HORIZON", cls.horizon_batches),
            switch_margin=_env_float("MARGIN", cls.switch_margin),
            cooldown_batches=_env_int("COOLDOWN", cls.cooldown_batches),
        )
        values.update(overrides)
        return cls(**values)

    def __post_init__(self) -> None:
        if self.explore_rounds < 1:
            raise ConfigError(
                f"explore_rounds must be >= 1, got {self.explore_rounds}"
            )
        if self.horizon_batches < 1:
            raise ConfigError(
                f"horizon_batches must be >= 1, got {self.horizon_batches}"
            )
        if self.switch_margin < 0.0:
            raise ConfigError(
                f"switch_margin must be >= 0, got {self.switch_margin}"
            )
        if self.cooldown_batches < 0:
            raise ConfigError(
                f"cooldown_batches must be >= 0, got {self.cooldown_batches}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if not 0.0 < self.decay <= 1.0:
            raise ConfigError(f"decay must be in (0, 1], got {self.decay}")


class OnlineGroupFit:
    """One group's ``T = setup + per_op * ops`` refined online.

    Exponentially-decayed least-squares sufficient statistics, blended
    with an optional warm-start :class:`~repro.obs.model.GroupFit`
    prior: the prior dominates until enough live observations arrive,
    then the online fit takes over (weight ``n / (n + prior_weight)``).
    """

    def __init__(
        self,
        decay: float = 0.9,
        prior: Optional[GroupFit] = None,
        prior_weight: float = 8.0,
    ) -> None:
        self.decay = decay
        self.prior = prior
        self.prior_weight = prior_weight
        self.count = 0
        self._n = self._sx = self._sy = self._sxx = self._sxy = 0.0

    def observe(self, ops: float, seconds: float) -> None:
        g = self.decay
        ops = float(ops)
        seconds = float(seconds)
        self._n = g * self._n + 1.0
        self._sx = g * self._sx + ops
        self._sy = g * self._sy + seconds
        self._sxx = g * self._sxx + ops * ops
        self._sxy = g * self._sxy + ops * seconds
        self.count += 1

    def _local_predict(self, ops: float) -> Optional[float]:
        if self.count == 0 or self._n <= 0.0:
            return None
        denom = self._n * self._sxx - self._sx * self._sx
        if self.count >= 2 and denom > 1e-30:
            per_op = (self._n * self._sxy - self._sx * self._sy) / denom
            if per_op >= 0.0:
                setup = (self._sy - per_op * self._sx) / self._n
                return max(0.0, setup + per_op * ops)
        # One sample, collinear samples, or a (numerically) negative
        # slope: fall back to the proportional estimate.
        if self._sx > 0.0:
            return self._sy / self._sx * ops
        return self._sy / self._n

    def predict(self, ops: float) -> Optional[float]:
        """Blended prediction in seconds; ``None`` when truly unknown."""
        local = self._local_predict(ops)
        prior = self.prior.predict(ops) if self.prior is not None else None
        if local is None:
            return prior
        if prior is None:
            return local
        weight = self.count / (self.count + self.prior_weight)
        return weight * local + (1.0 - weight) * prior


@dataclass
class Decision:
    """One pre-batch pick by the controller."""

    batch_index: int
    structure: str
    #: Per-algorithm compute-model choice for this batch.
    models: Dict[str, str]
    #: Predicted Equation-1 seconds of the chosen combination
    #: (steady-state: the migration charge is tracked separately).
    predicted_seconds: float
    #: Estimated cost of migrating to ``structure`` (0 when staying).
    migration_estimate_seconds: float
    #: Why: "start", "explore", "stay", "switch", "hold", "cooldown",
    #: or "forced" (test hook).
    reason: str


class AdaptiveController:
    """Model-guided (structure, model) selection with hysteresis."""

    def __init__(
        self,
        structures: Tuple[str, ...],
        models: Tuple[str, ...],
        algorithms: Tuple[str, ...],
        tuner: Optional[TunerConfig] = None,
        warm_model: Optional[FittedCostModel] = None,
        churn_fraction: float = 0.0,
    ) -> None:
        if not structures:
            raise ConfigError("adaptive mode needs at least one candidate structure")
        if not models:
            raise ConfigError("adaptive mode needs at least one candidate model")
        self.structures = tuple(structures)
        self.models = tuple(models)
        self.algorithms = tuple(algorithms)
        self.tuner = tuner if tuner is not None else TunerConfig.from_env()
        self.warm_model = warm_model
        self.churn_fraction = churn_fraction
        self.fits: Dict[GroupKey, OnlineGroupFit] = {}
        self.ops_forecast: Dict[Tuple[str, str], float] = {}
        #: Test hook: force {batch_index: structure} decisions.
        self.forced_plan: Dict[int, str] = {}
        self.log: List[dict] = []
        self.switches = 0
        self._rep = 0
        self._batches_seen = 0
        self._last_switch: Optional[int] = None
        # Cold start: round-robin exploration of every candidate whose
        # update cost the warm model cannot price.  Compute costs need
        # no exploration -- every candidate's compute latency is priced
        # (observed) every batch regardless of which structure is live.
        self._explore_plan: List[str] = []
        if any(self._prior("update", s) is None for s in self.structures):
            self._explore_plan = [
                s for s in self.structures
                for _ in range(self.tuner.explore_rounds)
            ]

    # -- model access ---------------------------------------------------

    def _prior(
        self, phase: str, structure: str, algorithm: str = "", model: str = ""
    ) -> Optional[GroupFit]:
        if self.warm_model is None:
            return None
        return self.warm_model.groups.get(
            group_key(phase, structure, algorithm, model)
        )

    def _fit(
        self, phase: str, structure: str, algorithm: str = "", model: str = ""
    ) -> OnlineGroupFit:
        key = group_key(phase, structure, algorithm, model)
        fit = self.fits.get(key)
        if fit is None:
            fit = OnlineGroupFit(
                decay=self.tuner.decay,
                prior=self._prior(phase, structure, algorithm, model),
                prior_weight=self.tuner.prior_weight,
            )
            self.fits[key] = fit
        return fit

    # -- observations ---------------------------------------------------

    def observe_update(self, structure: str, ops: float, seconds: float) -> None:
        """One live-structure update-phase (ops, seconds) sample."""
        self._fit("update", structure).observe(ops, seconds)

    def observe_compute(
        self, structure: str, algorithm: str, model: str, ops: float,
        seconds: float,
    ) -> None:
        """One priced compute sample; also refreshes the ops forecast."""
        self._fit("compute", structure, algorithm, model).observe(ops, seconds)
        alpha = self.tuner.ewma_alpha
        key = (algorithm, model)
        previous = self.ops_forecast.get(key)
        self.ops_forecast[key] = (
            ops if previous is None else alpha * ops + (1.0 - alpha) * previous
        )

    def note_migration(self, structure: str, edges: int, seconds: float) -> None:
        """A migration is one more bulk-update sample for ``structure``."""
        if edges > 0:
            self._fit("update", structure).observe(float(edges), seconds)

    # -- prediction -----------------------------------------------------

    def update_ops_of(self, batch_edges: int) -> float:
        """Update-phase ops of a batch: inserts plus churn deletions."""
        churn = 0
        if self.churn_fraction > 0.0 and batch_edges:
            churn = max(1, int(batch_edges * self.churn_fraction))
        return float(batch_edges + churn)

    def predict_update(self, structure: str, ops: float) -> Optional[float]:
        return self._fit("update", structure).predict(ops)

    def predict_compute(
        self, structure: str, algorithm: str, model: str, batch_edges: int
    ) -> Optional[float]:
        fit = self._fit("compute", structure, algorithm, model)
        ops = self.ops_forecast.get((algorithm, model))
        if ops is not None:
            return fit.predict(ops)
        prior = self._prior("compute", structure, algorithm, model)
        if prior is not None:
            return prior.predict_batch(batch_edges)
        return None

    def _predict_batch(
        self, structure: str, batch_edges: int
    ) -> Tuple[float, Dict[str, str]]:
        """(predicted Equation-1 seconds, per-algorithm model choice)."""
        update = self.predict_update(structure, self.update_ops_of(batch_edges))
        total = update if update is not None else math.inf
        choices: Dict[str, str] = {}
        for algorithm in self.algorithms:
            best_model = None
            best_seconds = math.inf
            for model in self.models:
                seconds = self.predict_compute(
                    structure, algorithm, model, batch_edges
                )
                if seconds is not None and seconds < best_seconds:
                    best_model, best_seconds = model, seconds
            if best_model is None:
                # Nothing known yet (first-ever batch, cold start):
                # prefer INC, charge nothing -- symmetric across
                # structures, so the comparison stays fair.
                best_model = "INC" if "INC" in self.models else self.models[0]
                best_seconds = 0.0
            choices[algorithm] = best_model
            total += best_seconds
        return total, choices

    # -- the per-batch decision -----------------------------------------

    def begin_repetition(self, rep: int) -> None:
        """Reset per-repetition state (the learned fits persist)."""
        self._rep = rep
        self._last_switch = None

    def decide(
        self,
        batch_index: int,
        total_batches: int,
        batch_edges: int,
        live: Optional[str],
        live_edges: int,
    ) -> Decision:
        """Pick (structure, per-algorithm model) for the coming batch."""
        predictions: Dict[str, Tuple[float, Dict[str, str]]] = {
            s: self._predict_batch(s, batch_edges) for s in self.structures
        }

        def finite(structure: str) -> float:
            total = predictions[structure][0]
            return total if math.isfinite(total) else math.inf

        best = min(self.structures, key=finite)
        if not math.isfinite(predictions[best][0]):
            best = self.structures[0]

        target = best
        migration_estimate = 0.0
        forced = self.forced_plan.get(self._batches_seen)
        if forced is not None:
            target, reason = forced, "forced"
        elif live is None:
            if self._explore_plan:
                target = self._explore_plan[0]
            reason = "start"
        elif self._batches_seen < len(self._explore_plan):
            target = self._explore_plan[self._batches_seen]
            reason = "explore"
        elif best == live:
            target, reason = live, "stay"
        else:
            gain = predictions[live][0] - predictions[best][0]
            horizon = min(
                self.tuner.horizon_batches, max(1, total_batches - batch_index)
            )
            estimate = self.predict_update(best, float(live_edges))
            migration_estimate = estimate if estimate is not None else 0.0
            in_cooldown = (
                self._last_switch is not None
                and batch_index - self._last_switch < self.tuner.cooldown_batches
            )
            if in_cooldown:
                target, reason = live, "cooldown"
            elif (
                math.isfinite(gain)
                and gain * horizon
                > migration_estimate * (1.0 + self.tuner.switch_margin)
            ):
                target, reason = best, "switch"
            else:
                target, reason = live, "hold"
        if live is not None and target != live:
            self._last_switch = batch_index
            self.switches += 1
        self._batches_seen += 1
        predicted, choices = predictions[target]
        return Decision(
            batch_index=batch_index,
            structure=target,
            models=choices,
            predicted_seconds=predicted if math.isfinite(predicted) else 0.0,
            migration_estimate_seconds=(
                migration_estimate if target != live else 0.0
            ),
            reason=reason,
        )

    # -- post-batch accounting ------------------------------------------

    def complete_batch(
        self,
        decision: Decision,
        update_ops: float,
        update_seconds: float,
        migration_seconds: float,
        compute_actual: Dict[Tuple[str, str, str], float],
    ) -> dict:
        """Log the batch outcome; returns the log entry.

        ``compute_actual`` maps (structure, algorithm, model) to priced
        seconds -- exact for *every* candidate, since compute pricing is
        analytic.  The estimated per-batch regret compares the chosen
        combination against the best candidate under actual compute
        seconds and (for non-live structures) predicted update seconds.
        """
        live = decision.structure
        chosen_compute = sum(
            compute_actual.get((live, alg, decision.models[alg]), 0.0)
            for alg in self.algorithms
        )
        actual = update_seconds + chosen_compute
        best_alternative = math.inf
        for structure in self.structures:
            if structure == live:
                update = update_seconds
            else:
                predicted = self.predict_update(structure, update_ops)
                if predicted is None:
                    continue
                update = predicted
            total = update
            for algorithm in self.algorithms:
                total += min(
                    compute_actual.get((structure, algorithm, model), math.inf)
                    for model in self.models
                )
            best_alternative = min(best_alternative, total)
        est_regret = (
            max(0.0, actual + migration_seconds - best_alternative)
            if math.isfinite(best_alternative)
            else 0.0
        )
        entry = {
            "rep": self._rep,
            "batch": decision.batch_index,
            "structure": live,
            "models": dict(decision.models),
            "reason": decision.reason,
            "predicted_seconds": decision.predicted_seconds,
            "actual_seconds": actual,
            "migration_seconds": migration_seconds,
            "est_regret_seconds": est_regret,
        }
        self.log.append(entry)
        return entry

    def summary(self) -> dict:
        """Run-level rollup of the decision log (feeds the report)."""
        predicted = sum(e["predicted_seconds"] for e in self.log)
        actual = sum(e["actual_seconds"] for e in self.log)
        return {
            "batches": len(self.log),
            "switches": self.switches,
            "explore_batches": len(self._explore_plan),
            "predicted_seconds": predicted,
            "actual_seconds": actual,
            "migration_seconds": sum(e["migration_seconds"] for e in self.log),
            "est_regret_seconds": sum(e["est_regret_seconds"] for e in self.log),
            "structures": self.structures,
            "models": self.models,
        }


def adaptive_total_seconds(result) -> float:
    """Whole-run Equation-1 seconds of an adaptive result."""
    update = float(result.update_latency("adaptive").sum())
    compute = sum(
        float(result.compute_latency(a, "adaptive", "adaptive").sum())
        for a in result.algorithms
    )
    return update + compute


def static_combo_totals(result) -> Dict[Tuple[str, str], float]:
    """Whole-run seconds of every static (structure, model) combination.

    ``result`` is a full-matrix static run (every candidate structure
    and model); a combination's total is its update latency plus the
    compute latency of every algorithm under that one model.
    """
    totals: Dict[Tuple[str, str], float] = {}
    for structure in result.structures:
        update = float(result.update_latency(structure).sum())
        for model in result.models:
            compute = sum(
                float(result.compute_latency(a, model, structure).sum())
                for a in result.algorithms
            )
            totals[(structure, model)] = update + compute
    return totals


def oracle_total_seconds(result) -> float:
    """The per-batch oracle over a full-matrix static result.

    Every batch independently picks the cheapest structure, with
    per-algorithm compute-model freedom -- the clairvoyant schedule the
    adaptive driver is graded against (it pays migrations; the oracle
    does not).
    """
    update = result.update_cycles  # (R, B, S)
    compute = result.compute_cycles  # (R, B, A, M, S)
    best_models = compute.min(axis=3)  # (R, B, A, S)
    per_structure = update + best_models.sum(axis=2)  # (R, B, S)
    return float(result.machine.cycles_to_seconds(per_structure.min(axis=2).sum()))


class AdaptiveStreamDriver(StreamDriver):
    """The streaming driver with the auto-tuner in the loop.

    One live structure instead of the static matrix; the controller
    decides before every batch, migrations go through
    :func:`repro.graph.migrate.migrate_structure`, and the result series
    is keyed ``structures=("adaptive",), models=("adaptive",)``.
    """

    def __init__(self, config: Optional[StreamConfig] = None) -> None:
        super().__init__(config)
        cfg = self.config
        if not cfg.is_adaptive:
            raise ConfigError(
                "AdaptiveStreamDriver needs structures=('adaptive',) and "
                "models=('adaptive',)"
            )
        self.candidate_structures = tuple(
            cfg.candidate_structures or ALL_STRUCTURES
        )
        self.candidate_models = tuple(cfg.candidate_models or COMPUTE_MODELS)
        self.tuner: TunerConfig = (
            cfg.autotune if cfg.autotune is not None else TunerConfig.from_env()
        )
        #: Warm-start model; assigned directly by callers that already
        #: hold one, or loaded from ``tuner.model_path``.
        self.warm_model: Optional[FittedCostModel] = None
        if self.tuner.model_path:
            self.warm_model = FittedCostModel.load(self.tuner.model_path)
        #: Test hook, copied onto the controller at run start.
        self.forced_plan: Dict[int, str] = {}
        self.controller: Optional[AdaptiveController] = None
        self.decision_log: Optional[dict] = None

    def run(self, dataset):
        global LAST_DECISION_LOG
        self.controller = AdaptiveController(
            structures=self.candidate_structures,
            models=self.candidate_models,
            algorithms=self.config.algorithms,
            tuner=self.tuner,
            warm_model=self.warm_model,
            churn_fraction=self.config.churn_fraction,
        )
        self.controller.forced_plan.update(self.forced_plan)
        result = super().run(dataset)
        self.decision_log = {
            "dataset": dataset.name,
            "summary": self.controller.summary(),
            "decisions": list(self.controller.log),
        }
        LAST_DECISION_LOG = self.decision_log
        return result

    def _run_repetition(
        self, dataset, rep, source, ctx, result, sim_clocks, maintainer=None
    ) -> None:
        cfg = self.config
        controller = self.controller
        controller.begin_repetition(rep)
        batches = make_batches(
            dataset.edges,
            cfg.batch_size,
            shuffle_seed=cfg.shuffle_seed + REP_SEED_STRIDE * rep,
            schedule=cfg.batch_schedule,
        )
        reference = ReferenceGraph(dataset.max_nodes, directed=dataset.directed)
        states = {
            name: get_algorithm(name).make_state(dataset.max_nodes)
            for name in cfg.algorithms
            if "INC" in self.candidate_models
        }
        deg_in = np.zeros(dataset.max_nodes, dtype=np.int64)
        deg_out = np.zeros(dataset.max_nodes, dtype=np.int64)
        incidence = _InEdgeBuffer(dataset.max_nodes)
        live_name: Optional[str] = None
        live_structure = None
        total_batches = len(batches)

        for batch_index in range(total_batches):
            batch_edges = batches.size_of(batch_index)
            with TRACER.span("autotune.decide"):
                decision = controller.decide(
                    batch_index,
                    total_batches,
                    batch_edges,
                    live_name,
                    reference.num_edges,
                )
            migration_cycles = 0.0
            if live_structure is None:
                live_name = decision.structure
                live_structure = make_structure(
                    live_name,
                    dataset.max_nodes,
                    directed=dataset.directed,
                    cost_model=cfg.cost_model,
                )
            elif decision.structure != live_name:
                migration = migrate_structure(
                    reference, decision.structure, ctx, cost_model=cfg.cost_model
                )
                live_structure = migration.structure
                live_name = migration.target
                migration_cycles = migration.latency_cycles
                controller.note_migration(
                    live_name,
                    migration.edges_moved,
                    ctx.seconds(migration_cycles),
                )
                if maintainer is not None:
                    # Full CSR rebuild on the next apply; proven
                    # bit-equivalent to the incremental path.
                    maintainer.reset()
                if METRICS.enabled:
                    METRICS.counter(
                        "autotune_switches_total",
                        "live structure migrations performed",
                        target=live_name,
                    ).inc()

            batch = batches[batch_index]
            record = BatchRecord(
                repetition=rep,
                batch_index=batch_index,
                edges_attempted=len(batch),
                edges_inserted=0,
                num_nodes=0,
                num_edges=0,
            )
            # ---- Update phase: only the live structure ingests ----
            update = live_structure.update(batch, ctx)
            structure_cycles = update.latency_cycles
            self._observe_update(
                dataset, live_name, update.schedule, ctx, sim_clocks, "update"
            )
            inserted_count, ins_src, ins_dst, ins_weight = self._ingest_reference(
                reference, batch, dataset, deg_in, deg_out, incidence
            )
            record.edges_inserted = inserted_count
            if __debug__:
                self._verify_inserted(
                    {live_name: update.edges_inserted}, inserted_count
                )
            removed: list = []
            rem_src = rem_dst = _EMPTY_IDS
            churn_attempted = 0
            if cfg.churn_fraction > 0.0 and len(batch):
                victims = batch.slice(
                    0, max(1, int(len(batch) * cfg.churn_fraction))
                )
                churn_attempted = len(victims)
                deletion = live_structure.delete(victims, ctx)
                structure_cycles += deletion.latency_cycles
                self._observe_update(
                    dataset, live_name, deletion.schedule, ctx, sim_clocks,
                    "delete",
                )
                removed, rem_src, rem_dst = self._churn_reference(
                    reference, victims, dataset, deg_in, deg_out, incidence
                )
            record.update_cycles["adaptive"] = migration_cycles + structure_cycles
            n = reference.num_nodes
            record.num_nodes = n
            record.num_edges = reference.num_edges
            update_ops = float(record.edges_attempted + churn_attempted)
            update_seconds = ctx.seconds(structure_cycles)
            controller.observe_update(live_name, update_ops, update_seconds)
            # ---- Per-batch feature capture (cost-model substrate) ----
            features_on = FEATURES.enabled
            base_row: Dict[str, object] = {}
            if features_on:
                live_out = deg_out[:n]
                base_row = {
                    "dataset": dataset.name,
                    "rep": rep,
                    "batch": batch_index,
                    "batch_edges": record.edges_attempted,
                    "edges_inserted": record.edges_inserted,
                    "edges_deleted": len(removed),
                    "churn_fraction": cfg.churn_fraction,
                    "num_nodes": n,
                    "num_edges": record.num_edges,
                    "mean_out_degree": float(live_out.mean()) if n else 0.0,
                    "max_out_degree": int(live_out.max()) if n else 0,
                }
                FEATURES.record(
                    phase="update",
                    structure=live_name,
                    t_seconds=update_seconds,
                    ops=update_ops,
                    **base_row,
                )
            in_edges, compute_view = self._build_compute_view(
                maintainer, incidence, n,
                ins_src, ins_dst, ins_weight, rem_src, rem_dst,
            )

            # ---- Compute phase: run every candidate model, price every
            # candidate structure, record only the chosen combination ----
            compute_actual: Dict[Tuple[str, str, str], float] = {}
            chosen_cycles_total = 0.0
            with TRACER.span("compute") as compute_span, kernels.view_scope(
                reference, compute_view
            ):
                for alg_name in cfg.algorithms:
                    algorithm = get_algorithm(alg_name)
                    chosen_model = decision.models.get(
                        alg_name, self.candidate_models[0]
                    )
                    for model in self.candidate_models:
                        wall_start = time.perf_counter() if features_on else 0.0
                        runs = self._execute_compute(
                            algorithm, model, reference,
                            states.get(alg_name), batch, removed, source,
                            in_edges,
                        )
                        if model == chosen_model:
                            record.compute_iterations[(alg_name, "adaptive")] = (
                                sum(r.iteration_count for r in runs)
                            )
                        ops_row = _run_ops_decomposition(
                            runs, deg_in, deg_out, n, ctx.cost_model
                        )
                        wall_seconds = (
                            time.perf_counter() - wall_start
                            if features_on else 0.0
                        )
                        for structure_name in self.candidate_structures:
                            cycles = 0.0
                            for priced_run in runs:
                                pricing = price_compute_run(
                                    priced_run,
                                    structure_name,
                                    deg_in[:n],
                                    deg_out[:n],
                                    ctx,
                                    neighbor_degree_query=algorithm.neighbor_degree_query,
                                )
                                cycles += pricing.latency_cycles
                            seconds = ctx.seconds(cycles)
                            compute_actual[
                                (structure_name, alg_name, model)
                            ] = seconds
                            controller.observe_compute(
                                structure_name, alg_name, model,
                                ops_row["ops"], seconds,
                            )
                            if features_on:
                                FEATURES.record(
                                    phase="compute",
                                    structure=structure_name,
                                    algorithm=alg_name,
                                    model=model,
                                    t_seconds=seconds,
                                    wall_seconds=wall_seconds,
                                    **ops_row,
                                    **base_row,
                                )
                            if (
                                structure_name == live_name
                                and model == chosen_model
                            ):
                                record.compute_cycles[
                                    (alg_name, "adaptive", "adaptive")
                                ] = cycles
                                compute_span.add_cycles(cycles)
                                chosen_cycles_total += cycles
                                if METRICS.enabled:
                                    METRICS.histogram(
                                        "stream_compute_latency_seconds",
                                        "simulated per-batch compute latency",
                                        algorithm=alg_name,
                                        model="adaptive",
                                        structure="adaptive",
                                    ).observe(seconds)
            outcome = controller.complete_batch(
                decision,
                update_ops,
                update_seconds,
                ctx.seconds(migration_cycles),
                compute_actual,
            )
            if METRICS.enabled:
                METRICS.histogram(
                    "autotune_predicted_latency_seconds",
                    "controller-predicted per-batch latency",
                ).observe(decision.predicted_seconds)
                METRICS.histogram(
                    "autotune_actual_latency_seconds",
                    "realized per-batch latency of the chosen combination",
                ).observe(outcome["actual_seconds"])
                METRICS.counter(
                    "autotune_est_regret_seconds_total",
                    "estimated per-batch regret vs the best candidate",
                ).inc(outcome["est_regret_seconds"])
                METRICS.histogram(
                    "stream_update_latency_seconds",
                    "simulated per-batch update latency",
                    structure="adaptive",
                ).observe(ctx.seconds(record.update_cycles["adaptive"]))
                METRICS.counter(
                    "stream_batches_total", "batches processed",
                    dataset=dataset.name,
                ).inc()
                METRICS.counter(
                    "stream_edges_inserted_total",
                    "unique edges ingested across batches",
                    dataset=dataset.name,
                ).inc(record.edges_inserted)
            result.add_record(record)
            if cfg.progress is not None:
                cfg.progress(
                    f"{dataset.name} rep {rep} batch {batch_index + 1}/"
                    f"{total_batches} [{live_name}/"
                    f"{decision.reason}]: |V|={n} |E|={reference.num_edges}"
                )

"""Shared-memory edge-stream transport for parallel sweeps.

A ``--jobs`` sweep used to hand each worker nothing but a dataset
*name*: every worker regenerated the full edge stream, burning CPU and
holding one private copy per process.  :class:`SharedEdgeStream`
instead publishes the stream once, in a single POSIX shared-memory
segment laid out as three back-to-back int64/int64/float64 columns,
and workers attach zero-copy views.

Lifecycle contract (CPython 3.11, where ``SharedMemory`` has no
``track`` switch):

* the **parent** owns the segment: it publishes before the pool starts
  and closes + unlinks after the pool is done, whatever the workers did
  -- a crashed worker cannot leak or tear down the segment;
* **workers** attach through a per-process cache that (a) maps the
  segment directly, bypassing the resource tracker, so a worker
  exiting does not unlink a segment it does not own, and (b) keeps the
  mapping referenced for the process lifetime, so numpy views never
  outlive their buffer.

Transport is invisible to results and fingerprints: an attached batch
is bit-identical to the generated one, so shm runs share RunStore
entries with in-RAM runs.  The ``SAGA_BENCH_SHM`` environment variable
("0"/"false"/"off") disables the transport and restores per-worker
regeneration.
"""

from __future__ import annotations

import mmap
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Tuple

try:  # CPython's POSIX shm primitive (what SharedMemory itself uses).
    import _posixshmem
except ImportError:  # pragma: no cover - non-POSIX platforms
    _posixshmem = None

import numpy as np

from repro.graph.edge import EdgeBatch
from repro.obs.metrics import METRICS

#: Column layout inside a segment: (attribute, dtype), back to back.
_LAYOUT: Tuple[Tuple[str, str], ...] = (
    ("src", "<i8"),
    ("dst", "<i8"),
    ("weight", "<f8"),
)


def shm_enabled() -> bool:
    """Whether the shm transport is enabled (``SAGA_BENCH_SHM``)."""
    return os.environ.get("SAGA_BENCH_SHM", "1").lower() not in (
        "0", "false", "off",
    )


@dataclass(frozen=True)
class SharedStreamHandle:
    """Picklable descriptor a worker needs to attach a published stream."""

    name: str
    edges: int


def _views(buffer, edges: int) -> Dict[str, np.ndarray]:
    """The three column views over a segment buffer."""
    views: Dict[str, np.ndarray] = {}
    offset = 0
    for attr, dtype in _LAYOUT:
        nbytes = edges * np.dtype(dtype).itemsize
        views[attr] = np.frombuffer(buffer, dtype=dtype, count=edges,
                                    offset=offset)
        offset += nbytes
    return views


def _segment_bytes(edges: int) -> int:
    return sum(edges * np.dtype(dtype).itemsize for _, dtype in _LAYOUT)


class SharedEdgeStream:
    """A parent-owned edge stream published in one shm segment."""

    def __init__(self, shm: shared_memory.SharedMemory, edges: int) -> None:
        self._shm = shm
        self._edges = edges
        self._unlinked = False

    @classmethod
    def publish(cls, batch: EdgeBatch) -> "SharedEdgeStream":
        """Copy ``batch`` into a fresh shm segment (parent side)."""
        # SharedMemory rejects size 0; keep one byte for empty streams.
        size = max(_segment_bytes(len(batch)), 1)
        shm = shared_memory.SharedMemory(create=True, size=size)
        views = _views(shm.buf, len(batch))
        views["src"][:] = batch.src
        views["dst"][:] = batch.dst
        views["weight"][:] = batch.weight
        if METRICS.enabled:
            METRICS.gauge(
                "shm_segments_active",
                "edge-stream shared-memory segments currently published",
            ).set(_active_count(+1))
        return cls(shm, len(batch))

    @property
    def handle(self) -> SharedStreamHandle:
        return SharedStreamHandle(name=self._shm.name, edges=self._edges)

    @property
    def batch(self) -> EdgeBatch:
        """Zero-copy view of the published stream (parent side)."""
        views = _views(self._shm.buf, self._edges)
        return EdgeBatch(src=views["src"], dst=views["dst"],
                         weight=views["weight"])

    def close(self) -> None:
        """Drop the parent's mapping (workers' mappings unaffected)."""
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system (parent side, once)."""
        if self._unlinked:
            return
        self._unlinked = True
        # Re-register before unlinking: if a fallback-path worker (see
        # :func:`_map_segment`) shared this process's resource tracker
        # and unregistered the segment, unlink()'s own unregister would
        # make the tracker log a KeyError.  Registration is a set add,
        # so this is a no-op when the entry is still present.
        try:
            resource_tracker.register(self._shm._name, "shared_memory")
        except Exception:
            pass
        self._shm.unlink()
        if METRICS.enabled:
            METRICS.gauge(
                "shm_segments_active",
                "edge-stream shared-memory segments currently published",
            ).set(_active_count(-1))


#: Parent-side count of live published segments (drives the gauge).
_ACTIVE = 0


def _active_count(delta: int) -> int:
    global _ACTIVE
    _ACTIVE = max(_ACTIVE + delta, 0)
    return _ACTIVE


#: Worker-side cache: segment name -> (buffer owner, EdgeBatch).  The
#: owner (an ``mmap`` or ``SharedMemory``) must stay referenced as long
#: as any numpy view of its buffer might -- entries therefore live for
#: the process.
_ATTACHED: Dict[str, Tuple[object, EdgeBatch]] = {}


def _map_segment(name: str):
    """Map an existing segment without involving the resource tracker.

    CPython < 3.13 registers even mere *attachments* with the resource
    tracker, so a worker exit would unlink a segment the parent still
    owns (spawn), and explicitly unregistering instead races other
    workers' unregisters under fork, where all children share one
    tracker.  Mapping the POSIX segment directly -- the same two
    syscalls ``SharedMemory`` performs -- sidesteps the tracker
    entirely: the parent's create-time registration is the only one
    that ever exists, and its unlink balances it.
    """
    if _posixshmem is None:  # pragma: no cover - non-POSIX fallback
        shm = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        return shm, shm.buf
    fd = _posixshmem.shm_open("/" + name.lstrip("/"), os.O_RDWR, mode=0o600)
    try:
        mapping = mmap.mmap(fd, 0)
    finally:
        os.close(fd)
    return mapping, mapping


def attach(handle: SharedStreamHandle) -> EdgeBatch:
    """Attach to a published stream (worker side), cached per process.

    The parent owns unlinking: attaching never registers with this
    process's resource tracker (see :func:`_map_segment`), so a worker
    exit -- clean or crashed -- cannot tear the segment down under its
    siblings.
    """
    cached = _ATTACHED.get(handle.name)
    if cached is not None:
        return cached[1]
    owner, buf = _map_segment(handle.name)
    views = _views(buf, handle.edges)
    batch = EdgeBatch(src=views["src"], dst=views["dst"],
                      weight=views["weight"])
    _ATTACHED[handle.name] = (owner, batch)
    return batch


def detach_all() -> None:
    """Drop every cached attachment (test hook; not used on hot paths).

    Callers must ensure no numpy views of the segments are still alive,
    or ``close`` raises ``BufferError``.
    """
    while _ATTACHED:
        _, (owner, batch) = _ATTACHED.popitem()
        del batch  # release the numpy views before closing the buffer
        owner.close()

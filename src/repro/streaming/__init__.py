"""Streaming execution: batching, the driver loop, and result series.

Implements the paper's measurement methodology (Section IV-B): shuffle
the stream, ingest fixed-size batches, run update then compute per
batch, and report per-batch latencies that the analysis layer averages
into P1/P2/P3 stages with 95% confidence intervals.
"""

from repro.streaming.batching import make_batches
from repro.streaming.driver import (
    ALL_ALGORITHMS,
    ALL_STRUCTURES,
    REP_SEED_STRIDE,
    StreamConfig,
    StreamDriver,
)
from repro.streaming.results import (
    RESULT_SCHEMA_VERSION,
    BatchRecord,
    StreamResult,
)

__all__ = [
    "ALL_ALGORITHMS",
    "ALL_STRUCTURES",
    "BatchRecord",
    "make_batches",
    "REP_SEED_STRIDE",
    "RESULT_SCHEMA_VERSION",
    "StreamConfig",
    "StreamDriver",
    "StreamResult",
]

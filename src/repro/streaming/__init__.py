"""Streaming execution: batching, the driver loop, and result series.

Implements the paper's measurement methodology (Section IV-B): shuffle
the stream, ingest fixed-size batches, run update then compute per
batch, and report per-batch latencies that the analysis layer averages
into P1/P2/P3 stages with 95% confidence intervals.

The data plane underneath is lazy and transport-agnostic:
:class:`~repro.streaming.batching.BatchView` gathers batches on demand
from in-RAM, memory-mapped, or shared-memory edge arrays, and
:func:`~repro.streaming.driver.make_driver` selects the serial or
partition-parallel (:mod:`~repro.streaming.sharded`) simulation.
"""

from repro.streaming.batching import BatchView, batch_count, make_batches
from repro.streaming.driver import (
    ALL_ALGORITHMS,
    ALL_STRUCTURES,
    REP_SEED_STRIDE,
    StreamConfig,
    StreamDriver,
    make_driver,
)
from repro.streaming.autotune import (
    AdaptiveController,
    AdaptiveStreamDriver,
    TunerConfig,
)
from repro.streaming.results import (
    RESULT_SCHEMA_VERSION,
    BatchRecord,
    StreamResult,
)

__all__ = [
    "AdaptiveController",
    "AdaptiveStreamDriver",
    "ALL_ALGORITHMS",
    "ALL_STRUCTURES",
    "batch_count",
    "BatchRecord",
    "BatchView",
    "make_batches",
    "make_driver",
    "REP_SEED_STRIDE",
    "RESULT_SCHEMA_VERSION",
    "StreamConfig",
    "StreamDriver",
    "StreamResult",
    "TunerConfig",
]

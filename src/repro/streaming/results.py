"""Result containers of a streaming run.

One :class:`BatchRecord` per (repetition, batch) holds the simulated
update latency of every data structure and the simulated compute
latency of every (algorithm, model, structure) combination.  A
:class:`StreamResult` aggregates them and exposes the per-batch latency
series that the analysis harness turns into P1/P2/P3 stage averages.

The paper's performance metric (Equation 1) is::

    batch processing latency = update latency + compute latency
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sim.machine import MachineConfig

ComboKey = Tuple[str, str, str]  # (algorithm, model, structure)


@dataclass
class BatchRecord:
    """Simulated latencies and counts for one ingested batch."""

    repetition: int
    batch_index: int
    edges_attempted: int
    edges_inserted: int
    num_nodes: int
    num_edges: int
    update_cycles: Dict[str, float] = field(default_factory=dict)
    compute_cycles: Dict[ComboKey, float] = field(default_factory=dict)
    compute_iterations: Dict[Tuple[str, str], int] = field(default_factory=dict)


@dataclass
class StreamResult:
    """All records of one dataset's streaming characterization."""

    dataset: str
    machine: MachineConfig
    structures: Tuple[str, ...]
    algorithms: Tuple[str, ...]
    models: Tuple[str, ...]
    repetitions: int
    batches_per_rep: int
    records: List[BatchRecord] = field(default_factory=list)

    def _series(self, extract) -> np.ndarray:
        """(repetitions, batches) array of ``extract(record)`` seconds."""
        values = np.empty((self.repetitions, self.batches_per_rep))
        for record in self.records:
            values[record.repetition, record.batch_index] = (
                self.machine.cycles_to_seconds(extract(record))
            )
        return values

    def update_latency(self, structure: str) -> np.ndarray:
        """Per-batch update latency of ``structure``, seconds."""
        self._check_structure(structure)
        return self._series(lambda r: r.update_cycles[structure])

    def compute_latency(self, algorithm: str, model: str, structure: str) -> np.ndarray:
        """Per-batch compute latency of one combination, seconds."""
        key = (algorithm, model, structure)
        self._check_combo(key)
        return self._series(lambda r: r.compute_cycles[key])

    def batch_latency(self, algorithm: str, model: str, structure: str) -> np.ndarray:
        """Per-batch total (Equation 1) latency, seconds."""
        key = (algorithm, model, structure)
        self._check_combo(key)
        return self._series(
            lambda r: r.update_cycles[structure] + r.compute_cycles[key]
        )

    def update_fraction(self, algorithm: str, model: str, structure: str) -> np.ndarray:
        """Per-batch share of latency spent in the update phase."""
        update = self.update_latency(structure)
        total = self.batch_latency(algorithm, model, structure)
        return np.divide(update, total, out=np.zeros_like(update), where=total > 0)

    def _check_structure(self, structure: str) -> None:
        if structure not in self.structures:
            raise SimulationError(
                f"structure {structure!r} was not part of this run "
                f"(had {self.structures})"
            )

    def _check_combo(self, key: ComboKey) -> None:
        algorithm, model, structure = key
        self._check_structure(structure)
        if algorithm not in self.algorithms or model not in self.models:
            raise SimulationError(
                f"combination {key} was not part of this run "
                f"(algorithms {self.algorithms}, models {self.models})"
            )

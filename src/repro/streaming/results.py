"""Result containers of a streaming run.

A :class:`StreamResult` stores every simulated latency of one dataset's
characterization sweep **columnar**: one numpy array per measured
quantity, indexed ``[repetition, batch, ...]``, so that the
``update_latency`` / ``compute_latency`` / ``batch_latency`` reductions
the analysis harness performs are vectorized slices instead of
per-record Python loops.  :class:`BatchRecord` survives as the write
side: the driver stages one record per ingested batch and commits it
with :meth:`StreamResult.add_record`; a compatibility ``records`` view
materializes the old list-of-records shape for callers that still want
it.

Results serialize to ``.npz`` (:meth:`StreamResult.to_npz` /
:meth:`StreamResult.from_npz`) with a stable schema, which is what the
experiment engine's :class:`repro.engine.store.RunStore` caches on
disk.

The paper's performance metric (Equation 1) is::

    batch processing latency = update latency + compute latency
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sim.machine import MachineConfig

ComboKey = Tuple[str, str, str]  # (algorithm, model, structure)

#: Version of the columnar result schema; part of every cache key, so
#: bumping it invalidates all previously stored results.
RESULT_SCHEMA_VERSION = 2

#: Per-batch scalar count columns, in serialization order.
_COUNT_FIELDS = ("edges_attempted", "edges_inserted", "num_nodes", "num_edges")


@dataclass
class BatchRecord:
    """Simulated latencies and counts for one ingested batch.

    The staging object the driver fills while processing a batch; it is
    committed into the columnar arrays via
    :meth:`StreamResult.add_record`.
    """

    repetition: int
    batch_index: int
    edges_attempted: int
    edges_inserted: int
    num_nodes: int
    num_edges: int
    update_cycles: Dict[str, float] = field(default_factory=dict)
    compute_cycles: Dict[ComboKey, float] = field(default_factory=dict)
    compute_iterations: Dict[Tuple[str, str], int] = field(default_factory=dict)


@dataclass
class StreamResult:
    """All measurements of one dataset's streaming characterization.

    Array layout (``R`` repetitions, ``B`` batches per repetition,
    ``S`` structures, ``A`` algorithms, ``M`` compute models):

    - count columns: ``(R, B)`` int64;
    - ``update_cycles``: ``(R, B, S)`` float64;
    - ``compute_cycles``: ``(R, B, A, M, S)`` float64;
    - ``compute_iterations``: ``(R, B, A, M)`` int64.
    """

    dataset: str
    machine: MachineConfig
    structures: Tuple[str, ...]
    algorithms: Tuple[str, ...]
    models: Tuple[str, ...]
    repetitions: int
    batches_per_rep: int
    edges_attempted: Optional[np.ndarray] = None
    edges_inserted: Optional[np.ndarray] = None
    num_nodes: Optional[np.ndarray] = None
    num_edges: Optional[np.ndarray] = None
    update_cycles: Optional[np.ndarray] = None
    compute_cycles: Optional[np.ndarray] = None
    compute_iterations: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.structures = tuple(self.structures)
        self.algorithms = tuple(self.algorithms)
        self.models = tuple(self.models)
        shape = (self.repetitions, self.batches_per_rep)
        for name in _COUNT_FIELDS:
            if getattr(self, name) is None:
                setattr(self, name, np.zeros(shape, dtype=np.int64))
        if self.update_cycles is None:
            self.update_cycles = np.zeros(shape + (len(self.structures),))
        if self.compute_cycles is None:
            self.compute_cycles = np.zeros(
                shape + (len(self.algorithms), len(self.models), len(self.structures))
            )
        if self.compute_iterations is None:
            self.compute_iterations = np.zeros(
                shape + (len(self.algorithms), len(self.models)), dtype=np.int64
            )
        self._sindex = {name: i for i, name in enumerate(self.structures)}
        self._aindex = {name: i for i, name in enumerate(self.algorithms)}
        self._mindex = {name: i for i, name in enumerate(self.models)}

    # -- write side -----------------------------------------------------

    def add_record(self, record: BatchRecord) -> None:
        """Commit one staged :class:`BatchRecord` into the arrays."""
        r, b = record.repetition, record.batch_index
        if not (0 <= r < self.repetitions and 0 <= b < self.batches_per_rep):
            raise SimulationError(
                f"record ({r}, {b}) outside the result's "
                f"({self.repetitions}, {self.batches_per_rep}) grid"
            )
        for name in _COUNT_FIELDS:
            getattr(self, name)[r, b] = getattr(record, name)
        for structure, cycles in record.update_cycles.items():
            self.update_cycles[r, b, self._sindex[structure]] = cycles
        for (alg, model, structure), cycles in record.compute_cycles.items():
            self.compute_cycles[
                r, b, self._aindex[alg], self._mindex[model], self._sindex[structure]
            ] = cycles
        for (alg, model), count in record.compute_iterations.items():
            self.compute_iterations[r, b, self._aindex[alg], self._mindex[model]] = (
                count
            )

    # -- compatibility view ---------------------------------------------

    @property
    def records(self) -> List[BatchRecord]:
        """The per-batch records, materialized from the columnar arrays.

        Kept for callers written against the original list-of-records
        API; ordered by (repetition, batch).  Mutating the returned
        records does not write back.
        """
        out: List[BatchRecord] = []
        for r in range(self.repetitions):
            for b in range(self.batches_per_rep):
                out.append(
                    BatchRecord(
                        repetition=r,
                        batch_index=b,
                        edges_attempted=int(self.edges_attempted[r, b]),
                        edges_inserted=int(self.edges_inserted[r, b]),
                        num_nodes=int(self.num_nodes[r, b]),
                        num_edges=int(self.num_edges[r, b]),
                        update_cycles={
                            s: float(self.update_cycles[r, b, i])
                            for s, i in self._sindex.items()
                        },
                        compute_cycles={
                            (a, m, s): float(self.compute_cycles[r, b, ai, mi, si])
                            for a, ai in self._aindex.items()
                            for m, mi in self._mindex.items()
                            for s, si in self._sindex.items()
                        },
                        compute_iterations={
                            (a, m): int(self.compute_iterations[r, b, ai, mi])
                            for a, ai in self._aindex.items()
                            for m, mi in self._mindex.items()
                        },
                    )
                )
        return out

    # -- latency series (vectorized) ------------------------------------

    def update_latency(self, structure: str) -> np.ndarray:
        """Per-batch update latency of ``structure``, seconds."""
        self._check_structure(structure)
        return self.machine.cycles_to_seconds(
            self.update_cycles[:, :, self._sindex[structure]]
        )

    def compute_latency(self, algorithm: str, model: str, structure: str) -> np.ndarray:
        """Per-batch compute latency of one combination, seconds."""
        key = (algorithm, model, structure)
        self._check_combo(key)
        return self.machine.cycles_to_seconds(
            self.compute_cycles[
                :,
                :,
                self._aindex[algorithm],
                self._mindex[model],
                self._sindex[structure],
            ]
        )

    def batch_latency(self, algorithm: str, model: str, structure: str) -> np.ndarray:
        """Per-batch total (Equation 1) latency, seconds."""
        key = (algorithm, model, structure)
        self._check_combo(key)
        return self.machine.cycles_to_seconds(
            self.update_cycles[:, :, self._sindex[structure]]
            + self.compute_cycles[
                :,
                :,
                self._aindex[algorithm],
                self._mindex[model],
                self._sindex[structure],
            ]
        )

    def update_fraction(self, algorithm: str, model: str, structure: str) -> np.ndarray:
        """Per-batch share of latency spent in the update phase."""
        update = self.update_latency(structure)
        total = self.batch_latency(algorithm, model, structure)
        return np.divide(update, total, out=np.zeros_like(update), where=total > 0)

    def edges_per_second(
        self, algorithm: str, model: str, structure: str
    ) -> np.ndarray:
        """Per-batch ingest rate: attempted edges over batch latency.

        The stream-scale headline number (SProBench's framing): how
        many stream edges per simulated second this combination keeps
        up with, batch by batch.
        """
        latency = self.batch_latency(algorithm, model, structure)
        attempted = self.edges_attempted.astype(np.float64)
        return np.divide(
            attempted, latency, out=np.zeros_like(latency), where=latency > 0
        )

    def sustainable_throughput(
        self, algorithm: str, model: str, structure: str
    ) -> float:
        """Whole-run sustained edges/second of one combination.

        Total attempted edges divided by total simulated batch latency
        -- the rate at which this pipeline drains the stream without
        falling behind, which is the throughput a streaming deployment
        can actually sustain (as opposed to a best-batch peak).
        """
        latency = self.batch_latency(algorithm, model, structure)
        total = float(latency.sum())
        if total <= 0:
            return 0.0
        return float(self.edges_attempted.sum()) / total

    # -- merging --------------------------------------------------------

    @classmethod
    def merge(cls, parts: Sequence["StreamResult"]) -> "StreamResult":
        """Stack per-repetition results along the repetition axis.

        Parts must share dataset, machine, matrix, and batch count;
        repetition indices follow the order of ``parts``, which is how
        the sweep engine reassembles a deterministic multi-repetition
        result from independently executed cells.
        """
        if not parts:
            raise SimulationError("cannot merge zero results")
        first = parts[0]
        if len(parts) == 1:
            return first
        for other in parts[1:]:
            if (
                other.dataset != first.dataset
                or other.machine != first.machine
                or other.structures != first.structures
                or other.algorithms != first.algorithms
                or other.models != first.models
                or other.batches_per_rep != first.batches_per_rep
            ):
                raise SimulationError(
                    f"cannot merge results of mismatched runs "
                    f"({other.dataset!r} vs {first.dataset!r})"
                )
        return cls(
            dataset=first.dataset,
            machine=first.machine,
            structures=first.structures,
            algorithms=first.algorithms,
            models=first.models,
            repetitions=sum(p.repetitions for p in parts),
            batches_per_rep=first.batches_per_rep,
            edges_attempted=np.concatenate([p.edges_attempted for p in parts]),
            edges_inserted=np.concatenate([p.edges_inserted for p in parts]),
            num_nodes=np.concatenate([p.num_nodes for p in parts]),
            num_edges=np.concatenate([p.num_edges for p in parts]),
            update_cycles=np.concatenate([p.update_cycles for p in parts]),
            compute_cycles=np.concatenate([p.compute_cycles for p in parts]),
            compute_iterations=np.concatenate([p.compute_iterations for p in parts]),
        )

    # -- serialization ---------------------------------------------------

    def to_payload(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Split into a JSON-safe metadata dict and an array dict."""
        from dataclasses import asdict

        meta = {
            "schema": RESULT_SCHEMA_VERSION,
            "dataset": self.dataset,
            "machine": asdict(self.machine),
            "structures": list(self.structures),
            "algorithms": list(self.algorithms),
            "models": list(self.models),
            "repetitions": self.repetitions,
            "batches_per_rep": self.batches_per_rep,
        }
        arrays = {
            name: getattr(self, name)
            for name in _COUNT_FIELDS
            + ("update_cycles", "compute_cycles", "compute_iterations")
        }
        return meta, arrays

    @classmethod
    def from_payload(cls, meta: dict, arrays: Dict[str, np.ndarray]) -> "StreamResult":
        """Rebuild a result from :meth:`to_payload` output."""
        schema = meta.get("schema")
        if schema != RESULT_SCHEMA_VERSION:
            raise SimulationError(
                f"unsupported result schema {schema!r} "
                f"(this build reads schema {RESULT_SCHEMA_VERSION})"
            )
        return cls(
            dataset=meta["dataset"],
            machine=MachineConfig(**meta["machine"]),
            structures=tuple(meta["structures"]),
            algorithms=tuple(meta["algorithms"]),
            models=tuple(meta["models"]),
            repetitions=int(meta["repetitions"]),
            batches_per_rep=int(meta["batches_per_rep"]),
            **{name: np.asarray(arrays[name]) for name in _COUNT_FIELDS},
            update_cycles=np.asarray(arrays["update_cycles"]),
            compute_cycles=np.asarray(arrays["compute_cycles"]),
            compute_iterations=np.asarray(arrays["compute_iterations"]),
        )

    def to_npz(self, path) -> Path:
        """Serialize to one ``.npz`` file; returns the path written."""
        meta, arrays = self.to_payload()
        path = Path(path)
        with open(path, "wb") as handle:
            np.savez_compressed(
                handle, __meta__=np.asarray(json.dumps(meta, sort_keys=True)), **arrays
            )
        return path

    @classmethod
    def from_npz(cls, path) -> "StreamResult":
        """Load a result previously written by :meth:`to_npz`."""
        with np.load(Path(path), allow_pickle=False) as data:
            meta = json.loads(str(data["__meta__"]))
            arrays = {name: data[name] for name in data.files if name != "__meta__"}
        return cls.from_payload(meta, arrays)

    # -- validation -------------------------------------------------------

    def _check_structure(self, structure: str) -> None:
        if structure not in self._sindex:
            raise SimulationError(
                f"structure {structure!r} was not part of this run "
                f"(had {self.structures})"
            )

    def _check_combo(self, key: ComboKey) -> None:
        algorithm, model, structure = key
        self._check_structure(structure)
        if algorithm not in self._aindex or model not in self._mindex:
            raise SimulationError(
                f"combination {key} was not part of this run "
                f"(algorithms {self.algorithms}, models {self.models})"
            )

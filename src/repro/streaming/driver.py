"""The streaming driver: the paper's measurement loop (Section IV-B).

For each repetition the driver shuffles the dataset's edge stream,
slices it into batches, and for every batch executes the two phases of
Fig. 1:

1. **Update phase** -- the batch is ingested into every configured data
   structure; the simulated makespan of the insertion tasks is that
   structure's update latency.
2. **Compute phase** -- every configured algorithm runs under every
   configured compute model against a neutral reference view (vertex
   values are structure-independent), and the recorded operation
   counts are priced per structure to produce compute latencies.

Batch processing latency = update latency + compute latency
(Equation 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from repro.algorithms.registry import ALGORITHMS, COMPUTE_MODELS, get_algorithm
from repro.compute.pricing import price_compute_run
from repro.datasets.catalog import DEFAULT_BATCH_SIZE, Dataset
from repro.errors import ConfigError
from repro.graph import STRUCTURES, ReferenceGraph, make_structure
from repro.graph.base import ExecutionContext
from repro.sim.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.sim.machine import MachineConfig, SKYLAKE_GOLD_6142
from repro.streaming.batching import make_batches
from repro.streaming.results import BatchRecord, StreamResult

#: The paper's four structures (the default characterization matrix);
#: the registry also accepts post-paper extensions such as "BA".
ALL_STRUCTURES = ("AS", "AC", "Stinger", "DAH")
ALL_ALGORITHMS = ("BFS", "CC", "MC", "PR", "SSSP", "SSWP")


@dataclass
class StreamConfig:
    """What to run and on which simulated machine."""

    batch_size: int = DEFAULT_BATCH_SIZE
    structures: Tuple[str, ...] = ALL_STRUCTURES
    algorithms: Tuple[str, ...] = ALL_ALGORITHMS
    models: Tuple[str, ...] = COMPUTE_MODELS
    repetitions: int = 1
    machine: MachineConfig = SKYLAKE_GOLD_6142
    threads: Optional[int] = None
    cost_model: CostModel = DEFAULT_COST_MODEL
    shuffle_seed: int = 0
    source: Optional[int] = None
    progress: Optional[Callable[[str], None]] = None
    #: Churn: after each insert batch, delete this fraction of the
    #: batch's edges again (a mixed insert/delete stream).  The update
    #: phase measures both operations; compute-model values stay exact
    #: under FS, while INC is approximate for the monotone algorithms
    #: once edges disappear (see repro.compute.incremental).
    churn_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if not 0.0 <= self.churn_fraction < 1.0:
            raise ConfigError(
                f"churn_fraction must be in [0, 1), got {self.churn_fraction}"
            )
        if self.repetitions < 1:
            raise ConfigError(f"repetitions must be >= 1, got {self.repetitions}")
        for name in self.structures:
            if name not in STRUCTURES:
                raise ConfigError(f"unknown structure {name!r}")
        for name in self.algorithms:
            if name not in ALGORITHMS:
                raise ConfigError(f"unknown algorithm {name!r}")
        for model in self.models:
            if model not in COMPUTE_MODELS:
                raise ConfigError(f"unknown compute model {model!r}")


class StreamDriver:
    """Runs the full characterization loop over one dataset."""

    def __init__(self, config: Optional[StreamConfig] = None) -> None:
        self.config = config if config is not None else StreamConfig()

    def _pick_source(self, dataset: Dataset) -> int:
        """Default single-source root: the stream's hottest source.

        A hub is (almost surely) present from the first batch on and
        reaches a large fraction of the graph, which matches how
        single-source roots are chosen in graph benchmarks.
        """
        if self.config.source is not None:
            return self.config.source
        counts = np.bincount(dataset.edges.src)
        return int(counts.argmax())

    def run(self, dataset: Dataset) -> StreamResult:
        """Stream ``dataset`` and record every simulated latency."""
        cfg = self.config
        source = self._pick_source(dataset)
        ctx = ExecutionContext(
            machine=cfg.machine, threads=cfg.threads, cost_model=cfg.cost_model
        )
        batches_per_rep = (len(dataset.edges) + cfg.batch_size - 1) // cfg.batch_size
        result = StreamResult(
            dataset=dataset.name,
            machine=cfg.machine,
            structures=cfg.structures,
            algorithms=cfg.algorithms,
            models=cfg.models,
            repetitions=cfg.repetitions,
            batches_per_rep=batches_per_rep,
        )
        for rep in range(cfg.repetitions):
            self._run_repetition(dataset, rep, source, ctx, result)
        return result

    def _run_repetition(
        self,
        dataset: Dataset,
        rep: int,
        source: int,
        ctx: ExecutionContext,
        result: StreamResult,
    ) -> None:
        cfg = self.config
        batches = make_batches(
            dataset.edges, cfg.batch_size, shuffle_seed=cfg.shuffle_seed + 7919 * rep
        )
        structures = {
            name: make_structure(
                name,
                dataset.max_nodes,
                directed=dataset.directed,
                cost_model=cfg.cost_model,
            )
            for name in cfg.structures
        }
        reference = ReferenceGraph(dataset.max_nodes, directed=dataset.directed)
        states = {
            name: get_algorithm(name).make_state(dataset.max_nodes)
            for name in cfg.algorithms
            if "INC" in cfg.models
        }
        deg_in = np.zeros(dataset.max_nodes, dtype=np.int64)
        deg_out = np.zeros(dataset.max_nodes, dtype=np.int64)
        in_src: list = []
        in_dst: list = []
        in_weight: list = []

        for batch_index, batch in enumerate(batches):
            record = BatchRecord(
                repetition=rep,
                batch_index=batch_index,
                edges_attempted=len(batch),
                edges_inserted=0,
                num_nodes=0,
                num_edges=0,
            )
            # ---- Update phase: every structure ingests the batch ----
            for name, structure in structures.items():
                update = structure.update(batch, ctx)
                record.update_cycles[name] = update.latency_cycles
                record.edges_inserted = update.edges_inserted
            inserted = reference.update_collect(batch)
            for u, v, w in inserted:
                deg_out[u] += 1
                deg_in[v] += 1
                in_src.append(u)
                in_dst.append(v)
                in_weight.append(w)
                if not dataset.directed and u != v:
                    deg_out[v] += 1
                    deg_in[u] += 1
                    in_src.append(v)
                    in_dst.append(u)
                    in_weight.append(w)
            removed: list = []
            if cfg.churn_fraction > 0.0 and len(batch):
                victims = batch.slice(
                    0, max(1, int(len(batch) * cfg.churn_fraction))
                )
                for name, structure in structures.items():
                    deletion = structure.delete(victims, ctx)
                    record.update_cycles[name] += deletion.latency_cycles
                removed = reference.delete_collect(victims)
                removed_keys = set()
                for u, v, w in removed:
                    deg_out[u] -= 1
                    deg_in[v] -= 1
                    removed_keys.add((u, v))
                    if not dataset.directed and u != v:
                        deg_out[v] -= 1
                        deg_in[u] -= 1
                        removed_keys.add((v, u))
                if removed_keys:
                    kept = [
                        i
                        for i in range(len(in_src))
                        if (in_src[i], in_dst[i]) not in removed_keys
                    ]
                    in_src = [in_src[i] for i in kept]
                    in_dst = [in_dst[i] for i in kept]
                    in_weight = [in_weight[i] for i in kept]
            n = reference.num_nodes
            record.num_nodes = n
            record.num_edges = reference.num_edges
            in_edges = (
                np.asarray(in_src, dtype=np.int64),
                np.asarray(in_dst, dtype=np.int64),
                np.asarray(in_weight, dtype=np.float64),
            )

            # ---- Compute phase: each algorithm under each model ----
            for alg_name in cfg.algorithms:
                algorithm = get_algorithm(alg_name)
                for model in cfg.models:
                    if model == "FS":
                        run = algorithm.fs_run(
                            reference, source=source, in_edges=in_edges
                        )
                    else:
                        affected = algorithm.affected_from_batch(batch, reference)
                        runs = [
                            algorithm.inc_run(
                                reference, states[alg_name], affected, source=source
                            )
                        ]
                        if removed:
                            # Churn: repair the state after deletions
                            # (sound KickStarter-style invalidation);
                            # its cost belongs to this compute phase.
                            runs.append(
                                algorithm.inc_delete_run(
                                    reference, states[alg_name], removed,
                                    source=source,
                                )
                            )
                        run = runs[0]
                    if model == "FS" or not removed:
                        runs = [run]
                    record.compute_iterations[(alg_name, model)] = sum(
                        r.iteration_count for r in runs
                    )
                    for structure_name in cfg.structures:
                        cycles = 0.0
                        for priced_run in runs:
                            pricing = price_compute_run(
                                priced_run,
                                structure_name,
                                deg_in[:n],
                                deg_out[:n],
                                ctx,
                                neighbor_degree_query=algorithm.neighbor_degree_query,
                            )
                            cycles += pricing.latency_cycles
                        record.compute_cycles[(alg_name, model, structure_name)] = (
                            cycles
                        )
            result.records.append(record)
            if cfg.progress is not None:
                cfg.progress(
                    f"{dataset.name} rep {rep} batch {batch_index + 1}/"
                    f"{len(batches)}: |V|={n} |E|={reference.num_edges}"
                )

"""The streaming driver: the paper's measurement loop (Section IV-B).

For each repetition the driver shuffles the dataset's edge stream,
slices it into batches, and for every batch executes the two phases of
Fig. 1:

1. **Update phase** -- the batch is ingested into every configured data
   structure; the simulated makespan of the insertion tasks is that
   structure's update latency.
2. **Compute phase** -- every configured algorithm runs under every
   configured compute model against a neutral reference view (vertex
   values are structure-independent), and the recorded operation
   counts are priced per structure to produce compute latencies.

Batch processing latency = update latency + compute latency
(Equation 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.algorithms.registry import ALGORITHMS, COMPUTE_MODELS, get_algorithm
from repro.compute import kernels
from repro.compute.csrstore import ViewMaintainer
from repro.compute.pricing import price_compute_run
from repro.datasets.catalog import DEFAULT_BATCH_SIZE, Dataset
from repro.errors import ConfigError
from repro.graph import STRUCTURES, ReferenceGraph, make_structure
from repro.graph.base import ExecutionContext
from repro.obs.features import FEATURES
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.sim.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.sim.machine import MachineConfig, SKYLAKE_GOLD_6142
from repro.sim.scheduler import ScheduleResult
from repro.streaming.batching import batch_count, make_batches
from repro.streaming.results import BatchRecord, StreamResult

#: The paper's four structures (the default characterization matrix);
#: the registry also accepts post-paper extensions such as "BA".
ALL_STRUCTURES = ("AS", "AC", "Stinger", "DAH")
ALL_ALGORITHMS = ("BFS", "CC", "MC", "PR", "SSSP", "SSWP")

#: Stride between the shuffle seeds of consecutive repetitions.  The
#: sweep engine relies on this to run single repetitions as independent
#: cells that reproduce the exact batches of a multi-repetition run.
REP_SEED_STRIDE = 7919

#: Shared empty columns (read-only by convention) for batches that
#: inserted or removed nothing.
_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_WEIGHTS = np.empty(0, dtype=np.float64)


class _InEdgeBuffer:
    """Growable columnar (src, dst, weight) incidence buffer.

    Replaces the Python lists the driver used to rebuild with an O(E)
    list comprehension on every churn batch: appends amortize through
    capacity doubling, and deletions apply one vectorized membership
    mask over packed ``src * max_nodes + dst`` keys.
    """

    def __init__(self, max_nodes: int, capacity: int = 1024) -> None:
        self._max_nodes = max_nodes
        self._src = np.empty(capacity, dtype=np.int64)
        self._dst = np.empty(capacity, dtype=np.int64)
        self._weight = np.empty(capacity, dtype=np.float64)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def _reserve(self, extra: int) -> None:
        needed = self._n + extra
        if needed <= len(self._src):
            return
        capacity = max(len(self._src) * 2, needed)
        for name in ("_src", "_dst", "_weight"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    def append(self, src: np.ndarray, dst: np.ndarray, weight: np.ndarray) -> None:
        count = len(src)
        if count == 0:
            return
        self._reserve(count)
        n = self._n
        self._src[n : n + count] = src
        self._dst[n : n + count] = dst
        self._weight[n : n + count] = weight
        self._n = n + count

    def delete(self, removed_src: np.ndarray, removed_dst: np.ndarray) -> None:
        """Drop every stored edge whose (src, dst) appears in the lists."""
        if len(removed_src) == 0 or self._n == 0:
            return
        n = self._n
        packed = self._src[:n] * self._max_nodes + self._dst[:n]
        removed = removed_src * self._max_nodes + removed_dst
        keep = ~np.isin(packed, removed)
        kept = int(keep.sum())
        self._src[:kept] = self._src[:n][keep]
        self._dst[:kept] = self._dst[:n][keep]
        self._weight[:kept] = self._weight[:n][keep]
        self._n = kept

    def view(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The live (src, dst, weight) arrays, insertion-ordered."""
        n = self._n
        return (
            self._src[:n].copy(),
            self._dst[:n].copy(),
            self._weight[:n].copy(),
        )

    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy live slices (valid until the next append/delete)."""
        n = self._n
        return self._src[:n], self._dst[:n], self._weight[:n]


def _edge_arrays(edges) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(src, dst, weight) arrays from a list of (u, v, w) tuples."""
    count = len(edges)
    src = np.fromiter((e[0] for e in edges), dtype=np.int64, count=count)
    dst = np.fromiter((e[1] for e in edges), dtype=np.int64, count=count)
    weight = np.fromiter((e[2] for e in edges), dtype=np.float64, count=count)
    return src, dst, weight


def _with_reverse_interleaved(
    src: np.ndarray, dst: np.ndarray, weight: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Each edge followed by its reverse (skipping self-loops).

    Matches the exact append order of the original per-edge loop for
    undirected graphs, keeping reductions over the incidence arrays
    bit-identical.
    """
    forward = src != dst
    counts = 1 + forward.astype(np.int64)
    offsets = np.cumsum(counts) - counts
    total = int(counts.sum())
    out_src = np.empty(total, dtype=np.int64)
    out_dst = np.empty(total, dtype=np.int64)
    out_weight = np.empty(total, dtype=np.float64)
    out_src[offsets] = src
    out_dst[offsets] = dst
    out_weight[offsets] = weight
    rev = offsets[forward] + 1
    out_src[rev] = dst[forward]
    out_dst[rev] = src[forward]
    out_weight[rev] = weight[forward]
    return out_src, out_dst, out_weight


def _run_ops_decomposition(
    runs, deg_in, deg_out, num_nodes: int, cost: CostModel
) -> Dict[str, float]:
    """Abstract operation counts of one algorithm x model execution.

    The per-batch feature vector the cost-model fitter consumes (see
    :mod:`repro.obs.model`): vertex-function evaluations and the
    in-degree mass they pull, push scans and the out-degree mass they
    touch, queue pushes, CAS attempts, and whole-array scan accesses.
    These mirror the terms of
    :func:`repro.compute.pricing.price_compute_run`, which is linear in
    exactly these counts, so the composite ``ops`` is the abscissa of
    the closed-form model ``T = setup + per_op * ops``.  Following the
    instruction-mix style of refined compute models, ``ops`` weights
    each component by its documented cost-model constant (the
    structure-independent part of the pricing terms); the
    structure-specific traversal scale is what each group's fitted
    ``per_op`` absorbs.
    """
    pull_vertices = push_vertices = 0
    pull_degree = push_degree = 0
    pushes = cas_ops = 0
    rounds = scans = 0
    for run in runs:
        scans += run.linear_scans
        rounds += run.frontier_rounds or run.iteration_count
        for it in run.iterations:
            if len(it.pull_vertices):
                pull_vertices += int(len(it.pull_vertices))
                pull_degree += int(deg_in[it.pull_vertices].sum())
            if len(it.push_vertices):
                push_vertices += int(len(it.push_vertices))
                push_degree += int(deg_out[it.push_vertices].sum())
            pushes += int(it.pushes)
            cas_ops += int(it.cas_ops)
    scan_ops = scans * int(num_nodes)
    ops = (
        pull_vertices * (cost.vertex_task_base + cost.property_write)
        + pull_degree * (cost.neighbor_visit + cost.probe_element)
        + push_degree * (cost.cas + cost.probe_element)
        + pushes * cost.queue_push
        + scan_ops * cost.probe_element
    )
    return {
        "pull_vertices": pull_vertices,
        "push_vertices": push_vertices,
        "pull_degree": pull_degree,
        "push_degree": push_degree,
        "pushes": pushes,
        "cas_ops": cas_ops,
        "scan_ops": scan_ops,
        "frontier_rounds": rounds,
        "ops": float(ops),
    }


@dataclass
class StreamConfig:
    """What to run and on which simulated machine."""

    batch_size: int = DEFAULT_BATCH_SIZE
    structures: Tuple[str, ...] = ALL_STRUCTURES
    algorithms: Tuple[str, ...] = ALL_ALGORITHMS
    models: Tuple[str, ...] = COMPUTE_MODELS
    repetitions: int = 1
    machine: MachineConfig = SKYLAKE_GOLD_6142
    threads: Optional[int] = None
    cost_model: CostModel = DEFAULT_COST_MODEL
    shuffle_seed: int = 0
    source: Optional[int] = None
    progress: Optional[Callable[[str], None]] = None
    #: Churn: after each insert batch, delete this fraction of the
    #: batch's edges again (a mixed insert/delete stream).  The update
    #: phase measures both operations; compute-model values stay exact
    #: under FS, while INC is approximate for the monotone algorithms
    #: once edges disappear (see repro.compute.incremental).
    churn_fraction: float = 0.0
    #: Partition-parallel update simulation: split each batch across
    #: this many vertex-partitioned shards, each ingesting its share
    #: into its own structure instance; the batch's update latency is
    #: the slowest shard plus a cross-shard merge charge (see
    #: repro.streaming.sharded).  1 = the serial model; algorithm
    #: results are bit-identical either way.
    shards: int = 1
    #: Cycled per-batch sizes overriding ``batch_size`` (regime-shifting
    #: streams: batch ``i`` holds ``batch_schedule[i % len]`` edges).
    batch_schedule: Optional[Tuple[int, ...]] = None
    #: Adaptive mode (``structures=("adaptive",)`` with
    #: ``models=("adaptive",)``): the pool the auto-tuner picks from.
    #: ``None`` means the paper's full matrix (ALL_STRUCTURES and both
    #: compute models).
    candidate_structures: Optional[Tuple[str, ...]] = None
    candidate_models: Optional[Tuple[str, ...]] = None
    #: Tuner knobs (a repro.streaming.autotune.TunerConfig); ``None``
    #: uses the environment-derived defaults.
    autotune: Optional[object] = None

    @property
    def is_adaptive(self) -> bool:
        """True when the auto-tuner drives (structure, model) selection."""
        return self.structures == ("adaptive",)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if not 0.0 <= self.churn_fraction < 1.0:
            raise ConfigError(
                f"churn_fraction must be in [0, 1), got {self.churn_fraction}"
            )
        if self.repetitions < 1:
            raise ConfigError(f"repetitions must be >= 1, got {self.repetitions}")
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.batch_schedule is not None:
            if not self.batch_schedule:
                raise ConfigError("batch_schedule must not be empty")
            for size in self.batch_schedule:
                if size < 1:
                    raise ConfigError(
                        f"batch_schedule sizes must be >= 1, got {size}"
                    )
            if self.shards != 1:
                raise ConfigError("batch_schedule requires shards == 1")
        adaptive = "adaptive" in self.structures or "adaptive" in self.models
        if adaptive:
            if self.structures != ("adaptive",) or self.models != ("adaptive",):
                raise ConfigError(
                    "adaptive mode is all-or-nothing: use "
                    "structures=('adaptive',) together with "
                    "models=('adaptive',)"
                )
            if self.shards != 1:
                raise ConfigError("adaptive mode requires shards == 1")
            for name in self.candidate_structures or ():
                if name not in STRUCTURES:
                    raise ConfigError(f"unknown candidate structure {name!r}")
            for model in self.candidate_models or ():
                if model not in COMPUTE_MODELS:
                    raise ConfigError(f"unknown candidate model {model!r}")
        else:
            for name in self.structures:
                if name not in STRUCTURES:
                    raise ConfigError(f"unknown structure {name!r}")
            for model in self.models:
                if model not in COMPUTE_MODELS:
                    raise ConfigError(f"unknown compute model {model!r}")
            if self.candidate_structures or self.candidate_models:
                raise ConfigError(
                    "candidate_structures/candidate_models only apply to "
                    "adaptive mode (structures=('adaptive',))"
                )
        for name in self.algorithms:
            if name not in ALGORITHMS:
                raise ConfigError(f"unknown algorithm {name!r}")


class StreamDriver:
    """Runs the full characterization loop over one dataset."""

    def __init__(self, config: Optional[StreamConfig] = None) -> None:
        self.config = config if config is not None else StreamConfig()

    def _pick_source(self, dataset: Dataset) -> int:
        """Default single-source root: the stream's hottest source.

        A hub is (almost surely) present from the first batch on and
        reaches a large fraction of the graph, which matches how
        single-source roots are chosen in graph benchmarks.
        """
        if self.config.source is not None:
            return self.config.source
        counts = np.bincount(dataset.edges.src)
        return int(counts.argmax())

    def run(self, dataset: Dataset) -> StreamResult:
        """Stream ``dataset`` and record every simulated latency."""
        cfg = self.config
        source = self._pick_source(dataset)
        ctx = ExecutionContext(
            machine=cfg.machine, threads=cfg.threads, cost_model=cfg.cost_model
        )
        batches_per_rep = batch_count(
            len(dataset.edges), cfg.batch_size, cfg.batch_schedule
        )
        result = StreamResult(
            dataset=dataset.name,
            machine=cfg.machine,
            structures=cfg.structures,
            algorithms=cfg.algorithms,
            models=cfg.models,
            repetitions=cfg.repetitions,
            batches_per_rep=batches_per_rep,
        )
        # Simulated clock per timeline track (dataset/structure): batches
        # abut on the track even though each schedule starts at cycle 0.
        sim_clocks: Dict[str, float] = {}
        if METRICS.enabled:
            from repro.compute import ckernels
            from repro.sim import cingest

            METRICS.gauge(
                "compute_threads", "threads the fused INC round runs on"
            ).set(float(ckernels.compute_threads()))
            METRICS.gauge(
                "ckernel_loaded",
                "1 when the compiled compute kernels are active",
            ).set(1.0 if ckernels.loaded() else 0.0)
            METRICS.gauge(
                "ingest_ckernel_loaded",
                "1 when the compiled batch-ingest kernels are active",
            ).set(1.0 if cingest.loaded() else 0.0)
        # One CSR maintainer for the whole run: repetitions reset it in
        # place instead of reallocating the heap arrays.
        maintainer = (
            None if kernels.use_legacy_compute() else ViewMaintainer(dataset.max_nodes)
        )
        for rep in range(cfg.repetitions):
            if maintainer is not None:
                maintainer.reset()
            self._run_repetition(
                dataset, rep, source, ctx, result, sim_clocks, maintainer
            )
        return result

    def _observe_update(
        self,
        dataset: Dataset,
        structure_name: str,
        schedule: ScheduleResult,
        ctx: ExecutionContext,
        sim_clocks: Dict[str, float],
        label: str,
    ) -> None:
        """Per-batch observability for one structure's update schedule."""
        if METRICS.enabled:
            METRICS.histogram(
                "stream_update_latency_seconds",
                "simulated per-batch update latency",
                structure=structure_name,
            ).observe(ctx.seconds(schedule.makespan_cycles))
        if TRACER.sim_timeline:
            track = f"{dataset.name}/{structure_name}"
            offset = sim_clocks.get(track, 0.0)
            to_us = 1e6 / ctx.machine.frequency_hz
            timeline = schedule.extra.get("timeline")
            if timeline is not None:
                starts, ends = timeline
                starts_us = np.asarray(starts, dtype=np.float64) * to_us + offset
                ends_us = np.asarray(ends, dtype=np.float64) * to_us + offset
                TRACER.record_schedule_threads(
                    track,
                    np.asarray(schedule.task_thread, dtype=np.int64).tolist(),
                    starts_us.tolist(),
                    ends_us.tolist(),
                    [label] * len(starts_us),
                )
            sim_clocks[track] = offset + schedule.makespan_cycles * to_us

    def _make_structures(self, dataset: Dataset) -> Dict[str, object]:
        """One fresh structure instance per configured name.

        Subclasses that do not simulate structures in-process (the
        sharded driver) return an empty mapping.
        """
        cfg = self.config
        return {
            name: make_structure(
                name,
                dataset.max_nodes,
                directed=dataset.directed,
                cost_model=cfg.cost_model,
            )
            for name in cfg.structures
        }

    def _update_structures(
        self,
        structures: Dict[str, object],
        batch,
        dataset: Dataset,
        ctx: ExecutionContext,
        record: BatchRecord,
        sim_clocks: Dict[str, float],
    ) -> Dict[str, int]:
        """Ingest ``batch`` into every structure; fill update latencies.

        Returns each structure's reported inserted-edge count, which
        :meth:`_verify_inserted` cross-checks against the reference
        graph.  The sharded driver overrides this with precomputed
        per-shard schedules.
        """
        structure_inserted = {}
        for name, structure in structures.items():
            update = structure.update(batch, ctx)
            record.update_cycles[name] = update.latency_cycles
            structure_inserted[name] = update.edges_inserted
            self._observe_update(
                dataset, name, update.schedule, ctx, sim_clocks, "update"
            )
        return structure_inserted

    def _delete_structures(
        self,
        structures: Dict[str, object],
        victims,
        dataset: Dataset,
        ctx: ExecutionContext,
        record: BatchRecord,
        sim_clocks: Dict[str, float],
    ) -> None:
        """Apply the churn deletions; add their latency to the batch's."""
        for name, structure in structures.items():
            deletion = structure.delete(victims, ctx)
            record.update_cycles[name] += deletion.latency_cycles
            self._observe_update(
                dataset, name, deletion.schedule, ctx, sim_clocks, "delete"
            )

    @staticmethod
    def _verify_inserted(structure_inserted: Dict[str, int], expected: int) -> None:
        """Every structure must agree with the reference graph."""
        for name, count in structure_inserted.items():
            assert count == expected, (
                f"{name} inserted {count} edges where the reference "
                f"graph inserted {expected}"
            )

    @staticmethod
    def _ingest_reference(reference, batch, dataset, deg_in, deg_out, incidence):
        """Apply ``batch`` to the reference graph and incremental arrays.

        Returns ``(inserted_count, ins_src, ins_dst, ins_weight)`` --
        the incidence-ordered insert columns (reverse edges interleaved
        for undirected graphs), empty when nothing new landed.
        """
        inserted = reference.update_collect(batch)
        ins_src = ins_dst = _EMPTY_IDS
        ins_weight = _EMPTY_WEIGHTS
        if inserted:
            ins_src, ins_dst, ins_weight = _edge_arrays(inserted)
            np.add.at(deg_out, ins_src, 1)
            np.add.at(deg_in, ins_dst, 1)
            if not dataset.directed:
                mirrored = ins_src != ins_dst
                np.add.at(deg_out, ins_dst[mirrored], 1)
                np.add.at(deg_in, ins_src[mirrored], 1)
                ins_src, ins_dst, ins_weight = _with_reverse_interleaved(
                    ins_src, ins_dst, ins_weight
                )
            incidence.append(ins_src, ins_dst, ins_weight)
        return len(inserted), ins_src, ins_dst, ins_weight

    @staticmethod
    def _churn_reference(reference, victims, dataset, deg_in, deg_out, incidence):
        """Apply churn ``victims`` to the reference graph and arrays.

        Returns ``(removed, rem_src, rem_dst)``: the removed edge list
        plus the incidence-ordered delete columns.
        """
        removed = reference.delete_collect(victims)
        rem_src = rem_dst = _EMPTY_IDS
        if removed:
            rem_src, rem_dst, rem_weight = _edge_arrays(removed)
            np.add.at(deg_out, rem_src, -1)
            np.add.at(deg_in, rem_dst, -1)
            if not dataset.directed:
                mirrored = rem_src != rem_dst
                np.add.at(deg_out, rem_dst[mirrored], -1)
                np.add.at(deg_in, rem_src[mirrored], -1)
                rem_src, rem_dst, _ = _with_reverse_interleaved(
                    rem_src, rem_dst, rem_weight
                )
            incidence.delete(rem_src, rem_dst)
        return removed, rem_src, rem_dst

    @staticmethod
    def _build_compute_view(
        maintainer, incidence, n, ins_src, ins_dst, ins_weight, rem_src, rem_dst
    ):
        """The per-batch compute substrate: CSR view or raw in-edges.

        One incremental CSR update per batch (full rebuild only under
        extreme churn or after a structure migration), shared by every
        algorithm x model run through the view scope.
        """
        in_edges = None
        compute_view = None
        if maintainer is not None and n:
            with TRACER.span("compute.view"):
                compute_view = maintainer.apply(
                    ins_src,
                    ins_dst,
                    ins_weight,
                    rem_src,
                    rem_dst,
                    n,
                    incidence.arrays,
                )
        elif maintainer is None:
            in_edges = incidence.view()
        return in_edges, compute_view

    @staticmethod
    def _execute_compute(
        algorithm, model, reference, state, batch, removed, source, in_edges
    ):
        """Every run one algorithm x model schedules for this batch.

        FS reruns from scratch; INC applies the batch incrementally and,
        under churn, appends the KickStarter-style deletion repair whose
        cost belongs to the same compute phase.
        """
        if model == "FS":
            return [algorithm.fs_run(reference, source=source, in_edges=in_edges)]
        affected = algorithm.affected_from_batch(batch, reference)
        runs = [algorithm.inc_run(reference, state, affected, source=source)]
        if removed:
            runs.append(
                algorithm.inc_delete_run(reference, state, removed, source=source)
            )
        return runs

    def _run_repetition(
        self,
        dataset: Dataset,
        rep: int,
        source: int,
        ctx: ExecutionContext,
        result: StreamResult,
        sim_clocks: Dict[str, float],
        maintainer: Optional[ViewMaintainer] = None,
    ) -> None:
        cfg = self.config
        batches = make_batches(
            dataset.edges,
            cfg.batch_size,
            shuffle_seed=cfg.shuffle_seed + REP_SEED_STRIDE * rep,
            schedule=cfg.batch_schedule,
        )
        structures = self._make_structures(dataset)
        reference = ReferenceGraph(dataset.max_nodes, directed=dataset.directed)
        states = {
            name: get_algorithm(name).make_state(dataset.max_nodes)
            for name in cfg.algorithms
            if "INC" in cfg.models
        }
        deg_in = np.zeros(dataset.max_nodes, dtype=np.int64)
        deg_out = np.zeros(dataset.max_nodes, dtype=np.int64)
        incidence = _InEdgeBuffer(dataset.max_nodes)

        for batch_index, batch in enumerate(batches):
            record = BatchRecord(
                repetition=rep,
                batch_index=batch_index,
                edges_attempted=len(batch),
                edges_inserted=0,
                num_nodes=0,
                num_edges=0,
            )
            # ---- Update phase: every structure ingests the batch ----
            structure_inserted = self._update_structures(
                structures, batch, dataset, ctx, record, sim_clocks
            )
            # The reference graph is the single source of truth for how
            # many unique edges the batch contributed; the instrumented
            # structures must agree with it (and with each other).
            inserted_count, ins_src, ins_dst, ins_weight = self._ingest_reference(
                reference, batch, dataset, deg_in, deg_out, incidence
            )
            record.edges_inserted = inserted_count
            if __debug__:
                self._verify_inserted(structure_inserted, inserted_count)
            removed: list = []
            rem_src = rem_dst = _EMPTY_IDS
            churn_attempted = 0
            if cfg.churn_fraction > 0.0 and len(batch):
                victims = batch.slice(
                    0, max(1, int(len(batch) * cfg.churn_fraction))
                )
                churn_attempted = len(victims)
                self._delete_structures(
                    structures, victims, dataset, ctx, record, sim_clocks
                )
                removed, rem_src, rem_dst = self._churn_reference(
                    reference, victims, dataset, deg_in, deg_out, incidence
                )
            n = reference.num_nodes
            record.num_nodes = n
            record.num_edges = reference.num_edges
            # ---- Per-batch feature capture (cost-model substrate) ----
            features_on = FEATURES.enabled
            base_row: Dict[str, object] = {}
            if features_on:
                live_out = deg_out[:n]
                base_row = {
                    "dataset": dataset.name,
                    "rep": rep,
                    "batch": batch_index,
                    "batch_edges": record.edges_attempted,
                    "edges_inserted": record.edges_inserted,
                    "edges_deleted": len(removed),
                    "churn_fraction": cfg.churn_fraction,
                    "num_nodes": n,
                    "num_edges": record.num_edges,
                    "mean_out_degree": float(live_out.mean()) if n else 0.0,
                    "max_out_degree": int(live_out.max()) if n else 0,
                }
                update_ops = record.edges_attempted + churn_attempted
                for structure_name, cycles in record.update_cycles.items():
                    FEATURES.record(
                        phase="update",
                        structure=structure_name,
                        t_seconds=ctx.seconds(cycles),
                        ops=update_ops,
                        **base_row,
                    )
            in_edges, compute_view = self._build_compute_view(
                maintainer, incidence, n,
                ins_src, ins_dst, ins_weight, rem_src, rem_dst,
            )

            # ---- Compute phase: each algorithm under each model ----
            with TRACER.span("compute") as compute_span, kernels.view_scope(
                reference, compute_view
            ):
                for alg_name in cfg.algorithms:
                    algorithm = get_algorithm(alg_name)
                    for model in cfg.models:
                        wall_start = time.perf_counter() if features_on else 0.0
                        runs = self._execute_compute(
                            algorithm, model, reference,
                            states.get(alg_name), batch, removed, source,
                            in_edges,
                        )
                        record.compute_iterations[(alg_name, model)] = sum(
                            r.iteration_count for r in runs
                        )
                        ops_row = None
                        wall_seconds = 0.0
                        if features_on:
                            wall_seconds = time.perf_counter() - wall_start
                            ops_row = _run_ops_decomposition(
                                runs, deg_in, deg_out, n, ctx.cost_model
                            )
                        for structure_name in cfg.structures:
                            cycles = 0.0
                            for priced_run in runs:
                                pricing = price_compute_run(
                                    priced_run,
                                    structure_name,
                                    deg_in[:n],
                                    deg_out[:n],
                                    ctx,
                                    neighbor_degree_query=algorithm.neighbor_degree_query,
                                )
                                cycles += pricing.latency_cycles
                            record.compute_cycles[
                                (alg_name, model, structure_name)
                            ] = cycles
                            compute_span.add_cycles(cycles)
                            if ops_row is not None:
                                FEATURES.record(
                                    phase="compute",
                                    structure=structure_name,
                                    algorithm=alg_name,
                                    model=model,
                                    t_seconds=ctx.seconds(cycles),
                                    wall_seconds=wall_seconds,
                                    **ops_row,
                                    **base_row,
                                )
                            if METRICS.enabled:
                                METRICS.histogram(
                                    "stream_compute_latency_seconds",
                                    "simulated per-batch compute latency",
                                    algorithm=alg_name,
                                    model=model,
                                    structure=structure_name,
                                ).observe(ctx.seconds(cycles))
            if METRICS.enabled:
                METRICS.counter(
                    "stream_batches_total", "batches processed",
                    dataset=dataset.name,
                ).inc()
                METRICS.counter(
                    "stream_edges_inserted_total",
                    "unique edges ingested across batches",
                    dataset=dataset.name,
                ).inc(record.edges_inserted)
            result.add_record(record)
            if cfg.progress is not None:
                cfg.progress(
                    f"{dataset.name} rep {rep} batch {batch_index + 1}/"
                    f"{len(batches)}: |V|={n} |E|={reference.num_edges}"
                )


def make_driver(config: Optional[StreamConfig] = None) -> StreamDriver:
    """The driver matching ``config``: sharded when ``shards > 1``,
    adaptive when ``structures=("adaptive",)``.

    Call sites (the sweep engine, the CLI, benches) construct through
    this factory so the partition-parallel and auto-tuned paths are
    picked up anywhere a config asks for them.
    """
    config = config if config is not None else StreamConfig()
    if config.is_adaptive:
        # Local import: autotune builds on this module.
        from repro.streaming.autotune import AdaptiveStreamDriver

        return AdaptiveStreamDriver(config)
    if config.shards > 1:
        # Local import: sharded builds on this module.
        from repro.streaming.sharded import ShardedStreamDriver

        return ShardedStreamDriver(config)
    return StreamDriver(config)
